"""Setup shim: enables legacy editable installs where the `wheel` package
(needed for PEP 660 editable wheels) is unavailable."""
from setuptools import setup

setup()
