#!/usr/bin/env python
"""Full campaign: the paper's measurement discipline end to end.

Builds the 30-rack / 24-hour campaign plan (10 racks per application,
one random port per rack, one random 2-minute window per hour — scaled
down by default), executes it against the synthetic fleet, and prints
the headline Sec 5 statistics per application alongside the paper's
numbers.  Then reproduces every table/figure via the experiment registry.

Run:  python examples/full_campaign.py [--full]
"""

import argparse
import sys
import time

import numpy as np

from repro.analysis import extract_bursts_from_trace
from repro.analysis.markov import fit_pooled_transition_matrix
from repro.analysis.bursts import trace_hot_mask
from repro.core.campaign import MeasurementCampaign
from repro.data import PAPER
from repro.experiments import EXPERIMENTS, run_experiment
from repro.synth.dataset import SyntheticCampaignSource, default_plan
from repro.units import seconds, to_us


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale windows (slow)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    window_s = 120 if args.full else 2
    plan = default_plan(
        racks_per_app=10,
        hours=24,
        window_duration_ns=seconds(window_s),
        seed=args.seed,
    )
    print(f"campaign: {len(plan.windows)} windows x {window_s}s "
          f"({plan.total_measured_seconds:.0f}s of 25us samples)")

    started = time.time()
    source = SyntheticCampaignSource(seed=args.seed)
    result = MeasurementCampaign(plan, source).run()
    print(f"collected in {time.time() - started:.1f}s\n")

    print(f"{'app':>8} {'hot%':>7} {'p90 burst':>10} {'1-period':>9} "
          f"{'p11':>6} {'r':>7}   paper: p11 / r")
    for app in ("web", "cache", "hadoop"):
        traces = [next(iter(t.values())) for w, t in result.iter_windows()
                  if w.rack_type == app]
        stats = [extract_bursts_from_trace(trace) for trace in traces]
        durations = np.concatenate([s.durations_ns for s in stats])
        masks = [trace_hot_mask(trace) for trace in traces]
        matrix = fit_pooled_transition_matrix(masks)
        hot = float(np.mean([s.hot_fraction for s in stats]))
        paper = PAPER.table2[app]
        print(
            f"{app:>8} {hot:7.2%} {to_us(int(np.percentile(durations, 90))):8.0f}us "
            f"{float((durations == 25_000).mean()):9.0%} "
            f"{matrix.p11:6.3f} {matrix.likelihood_ratio:7.1f}"
            f"   {paper.p11:.3f} / {paper.likelihood_ratio}"
        )

    print("\n--- reproducing every table and figure ---\n")
    for experiment_id in EXPERIMENTS:
        started = time.time()
        experiment = run_experiment(experiment_id, seed=args.seed)
        print(experiment.render())
        print(f"[{experiment_id}: {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
