#!/usr/bin/env python
"""DCTCP vs loss-based congestion control under sustained incast.

Sec 7's congestion-control implication, measured: 16 senders converge on
one server through a small shared buffer.  Whatever the transport, the
initial window overshoot fills the buffer before any signal returns —
µbursts outrun the control loop.  After feedback starts flowing, ECN
marking plus DCTCP's proportional window law holds the queue near the
marking threshold, while loss-based control saws between full buffer and
timeout.

Run:  python examples/dctcp_incast.py
"""

from repro import HighResSampler, SamplerConfig, Simulator, build_rack
from repro.core.counters import bind_peak_buffer
from repro.netsim import BufferPolicy, EcnConfig, RackConfig, SwitchCounterSurface, TorSwitchConfig
from repro.units import ms, us


def run_incast(transport: str):
    sim = Simulator(seed=9)
    rack = build_rack(
        sim,
        RackConfig(
            name=transport,
            switch=TorSwitchConfig(
                n_downlinks=4,
                n_uplinks=2,
                buffer=BufferPolicy(capacity_bytes=200_000, alpha=1.0),
                ecn=EcnConfig(mark_threshold_bytes=30_000),
            ),
            n_remote_hosts=16,
            transport=transport,
            rto_ns=ms(2),
        ),
    )
    for remote in rack.remote_hosts:
        remote.send_flow(rack.servers[0].name, 2_000_000)

    surface = SwitchCounterSurface(rack.tor)
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(50)), [bind_peak_buffer(surface)], rng=1
    )
    report = sampler.run_in_sim(sim, ms(100))
    peaks = report.traces["shared_buffer.peak"].gauge_values()
    drops = rack.tor.total_drops()
    marker = rack.tor.downlink_ports[0].ecn
    return peaks, drops, marker


def main() -> None:
    for transport in ("reno", "dctcp"):
        peaks, drops, marker = run_incast(transport)
        warm = len(peaks) // 5  # skip the identical slow-start overshoot
        steady = peaks[warm:]
        print(f"=== {transport} ===")
        print(f"  total drops           : {drops}")
        print(f"  steady-state queue    : mean {int(steady[steady > 0].mean()):,} B "
              f"(marking threshold 30,000 B)")
        print(f"  peak occupancy        : {int(peaks.max()):,} B of 200,000 B")
        print(f"  packets CE-marked     : {marker.packets_marked} / {marker.packets_seen}")
        print()
    print("DCTCP converges to a short standing queue; loss-based control")
    print("rides the buffer ceiling. Neither prevents the first-RTT burst —")
    print("the paper's point that µbursts are faster than any feedback loop.")


if __name__ == "__main__":
    main()
