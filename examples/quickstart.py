#!/usr/bin/env python
"""Quickstart: measure a web rack at 25 µs and find its µbursts.

Builds one rack on the packet-level simulator, drives it with the Web
workload (user-request-driven page assembly with remote fan-in), attaches
the high-resolution sampler to a server-facing port, and prints the burst
statistics the paper reports in Sec 5.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HighResSampler, SamplerConfig, Simulator, build_rack
from repro.analysis import EmpiricalCdf, extract_bursts_from_trace, fit_transition_matrix
from repro.analysis.bursts import trace_hot_mask
from repro.core.counters import bind_tx_bytes
from repro.netsim import RackConfig, SwitchCounterSurface, TorSwitchConfig
from repro.units import ms, to_us, us
from repro.workloads import WebConfig, WebWorkload


def main() -> None:
    # 1. Build the rack: 8 servers on 10 G downlinks, 4 uplinks, shared buffer.
    sim = Simulator(seed=42)
    rack = build_rack(
        sim,
        RackConfig(
            name="web",
            switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
            n_remote_hosts=32,
        ),
    )

    # 2. Drive it with Web traffic and let it warm up.
    workload = WebWorkload(rack, WebConfig(request_rate_per_s=80, fanout=16), rng=7)
    workload.install()
    sim.run_for(ms(30))

    # 3. Attach the paper's high-resolution sampler to one downlink's
    #    egress byte counter and poll for 100 ms at 25 µs.
    surface = SwitchCounterSurface(rack.tor)
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(25)),
        [bind_tx_bytes(surface, "down0")],
        rng=1,
    )
    report = sampler.run_in_sim(sim, ms(100))
    trace = report.traces["down0.tx_bytes"]

    # 4. Analyse: burst durations, gaps, and the burst Markov model.
    stats = extract_bursts_from_trace(trace)
    print(f"samples           : {len(trace)} (missed {report.timing.miss_rate:.1%} of polls)")
    print(f"bursts found      : {stats.n_bursts}")
    print(f"time hot          : {stats.hot_fraction:.2%}")
    if stats.n_bursts:
        durations = EmpiricalCdf(stats.durations_ns.astype(float))
        print(f"median burst      : {to_us(int(durations.median)):.0f} us")
        print(f"p90 burst         : {to_us(int(durations.p90)):.0f} us")
        print(f"single-period     : {stats.single_period_fraction:.0%} of bursts")
        print(f"microbursts (<1ms): {stats.microburst_fraction:.0%} of bursts")
    mask = trace_hot_mask(trace)
    if mask.any() and not mask.all():
        matrix = fit_transition_matrix(mask)
        print(f"burst correlation : r = {matrix.likelihood_ratio:.1f} (r ~ 1 would mean independent arrivals)")
    print()
    print(f"web requests completed: {workload.stats.requests_completed}")
    print(f"simulator events      : {sim.events_processed}")


if __name__ == "__main__":
    main()
