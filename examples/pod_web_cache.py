#!/usr/bin/env python
"""A pod: web rack and cache rack coupled through one fabric.

One workload drives the whole loop the paper's data center runs: users
hit web servers, web servers scatter RPCs to cache servers in the other
rack, cache responses converge back, and assembled pages leave to the
users.  Both rack signatures from Fig 9 then appear *simultaneously* —
fan-in bursts on the web rack's server downlinks, response bursts on the
cache rack's oversubscribed uplinks — from a single coupled system.

Run:  python examples/pod_web_cache.py
"""

import numpy as np

from repro import HighResSampler, SamplerConfig, Simulator
from repro.core.counters import bind_all_tx_bytes
from repro.netsim import RackConfig, SwitchCounterSurface, TorSwitchConfig, build_pod
from repro.units import ms, us
from repro.workloads.distributions import LogNormalSizes
from repro.workloads.flows import PoissonArrivals


def main() -> None:
    sim = Simulator(seed=6)
    pod = build_pod(
        sim,
        [
            RackConfig(name="web", switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4)),
            RackConfig(name="cache", switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4)),
        ],
        n_standalone_remotes=8,  # the "users" beyond the pod
    )
    web, cache = pod.racks
    users = pod.standalone_remotes
    rng = np.random.default_rng(3)
    response_size = LogNormalSizes(median_bytes=30_000, sigma=0.9)
    page_size = LogNormalSizes(median_bytes=80_000, sigma=0.7)
    served = {"count": 0}

    def user_request() -> None:
        web_server = web.servers[int(rng.integers(len(web.servers)))]
        user = users[int(rng.integers(len(users)))]
        fanout = cache.servers if len(cache.servers) <= 6 else list(
            np.asarray(cache.servers)[rng.choice(len(cache.servers), 6, replace=False)]
        )
        pending = {"count": len(fanout)}

        def rpc_done(_flow) -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                web_server.send_flow(user.name, page_size.sample(rng))
                served["count"] += 1

        for cache_server in fanout:
            cache_server.send_flow(
                web_server.name, response_size.sample(rng), on_complete=rpc_done
            )

    PoissonArrivals(
        sim=sim, rate_per_s=900.0, fire=user_request, rng=rng
    ).start()
    sim.run_for(ms(20))  # warm up

    web_surface = SwitchCounterSurface(web.tor)
    cache_surface = SwitchCounterSurface(cache.tor)
    bindings = bind_all_tx_bytes(web_surface)
    # rename to avoid collisions between the two switches' port names
    from repro.core.counters import CounterBinding, CounterSpec

    cache_bindings = [
        CounterBinding(
            spec=CounterSpec(
                name=f"cache.{binding.spec.name}",
                kind=binding.spec.kind,
                rate_bps=binding.spec.rate_bps,
            ),
            read=binding.read,
        )
        for binding in bind_all_tx_bytes(cache_surface)
    ]
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(300)), bindings + cache_bindings, rng=1
    )
    report = sampler.run_in_sim(sim, ms(150))

    def hot_counts(prefix: str, n_down: int, n_up: int) -> tuple[int, int]:
        down = sum(
            int((report.traces[f"{prefix}down{i}.tx_bytes"].utilization() > 0.5).sum())
            for i in range(n_down)
        )
        up = sum(
            int((report.traces[f"{prefix}up{i}.tx_bytes"].utilization() > 0.5).sum())
            for i in range(n_up)
        )
        return down, up

    web_down, web_up = hot_counts("", 8, 4)
    cache_down, cache_up = hot_counts("cache.", 8, 4)

    print(f"pages served: {served['count']}")
    print()
    print("hot samples at 300us (Fig 9's two signatures at once):")
    total_web = max(web_down + web_up, 1)
    total_cache = max(cache_down + cache_up, 1)
    print(f"  web rack  : downlinks {web_down} ({web_down / total_web:.0%})  "
          f"uplinks {web_up} ({web_up / total_web:.0%})   <- fan-in toward servers")
    print(f"  cache rack: downlinks {cache_down} ({cache_down / total_cache:.0%})  "
          f"uplinks {cache_up} ({cache_up / total_cache:.0%})   <- response-heavy uplinks")
    print()
    web_bytes_down = sum(p.counters.tx_bytes for p in web.tor.downlink_ports)
    cache_bytes_up = sum(p.counters.tx_bytes for p in cache.tor.uplink_ports)
    print(f"bytes: web ToR->server {web_bytes_down:,} | cache uplinks out {cache_bytes_up:,}")


if __name__ == "__main__":
    main()
