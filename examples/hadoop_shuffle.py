#!/usr/bin/env python
"""Hadoop rack: shuffle traffic, ECMP imbalance, and buffer pressure.

Runs the Hadoop workload (on/off shuffle phases of long full-MTU
transfers) and reports three of the paper's Hadoop findings:

* Fig 5/Sec 5.3 — the packet-size histogram is almost entirely full-MTU;
* Fig 7 — a handful of long flows leave the four uplinks badly unbalanced
  at small timescales;
* Fig 10/Sec 6.4 — the shared buffer carries standing occupancy and high
  peaks while many ports are simultaneously hot.

Run:  python examples/hadoop_shuffle.py
"""

import numpy as np

from repro import HighResSampler, SamplerConfig, Simulator, build_rack
from repro.core.counters import bind_peak_buffer, bind_tx_size_hist
from repro.netsim import BufferPolicy, RackConfig, SwitchCounterSurface, TorSwitchConfig
from repro.netsim.port import SIZE_BIN_LABELS
from repro.units import ms, us
from repro.workloads import HadoopConfig, HadoopWorkload
from repro.workloads.distributions import ParetoSizes


def main() -> None:
    sim = Simulator(seed=23)
    rack = build_rack(
        sim,
        RackConfig(
            name="hadoop",
            switch=TorSwitchConfig(
                n_downlinks=8,
                n_uplinks=4,
                # a small shared buffer makes the Fig 10 pressure visible
                # in a 150 ms run
                buffer=BufferPolicy(capacity_bytes=250_000, alpha=2.0),
            ),
            n_remote_hosts=24,
        ),
    )
    workload = HadoopWorkload(
        rack,
        HadoopConfig(
            transfer_rate_per_s=70,
            mean_on_s=0.06,
            median_off_s=0.05,
            transfer_size=ParetoSizes(min_bytes=500_000, alpha=1.8, max_bytes=8_000_000),
        ),
        rng=9,
    )
    workload.install()
    sim.run_for(ms(20))

    surface = SwitchCounterSurface(rack.tor)
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(50)),
        [bind_tx_size_hist(surface, "up0"), bind_peak_buffer(surface)],
        rng=4,
    )
    report = sampler.run_in_sim(sim, ms(150))

    print("=== packet sizes on up0 (Sec 5.3: hadoop data is full-MTU) ===")
    hist = np.asarray(report.traces["up0.tx_size_hist"].values[-1], dtype=float)
    total = hist.sum() or 1.0
    for label, count in zip(SIZE_BIN_LABELS, hist):
        bar = "#" * int(50 * count / total)
        print(f"  {label:>9}B {count / total:6.1%} {bar}")
    data = hist[1:]  # the 64 B bin is dominated by reverse-path ACKs
    if data.sum():
        print(f"  data packets only (>64 B): {data[-1] / data.sum():.1%} full-MTU")

    print()
    print("=== uplink balance (Fig 7: few long flows -> imbalance) ===")
    uplink_bytes = np.array(
        [p.counters.tx_bytes for p in rack.tor.uplink_ports], dtype=float
    )
    mean = uplink_bytes.mean() or 1.0
    for index, value in enumerate(uplink_bytes):
        print(f"  up{index}: {value:12,.0f} B  ({value / mean:5.2f}x mean)")
    mad = np.abs(uplink_bytes - mean).mean() / mean
    print(f"  normalized MAD over the run: {mad:.0%}")

    print()
    print("=== shared buffer (Fig 10: standing occupancy + peaks) ===")
    peaks = report.traces["shared_buffer.peak"].gauge_values().astype(float)
    capacity = surface.buffer_capacity_bytes
    print(f"  median peak occupancy: {np.median(peaks) / capacity:.1%} of buffer")
    print(f"  p99 peak occupancy   : {np.percentile(peaks, 99) / capacity:.1%}")
    print(f"  congestion drops     : {rack.tor.total_drops()}")
    print(f"  transfers launched   : {workload.stats.requests_issued}")


if __name__ == "__main__":
    main()
