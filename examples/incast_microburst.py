#!/usr/bin/env python
"""Incast µbursts: why SNMP counters miss congestion (the Sec 3 story).

Sixteen remote hosts dogpile one server.  The 25 µs sampler sees repeated
line-rate µbursts and congestion drops at the victim's downlink; the same
trace resampled at SNMP granularity (minutes here compressed to 40 ms
bins) shows a nearly idle link — utilization and drops decorrelate
exactly as the paper's Fig 1 observes.

Run:  python examples/incast_microburst.py
"""

import numpy as np

from repro import HighResSampler, SamplerConfig, Simulator, build_rack
from repro.core.counters import bind_tx_bytes, bind_tx_drops
from repro.core.snmp import coarse_resample
from repro.netsim import BufferPolicy, RackConfig, SwitchCounterSurface, TorSwitchConfig
from repro.units import ms, us


def main() -> None:
    sim = Simulator(seed=7)
    rack = build_rack(
        sim,
        RackConfig(
            name="incast",
            switch=TorSwitchConfig(
                n_downlinks=4,
                n_uplinks=2,
                buffer=BufferPolicy(capacity_bytes=250_000, alpha=1.0),
            ),
            n_remote_hosts=16,
        ),
    )
    victim = rack.servers[0]

    # Scatter requests: every 8 ms a fresh wave of senders answers at once
    # (a scatter-gather response wave), each shipping 150 kB to the victim.
    for wave in range(8):
        for remote in rack.remote_hosts:
            sim.schedule(
                ms(8) * wave + int(remote.name[-1]) * 1000,
                lambda r=remote: r.send_flow(victim.name, 150_000),
            )

    surface = SwitchCounterSurface(rack.tor)
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(25)),
        [bind_tx_bytes(surface, "down0"), bind_tx_drops(surface, "down0")],
        rng=3,
    )
    report = sampler.run_in_sim(sim, ms(80))
    byte_trace = report.traces["down0.tx_bytes"]
    drop_trace = report.traces["down0.tx_drops"]

    fine_util = byte_trace.utilization()
    hot = fine_util > 0.5
    print("=== high-resolution view (25 us) ===")
    print(f"peak utilization   : {fine_util.max():.0%}")
    print(f"hot samples        : {hot.sum()} ({hot.mean():.2%} of samples)")
    print(f"congestion drops   : {int(drop_trace.values[-1])}")
    print(f"buffer peak        : {surface.read_peak_buffer_and_reset()} bytes "
          f"of {surface.buffer_capacity_bytes}")

    coarse = coarse_resample(byte_trace, ms(40), drop_trace=drop_trace)
    print()
    print("=== SNMP-style view (40 ms bins) ===")
    for index, (util, drops) in enumerate(zip(coarse.utilization, coarse.drops)):
        print(f"bin {index}: utilization {util:6.1%}   drops {int(drops)}")
    print()
    print("The coarse view reports a lightly loaded link with drops —")
    print("the Fig 1 paradox. All congestion lives inside microbursts.")


if __name__ == "__main__":
    main()
