#!/usr/bin/env python
"""Chaos campaign: fault injection, retry, and checkpoint/resume.

Runs a small measurement campaign through the fault injector — window
collection failures (half transient, half persistent), sample loss, and
32-bit counter wraparound — with the resilient runner checkpointing every
completed window.  The run is then interrupted partway on purpose and
resumed from the checkpoint; the resumed campaign reproduces exactly the
traces an uninterrupted run yields, because every fault decision is keyed
by (seed, window) rather than call order.

Run:  python examples/chaos_campaign.py [--seed N] [--rate 0.15]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import extract_bursts_gap_aware
from repro.core.campaign import MeasurementCampaign, RetryPolicy, WindowStatus
from repro.faults import FaultInjector, FaultPlan, FaultyWindowSource
from repro.synth.dataset import SyntheticCampaignSource, default_plan
from repro.units import seconds


class InterruptAfter:
    """Wraps a window source and simulates a crash after N collections."""

    def __init__(self, inner, n_calls):
        self.inner = inner
        self.n_calls = n_calls
        self.calls = 0

    def sample_window(self, window):
        if self.calls >= self.n_calls:
            raise KeyboardInterrupt("simulated operator interrupt")
        self.calls += 1
        return self.inner.sample_window(window)


def make_source(seed, rate):
    injector = FaultInjector(
        FaultPlan(
            seed=seed + 1,
            window_failure_rate=rate,
            transient_fraction=0.5,
            sample_loss_rate=0.02,
            wrap_bits=32,
        )
    )
    return FaultyWindowSource(SyntheticCampaignSource(seed=seed), injector), injector


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=0.15,
                        help="injected window-failure rate")
    args = parser.parse_args(argv)

    plan = default_plan(
        racks_per_app=2, hours=3, window_duration_ns=seconds(0.5), seed=args.seed
    )
    retry = RetryPolicy(max_attempts=3, backoff_s=0.0)
    print(f"plan: {len(plan.windows)} windows, "
          f"{args.rate:.0%} injected window-failure rate\n")

    # -- reference: one uninterrupted chaos run -------------------------------
    source, injector = make_source(args.seed, args.rate)
    reference = MeasurementCampaign(plan, source, retry=retry).run()
    counts = reference.status_counts()
    print("uninterrupted run:")
    print(f"  ok / degraded / failed: {counts[WindowStatus.OK.value]} / "
          f"{counts[WindowStatus.DEGRADED.value]} / "
          f"{counts[WindowStatus.FAILED.value]}")
    print(f"  completion: {reference.completion_fraction:.1%}  "
          f"(transient faults retried: {injector.stats.transient_faults}, "
          f"persistent: {injector.stats.persistent_faults})")

    # -- the same campaign, crashed and resumed -------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "ckpt"
        interrupted = InterruptAfter(
            make_source(args.seed, args.rate)[0], n_calls=len(plan.windows) // 3
        )
        try:
            MeasurementCampaign(
                plan, interrupted, retry=retry, checkpoint_dir=ckpt
            ).run()
        except KeyboardInterrupt:
            n_done = sum(1 for _ in (ckpt / "manifest.jsonl").open())
            print(f"\ninterrupted after {interrupted.calls} collections "
                  f"({n_done - 1} windows checkpointed)")

        resumed = MeasurementCampaign(
            plan, make_source(args.seed, args.rate)[0], retry=retry,
            checkpoint_dir=ckpt,
        ).run(resume=True)

    identical = all(
        set(a) == set(b)
        and all(
            np.array_equal(a[k].timestamps_ns, b[k].timestamps_ns)
            and np.array_equal(a[k].values, b[k].values)
            for k in a
        )
        for a, b in zip(reference.traces, resumed.traces)
    )
    print(f"resumed run completion: {resumed.completion_fraction:.1%}")
    print(f"traces byte-identical to uninterrupted run: {identical}")

    # -- gap-aware analysis of the degraded traces ----------------------------
    print("\ngap-aware burst analysis of degraded traces:")
    shown = 0
    for window, traces in resumed.completed():
        for trace in traces.values():
            stats = extract_bursts_gap_aware(trace)
            if stats.n_missing_instants == 0 or shown >= 3:
                continue
            shown += 1
            print(f"  {window.rack_id}/h{window.hour}: "
                  f"{stats.stats.n_bursts} bursts over {stats.n_segments} segments, "
                  f"coverage {stats.coverage:.1%}, "
                  f"CDF shift bound {stats.cdf_delta_bound:.3f}")
    if shown == 0:
        print("  (no window lost samples this run)")
    return 0


if __name__ == "__main__":
    main()
