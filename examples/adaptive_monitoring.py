#!/usr/bin/env python
"""Adaptive monitoring: burst-triggered sampling plus on-switch streaming.

Two answers to the paper's data-volume problem (Sec 4.2: the full
campaign would have been hundreds of terabytes):

1. :class:`AdaptiveSampler` polls slowly while a link is idle and
   escalates to 25 µs when a burst begins — full-resolution burst
   interiors at a fraction of the polling cost.
2. :class:`StreamingBurstStats` reduces the stream on the switch CPU to a
   few hundred bytes that still answer Fig 3 / Table 2 questions.

Run:  python examples/adaptive_monitoring.py
"""

import numpy as np

from repro import Simulator, build_rack
from repro.core.adaptive import AdaptiveConfig, AdaptiveSampler
from repro.core.counters import bind_tx_bytes
from repro.core.streaming import ReservoirSampler, StreamingBurstStats
from repro.netsim import RackConfig, SwitchCounterSurface, TorSwitchConfig
from repro.units import ms, to_us, us
from repro.workloads import CacheConfig, CacheWorkload


def main() -> None:
    sim = Simulator(seed=4)
    rack = build_rack(
        sim,
        RackConfig(
            name="mon",
            switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
            n_remote_hosts=24,
        ),
    )
    CacheWorkload(rack, CacheConfig(batch_rate_per_s=300), rng=2).install()
    sim.run_for(ms(20))

    surface = SwitchCounterSurface(rack.tor)
    config = AdaptiveConfig(
        fast_interval_ns=us(25),
        slow_interval_ns=us(250),
        trigger_utilization=0.4,
        hold_ns=us(500),
    )
    sampler = AdaptiveSampler(config, [bind_tx_bytes(surface, "up0")], rng=3)
    report, stats = sampler.run_in_sim(sim, ms(150))
    trace = report.traces["up0.tx_bytes"]

    print("=== adaptive sampler (up0, 150 ms) ===")
    print(f"  polls taken       : {stats.total_polls} "
          f"({stats.fast_polls} fast / {stats.slow_polls} slow)")
    print(f"  escalations       : {stats.escalations}")
    print(f"  duty cycle        : {stats.duty_cycle(config):.2f} of always-fast cost")

    # Feed the same samples through the on-switch streaming reducer.
    util = trace.utilization()
    stream = StreamingBurstStats(interval_ns=config.fast_interval_ns)
    reservoir = ReservoirSampler(capacity=500, rng=np.random.default_rng(1))
    stream.update_many(util)
    reservoir.offer_many(util)
    stream.finalize()

    print()
    print("=== streaming on-switch statistics ===")
    print(f"  state size        : {stream.memory_bytes()} bytes "
          f"(vs {16 * len(trace):,} B of raw samples)")
    print(f"  hot fraction      : {stream.hot_fraction:.2%}")
    print(f"  bursts observed   : {stream.n_bursts}")
    if stream.n_bursts:
        print(f"  p90 burst (approx): {to_us(int(stream.duration_quantile_ns(0.9))):.0f} us")
    matrix = stream.transition_matrix()
    print(f"  p(1|1) / p(1|0)   : {matrix.p11:.3f} / {matrix.p01:.4f} "
          f"(r = {matrix.likelihood_ratio:.1f})")
    print(f"  reservoir sample  : {len(reservoir.sample)} of {reservoir.n_seen} kept, "
          f"median util {np.median(reservoir.sample):.3f}")


if __name__ == "__main__":
    main()
