#!/usr/bin/env python
"""Cache rack: scatter-gather correlation and uplink-bound bursts.

Runs the Cache workload (leader/follower groups answering web-frontend
batches with large responses) on the packet simulator, then shows the two
cross-port effects the paper attributes to it:

* Fig 8 — servers in the same scatter-gather group light up together
  (strong within-group Pearson correlation at 250 µs);
* Fig 9 — hot samples concentrate on the 1:4-oversubscribed uplinks,
  because responses dwarf requests.

Run:  python examples/cache_scatter_gather.py
"""

import numpy as np

from repro import HighResSampler, SamplerConfig, Simulator, build_rack
from repro.analysis.correlation import pearson_matrix
from repro.analysis.report import heatmap_to_text
from repro.core.counters import bind_all_tx_bytes
from repro.netsim import RackConfig, SwitchCounterSurface, TorSwitchConfig
from repro.units import ms, us
from repro.workloads import CacheConfig, CacheWorkload


def main() -> None:
    sim = Simulator(seed=11)
    rack = build_rack(
        sim,
        RackConfig(
            name="cache",
            switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
            n_remote_hosts=24,
        ),
    )
    from repro.workloads.distributions import LogNormalSizes

    workload = CacheWorkload(
        rack,
        CacheConfig(
            batch_rate_per_s=400,
            group_size=4,
            # larger responses make group activations span several 250 us
            # periods, sharpening the Fig 8 correlation signal
            response=LogNormalSizes(median_bytes=120_000, sigma=0.8),
        ),
        rng=5,
    )
    workload.install()
    sim.run_for(ms(20))

    surface = SwitchCounterSurface(rack.tor)
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(250)), bind_all_tx_bytes(surface), rng=2
    )
    report = sampler.run_in_sim(sim, ms(150))

    down_util = np.column_stack(
        [report.traces[f"down{i}.tx_bytes"].utilization() for i in range(8)]
    )
    up_util = np.column_stack(
        [report.traces[f"up{i}.tx_bytes"].utilization() for i in range(4)]
    )

    print("=== Fig 8 effect: server-pair correlation @ 250 us ===")
    matrix = pearson_matrix(down_util)
    labels = [f"s{i}" for i in range(8)]
    print(heatmap_to_text(matrix, labels))
    groups = workload.groups
    for index, group in enumerate(groups):
        pairs = [
            matrix[a, b] for a in group for b in group if a < b and b < 8 and a < 8
        ]
        if pairs:
            print(f"group {index} ({group}): mean within-group corr = {np.mean(pairs):+.2f}")
    across = [matrix[a, b] for a in groups[0] for b in groups[1] if a < 8 and b < 8]
    print(f"across groups 0/1    : mean corr = {np.mean(across):+.2f}")

    print()
    print("=== Fig 9 effect: where are the hot samples? ===")
    up_hot = int((up_util > 0.5).sum())
    down_hot = int((down_util > 0.5).sum())
    total = max(up_hot + down_hot, 1)
    print(f"hot uplink samples  : {up_hot} ({up_hot / total:.0%})")
    print(f"hot downlink samples: {down_hot} ({down_hot / total:.0%})")
    print(f"bytes: uplinks tx {sum(p.counters.tx_bytes for p in rack.tor.uplink_ports):,} "
          f"vs downlinks tx {sum(p.counters.tx_bytes for p in rack.tor.downlink_ports):,}")
    print()
    print(f"scatter-gather batches served: {workload.stats.requests_completed}")


if __name__ == "__main__":
    main()
