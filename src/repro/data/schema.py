"""Distribution-file schema.

The authors released "raw data for the distributions presented in the
paper" as per-figure files of (x, cdf) pairs.  We mirror that layout so
a user with the real release can diff it against our synthetic output:
one file per (figure, application) with a small header and two columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataFormatError

HEADER_PREFIX = "# imc2017-distribution"
FORMAT_VERSION = 1


@dataclass(frozen=True)
class DistributionFile:
    """An (x, cdf) distribution with identifying metadata."""

    figure: str  # e.g. "fig3"
    app: str  # "web" | "cache" | "hadoop" | "all"
    unit: str  # e.g. "us", "fraction"
    x: np.ndarray
    cdf: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=np.float64)
        cdf = np.asarray(self.cdf, dtype=np.float64)
        if x.ndim != 1 or x.shape != cdf.shape:
            raise DataFormatError("x and cdf must be equal-length 1-D arrays")
        if len(x) < 2:
            raise DataFormatError("distribution needs at least two points")
        if np.any(np.diff(x) < 0):
            raise DataFormatError("x values must be non-decreasing")
        if np.any(np.diff(cdf) < -1e-12):
            raise DataFormatError("cdf must be non-decreasing")
        if cdf[0] < -1e-12 or cdf[-1] > 1.0 + 1e-12:
            raise DataFormatError("cdf values must lie in [0, 1]")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "cdf", cdf)

    def percentile(self, q: float) -> float:
        """Invert the CDF at quantile q in [0, 1] (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise DataFormatError(f"quantile {q} outside [0, 1]")
        return float(np.interp(q, self.cdf, self.x))

    def header_lines(self) -> list[str]:
        return [
            f"{HEADER_PREFIX} v{FORMAT_VERSION}",
            f"# figure: {self.figure}",
            f"# app: {self.app}",
            f"# unit: {self.unit}",
            "# columns: x cdf",
        ]
