"""Published-data handling.

``published`` holds every quantitative statement in the paper as a
structured target (used by experiments and EXPERIMENTS.md); ``schema``
and ``io`` implement the distribution-file format of the authors' data
release (github.com/zhangqiaorjc/imc2017-data) so real distributions can
be dropped in next to synthetic ones.
"""

from repro.data.published import PAPER, PaperTargets, Table2Entry
from repro.data.schema import DistributionFile
from repro.data.io import read_distribution, write_distribution

__all__ = [
    "PAPER",
    "PaperTargets",
    "Table2Entry",
    "DistributionFile",
    "read_distribution",
    "write_distribution",
]
