"""Reading and writing distribution files."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.data.schema import FORMAT_VERSION, HEADER_PREFIX, DistributionFile
from repro.errors import DataFormatError


def write_distribution(path: str | Path, dist: DistributionFile) -> None:
    """Write one distribution file (text, two columns)."""
    path = Path(path)
    lines = dist.header_lines()
    for x, f in zip(dist.x, dist.cdf):
        lines.append(f"{x:.9g} {f:.9g}")
    path.write_text("\n".join(lines) + "\n")


def read_distribution(path: str | Path) -> DistributionFile:
    """Parse a distribution file, validating the header and columns."""
    path = Path(path)
    meta: dict[str, str] = {}
    xs: list[float] = []
    fs: list[float] = []
    lines = path.read_text().splitlines()
    if not lines or not lines[0].startswith(HEADER_PREFIX):
        raise DataFormatError(f"{path}: missing '{HEADER_PREFIX}' header")
    version = lines[0].rsplit("v", 1)[-1]
    if version.strip() != str(FORMAT_VERSION):
        raise DataFormatError(f"{path}: unsupported format version {version!r}")
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if ":" in body:
                key, _, value = body.partition(":")
                meta[key.strip()] = value.strip()
            continue
        parts = line.split()
        if len(parts) != 2:
            raise DataFormatError(f"{path}:{line_number}: expected two columns")
        try:
            xs.append(float(parts[0]))
            fs.append(float(parts[1]))
        except ValueError:
            raise DataFormatError(
                f"{path}:{line_number}: non-numeric value {line!r}"
            ) from None
    for required in ("figure", "app", "unit"):
        if required not in meta:
            raise DataFormatError(f"{path}: missing '{required}' in header")
    return DistributionFile(
        figure=meta["figure"],
        app=meta["app"],
        unit=meta["unit"],
        x=np.asarray(xs),
        cdf=np.asarray(fs),
    )


def distribution_from_samples(
    samples: np.ndarray,
    figure: str,
    app: str,
    unit: str,
    n_points: int = 200,
) -> DistributionFile:
    """Build a release-format distribution from raw samples."""
    cdf = EmpiricalCdf(np.asarray(samples, dtype=np.float64))
    xs, fs = cdf.grid(n_points)
    return DistributionFile(figure=figure, app=app, unit=unit, x=xs, cdf=fs)
