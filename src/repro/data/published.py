"""The paper's published statistics, digitized from the text.

Every number is quoted from Zhang et al., IMC 2017; section references
are in the field comments.  These are the comparison targets printed by
every experiment and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

APPS = ("web", "cache", "hadoop")


@dataclass(frozen=True, slots=True)
class Table2Entry:
    """One application's burst Markov model (Table 2 + Eq. 1-3)."""

    p01: float  # p(hot | previous cold)
    p11: float  # p(hot | previous hot)
    likelihood_ratio: float

    @property
    def p00(self) -> float:
        return 1.0 - self.p01

    @property
    def p10(self) -> float:
        return 1.0 - self.p11


@dataclass(frozen=True)
class PaperTargets:
    """All headline numbers, keyed by application where applicable."""

    # --- Sec 3 / Fig 1: coarse-grained motivation
    fig1_utilization_drop_correlation: float = 0.098
    fig2_low_util_port: float = 0.09  # ~9 % average utilization (web path)
    fig2_high_util_port: float = 0.43  # ~43 % (offline data processing)

    # --- Sec 4.1 / Table 1: sampling interval vs missed intervals
    tab1_miss_rates: dict = field(
        default_factory=lambda: {1_000: 1.00, 10_000: 0.10, 25_000: 0.01}
    )  # interval_ns -> miss fraction
    buffer_counter_interval_ns: int = 50_000  # "takes much longer to poll (50us)"

    # --- Sec 5.1 / Fig 3: burst durations at 25 us
    fig3_p90_burst_duration_ns: dict = field(
        default_factory=lambda: {"web": 50_000, "cache": 200_000, "hadoop": 200_000}
    )  # "p90 < 200 us for all three, Web lowest at 50 us (two periods)"
    fig3_single_period_fraction_min: dict = field(
        default_factory=lambda: {"web": 0.60, "cache": 0.60}
    )  # "over 60 % of Web and Cache bursts terminated within [25 us]"
    microburst_share_min: float = 0.70  # abstract: ">70 % of bursts ... tens of us"

    # --- Sec 5.1 / Table 2
    table2: dict = field(
        default_factory=lambda: {
            "web": Table2Entry(p01=0.003, p11=0.359, likelihood_ratio=119.7),
            "cache": Table2Entry(p01=0.016, p11=0.721, likelihood_ratio=45.1),
            "hadoop": Table2Entry(p01=0.042, p11=0.655, likelihood_ratio=15.6),
        }
    )

    # --- Sec 5.2 / Fig 4: inter-burst periods
    fig4_small_gap_fraction: dict = field(
        default_factory=lambda: {"web": 0.40, "cache": 0.40}
    )  # "40 % of inter-burst periods last less than 100 us" (web/cache)
    fig4_gap_tail_ns: int = 100_000_000  # "order of hundreds of milliseconds"
    fig4_poisson_p_value_max: float = 0.05  # "p-value close to 0": reject Poisson

    # --- Sec 5.3 / Fig 5: packet sizes inside vs outside bursts
    fig5_large_packet_increase: dict = field(
        default_factory=lambda: {"web": 0.60, "cache": 0.20, "hadoop": 0.05}
    )  # relative increase of large packets inside bursts
    fig5_hadoop_mtu_share_min: float = 0.80  # "vast majority always large"

    # --- Sec 5.4 / Fig 6: utilization distribution
    fig6_hadoop_hot_time: float = 0.15  # "Hadoop ports spend the most time in bursts at ~15 %"
    fig6_hadoop_full_rate_time: float = 0.10  # "~10 % of periods at close to 100 %"

    # --- Sec 6.1 / Fig 7: uplink balance
    fig7_median_mad_min: float = 0.25  # "all three types had a MAD of over 25 %"
    fig7_hadoop_p90_mad: float = 1.00  # "90th percentile ... deviation of 100 %"

    # --- Sec 6.2 / Fig 8: server correlation
    fig8_web_corr_max: float = 0.10  # "almost no correlation"
    fig8_cache_group_corr_min: float = 0.50  # "very strong correlation" in subsets
    fig8_hadoop_corr_range: tuple = (0.05, 0.45)  # "some ... but modest"

    # --- Sec 6.3 / Fig 9: directionality
    fig9_uplink_share: dict = field(
        default_factory=lambda: {"web": 0.10, "cache": 0.55, "hadoop": 0.18}
    )  # hadoop stated exactly (18 %); web "even lower"; cache majority-uplink

    # --- Sec 6.4 / Fig 10: buffers
    fig10_max_hot_port_fraction: dict = field(
        default_factory=lambda: {"web": 0.71, "cache": 0.64, "hadoop": 1.00}
    )
    fig10_hadoop_standing_occupancy: bool = True  # "high standing buffer occupancy"

    # --- Sec 4.2: measurement campaign shape
    campaign_racks_per_app: int = 10
    campaign_hours: int = 24
    campaign_window_s: int = 120
    campaign_total_windows: int = 720
    campaign_samples_per_window: int = 5_000_000  # "around 5 million data points"

    # --- network architecture (Sec 4.2, 6.3)
    server_link_gbps: int = 10
    tor_uplinks: int = 4
    oversubscription: float = 4.0
    drops_tor_to_server_share: float = 0.90  # "~90 % ... in the ToR-server direction"


PAPER = PaperTargets()
