"""Export and compare release-format distribution files.

The authors released (x, cdf) distributions for the paper's figures at
github.com/zhangqiaorjc/imc2017-data.  ``export_distributions`` writes
our synthetic equivalents in the same format; ``compare_directory``
loads any directory of such files (ours or the real release) and reports
percentile and KS-distance agreement against freshly synthesized data —
so a user with the original data can quantify the reproduction directly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.bursts import extract_bursts_from_trace
from repro.analysis.cdf import EmpiricalCdf
from repro.data.io import distribution_from_samples, read_distribution, write_distribution
from repro.errors import DataFormatError
from repro.experiments.common import APPS, app_byte_traces
from repro.units import NS_PER_US

#: figure id -> (unit, extractor over per-window burst stats)
_EXPORTABLE = ("fig3", "fig4", "fig6")


def _samples_for(figure: str, app: str, seed: int, n_windows: int, window_s: float) -> np.ndarray:
    traces = app_byte_traces(app, seed=seed, n_windows=n_windows, window_s=window_s)
    if figure == "fig6":
        return np.clip(np.concatenate([t.utilization() for t in traces]), 0.0, 1.0)
    stats = [extract_bursts_from_trace(trace) for trace in traces]
    if figure == "fig3":
        return np.concatenate([s.durations_ns for s in stats]) / NS_PER_US
    if figure == "fig4":
        return np.concatenate([s.gaps_ns for s in stats]) / NS_PER_US
    raise DataFormatError(f"figure {figure!r} has no exportable distribution")


_UNITS = {"fig3": "us", "fig4": "us", "fig6": "fraction"}


def export_distributions(
    out_dir: str | Path,
    seed: int = 0,
    n_windows: int = 24,
    window_s: float = 2.0,
) -> list[Path]:
    """Write every exportable distribution; returns the file paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for figure in _EXPORTABLE:
        for app in APPS:
            samples = _samples_for(figure, app, seed, n_windows, window_s)
            dist = distribution_from_samples(samples, figure, app, _UNITS[figure])
            path = out_dir / f"{figure}_{app}.dist"
            write_distribution(path, dist)
            written.append(path)
    return written


def compare_directory(
    directory: str | Path,
    seed: int = 0,
    n_windows: int = 24,
    window_s: float = 2.0,
) -> list[dict]:
    """Compare every distribution file in ``directory`` against fresh
    synthetic data; returns one report dict per file."""
    directory = Path(directory)
    paths = sorted(directory.glob("*.dist"))
    if not paths:
        raise DataFormatError(f"no .dist files in {directory}")
    reports: list[dict] = []
    for path in paths:
        reference = read_distribution(path)
        samples = _samples_for(
            reference.figure, reference.app, seed, n_windows, window_s
        )
        ours = EmpiricalCdf(samples)
        # Distributions with atoms (burst durations are multiples of the
        # sampling period) repeat x values on the quantile grid; keep the
        # maximal cdf per unique x so evaluation is right-continuous, and
        # compare both CDFs on the union of their unique support points.
        unique_x, last_index = np.unique(reference.x[::-1], return_index=True)
        unique_cdf = reference.cdf[::-1][last_index]
        grid = np.union1d(unique_x, np.unique(ours.values))
        reference_on_grid = np.interp(grid, unique_x, unique_cdf, left=0.0, right=1.0)
        ours_on_grid = ours(grid)
        ks = float(np.max(np.abs(reference_on_grid - ours_on_grid)))
        reports.append(
            {
                "file": path.name,
                "figure": reference.figure,
                "app": reference.app,
                "reference_p50": reference.percentile(0.5),
                "ours_p50": ours.median,
                "reference_p90": reference.percentile(0.9),
                "ours_p90": ours.p90,
                "ks_distance": ks,
            }
        )
    return reports
