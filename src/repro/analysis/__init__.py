"""Analysis of high-resolution counter traces.

Implements every statistic the paper reports: burst extraction and
durations (Fig 3), inter-burst gaps and the Poisson test (Fig 4, Sec 5.2),
the burst Markov model (Table 2), packet-size regimes (Fig 5),
utilization distributions (Fig 6), uplink balance (Fig 7), server
correlation (Fig 8), burst directionality (Fig 9), and buffer-vs-hot-port
statistics (Fig 10).
"""

from repro.analysis.runs import Run, run_lengths, runs_of
from repro.analysis.bursts import (
    HOT_THRESHOLD,
    BurstStats,
    GapAwareBurstStats,
    burst_cdf_delta_bound,
    burst_durations_ns,
    extract_bursts,
    extract_bursts_from_trace,
    extract_bursts_gap_aware,
    hot_mask,
    interburst_gaps_ns,
    time_in_bursts_fraction,
    trace_hot_mask,
)
from repro.analysis.markov import TransitionMatrix, burst_likelihood_ratio, fit_transition_matrix
from repro.analysis.cdf import EmpiricalCdf, missing_mass_bound
from repro.analysis.mad import mean_absolute_deviation, normalized_mad_series, resample_utilization
from repro.analysis.correlation import pearson_correlation, pearson_matrix
from repro.analysis.kstest import exponential_ks_test, KsResult
from repro.analysis.packetsizes import SizeHistogramSplit, split_histogram_by_burst
from repro.analysis.hotports import hot_share_by_direction, hot_port_counts
from repro.analysis.bufferstats import BoxStats, occupancy_by_hot_ports
from repro.analysis.report import format_cdf_rows, format_table

__all__ = [
    "Run",
    "run_lengths",
    "runs_of",
    "HOT_THRESHOLD",
    "BurstStats",
    "GapAwareBurstStats",
    "burst_cdf_delta_bound",
    "burst_durations_ns",
    "extract_bursts",
    "extract_bursts_from_trace",
    "extract_bursts_gap_aware",
    "trace_hot_mask",
    "hot_mask",
    "interburst_gaps_ns",
    "time_in_bursts_fraction",
    "TransitionMatrix",
    "burst_likelihood_ratio",
    "fit_transition_matrix",
    "EmpiricalCdf",
    "missing_mass_bound",
    "mean_absolute_deviation",
    "normalized_mad_series",
    "resample_utilization",
    "pearson_correlation",
    "pearson_matrix",
    "exponential_ks_test",
    "KsResult",
    "SizeHistogramSplit",
    "split_histogram_by_burst",
    "hot_share_by_direction",
    "hot_port_counts",
    "BoxStats",
    "occupancy_by_hot_ports",
    "format_cdf_rows",
    "format_table",
]
