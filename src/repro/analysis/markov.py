"""Two-state burst Markov model (Sec 5.1, Table 2).

Each sampling interval is classified hot (1) or not (0); the maximum
likelihood estimate of the first-order transition matrix is the count of
each transition divided by the occupancy of the source state.  The
likelihood ratio r = p(1|1) / p(1|0) measures burst correlation: r >> 1
means hot samples clump, refuting independent arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class TransitionMatrix:
    """MLE of a 2-state Markov chain.

    ``p[a][b]`` = p(x_t = b | x_{t-1} = a), rows sum to 1 (when the
    source state was observed at all).
    """

    p00: float
    p01: float
    p10: float
    p11: float
    counts: tuple[tuple[int, int], tuple[int, int]]

    def as_array(self) -> np.ndarray:
        return np.array([[self.p00, self.p01], [self.p10, self.p11]])

    @property
    def likelihood_ratio(self) -> float:
        """r = p(1|1) / p(1|0); ~1 for independent arrivals (Sec 5.1)."""
        if self.p01 == 0.0:
            return float("inf") if self.p11 > 0 else float("nan")
        return self.p11 / self.p01

    @property
    def stationary_hot_fraction(self) -> float:
        """Stationary probability of the hot state, pi_1 = p01/(p01+p10)."""
        denom = self.p01 + self.p10
        if denom == 0.0:
            return float("nan")
        return self.p01 / denom


def count_transitions(mask: np.ndarray) -> tuple[tuple[int, int], tuple[int, int]]:
    """Counts of (prev, next) state pairs in a boolean series."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise AnalysisError("transition counting expects a 1-D mask")
    if len(mask) < 2:
        raise AnalysisError("need at least two samples to count transitions")
    prev = mask[:-1]
    nxt = mask[1:]
    c00 = int(np.sum(~prev & ~nxt))
    c01 = int(np.sum(~prev & nxt))
    c10 = int(np.sum(prev & ~nxt))
    c11 = int(np.sum(prev & nxt))
    return ((c00, c01), (c10, c11))


def fit_transition_matrix(mask: np.ndarray) -> TransitionMatrix:
    """MLE transition matrix of a hot/not-hot series (Table 2)."""
    counts = count_transitions(mask)
    (c00, c01), (c10, c11) = counts
    from0 = c00 + c01
    from1 = c10 + c11
    p00 = c00 / from0 if from0 else float("nan")
    p01 = c01 / from0 if from0 else float("nan")
    p10 = c10 / from1 if from1 else float("nan")
    p11 = c11 / from1 if from1 else float("nan")
    return TransitionMatrix(p00=p00, p01=p01, p10=p10, p11=p11, counts=counts)


def fit_pooled_transition_matrix(masks: list[np.ndarray]) -> TransitionMatrix:
    """Pool transition counts across many windows before normalising.

    The paper computes per-application matrices over all measured
    windows of that rack type; pooling counts (rather than averaging
    per-window probabilities) is the correct MLE for that.
    """
    if not masks:
        raise AnalysisError("no masks to pool")
    totals = np.zeros((2, 2), dtype=np.int64)
    for mask in masks:
        (c00, c01), (c10, c11) = count_transitions(mask)
        totals += np.array([[c00, c01], [c10, c11]])
    from0 = totals[0].sum()
    from1 = totals[1].sum()
    p00 = totals[0, 0] / from0 if from0 else float("nan")
    p01 = totals[0, 1] / from0 if from0 else float("nan")
    p10 = totals[1, 0] / from1 if from1 else float("nan")
    p11 = totals[1, 1] / from1 if from1 else float("nan")
    return TransitionMatrix(
        p00=p00,
        p01=p01,
        p10=p10,
        p11=p11,
        counts=((int(totals[0, 0]), int(totals[0, 1])), (int(totals[1, 0]), int(totals[1, 1]))),
    )


def burst_likelihood_ratio(mask: np.ndarray) -> float:
    """Convenience: likelihood ratio straight from a hot mask."""
    return fit_transition_matrix(mask).likelihood_ratio
