"""Cross-port hot-sample statistics (Fig 9 directionality, Fig 10 input).

Fig 9 asks: of all (port, period) samples that are hot, what share are
uplinks vs. downlinks?  Fig 10 needs, per coarse window, how many ports
were simultaneously hot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bursts import HOT_THRESHOLD
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class DirectionShare:
    """Fig 9's quantity: relative frequency of hot uplink/downlink samples."""

    uplink_hot: int
    downlink_hot: int

    @property
    def total_hot(self) -> int:
        return self.uplink_hot + self.downlink_hot

    @property
    def uplink_share(self) -> float:
        if self.total_hot == 0:
            return float("nan")
        return self.uplink_hot / self.total_hot

    @property
    def downlink_share(self) -> float:
        if self.total_hot == 0:
            return float("nan")
        return self.downlink_hot / self.total_hot


def hot_share_by_direction(
    uplink_util: np.ndarray,
    downlink_util: np.ndarray,
    threshold: float = HOT_THRESHOLD,
) -> DirectionShare:
    """Count hot samples on each side of the switch.

    Both arguments are (n_periods, n_ports) utilization arrays for the
    same periods.
    """
    up = np.asarray(uplink_util, dtype=np.float64)
    down = np.asarray(downlink_util, dtype=np.float64)
    if up.ndim != 2 or down.ndim != 2:
        raise AnalysisError("expected (n_periods, n_ports) arrays")
    if up.shape[0] != down.shape[0]:
        raise AnalysisError("uplink/downlink period counts differ")
    return DirectionShare(
        uplink_hot=int((up > threshold).sum()),
        downlink_hot=int((down > threshold).sum()),
    )


def hot_port_counts(
    utilization_by_port: np.ndarray,
    threshold: float = HOT_THRESHOLD,
) -> np.ndarray:
    """Number of simultaneously hot ports in each period."""
    util = np.asarray(utilization_by_port, dtype=np.float64)
    if util.ndim != 2:
        raise AnalysisError("expected (n_periods, n_ports)")
    return (util > threshold).sum(axis=1)


def max_simultaneous_hot_fraction(
    utilization_by_port: np.ndarray, threshold: float = HOT_THRESHOLD
) -> float:
    """Largest observed fraction of ports hot at once (Sec 6.4: Hadoop
    reaches 100 %, Web 71 %, Cache 64 %)."""
    util = np.asarray(utilization_by_port, dtype=np.float64)
    if util.ndim != 2 or util.shape[1] == 0:
        raise AnalysisError("expected non-empty (n_periods, n_ports)")
    counts = hot_port_counts(util, threshold)
    if len(counts) == 0:
        return 0.0
    return float(counts.max() / util.shape[1])


def window_hot_port_counts(
    utilization_by_port: np.ndarray,
    periods_per_window: int,
    threshold: float = HOT_THRESHOLD,
) -> np.ndarray:
    """Per-window count of ports that were hot at any point in the window.

    Fig 10 groups 50 ms windows by "the number of hot ports during that
    same span", with hotness judged at the 300 µs sampling granularity.
    """
    util = np.asarray(utilization_by_port, dtype=np.float64)
    if util.ndim != 2:
        raise AnalysisError("expected (n_periods, n_ports)")
    if periods_per_window <= 0:
        raise AnalysisError("periods_per_window must be positive")
    n = (util.shape[0] // periods_per_window) * periods_per_window
    if n == 0:
        raise AnalysisError("fewer periods than one window")
    hot = util[:n] > threshold
    windows = hot.reshape(n // periods_per_window, periods_per_window, util.shape[1])
    return windows.any(axis=1).sum(axis=1)
