"""Run-length encoding of boolean series.

Bursts are "unbroken sequences of hot samples" (Sec 5.1), so run-length
encoding is the primitive underneath burst durations, inter-burst gaps,
and the Markov transition counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernels import scalar_enabled, scalar_run_lengths
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class Run:
    """A maximal run of equal values: ``series[start:stop]`` all ``value``."""

    start: int
    stop: int
    value: bool

    @property
    def length(self) -> int:
        return self.stop - self.start


def runs_of(mask: np.ndarray) -> list[Run]:
    """All maximal runs of a boolean array, in order."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise AnalysisError("runs_of expects a one-dimensional mask")
    if len(mask) == 0:
        return []
    change = np.flatnonzero(np.diff(mask.astype(np.int8))) + 1
    starts = np.concatenate(([0], change))
    stops = np.concatenate((change, [len(mask)]))
    return [
        Run(start=int(a), stop=int(b), value=bool(mask[a]))
        for a, b in zip(starts, stops)
    ]


def run_lengths(mask: np.ndarray, value: bool) -> np.ndarray:
    """Lengths of all maximal runs equal to ``value`` (vectorised)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise AnalysisError("run_lengths expects a one-dimensional mask")
    if len(mask) == 0:
        return np.zeros(0, dtype=np.int64)
    if scalar_enabled():
        return scalar_run_lengths(mask, value)
    target = mask == value
    padded = np.concatenate(([False], target, [False]))
    diff = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diff == 1)
    stops = np.flatnonzero(diff == -1)
    return (stops - starts).astype(np.int64)


def interior_run_lengths(mask: np.ndarray, value: bool) -> np.ndarray:
    """Run lengths excluding runs touching either boundary.

    Inter-burst gaps are only meaningful between two observed bursts; a
    gap truncated by the start or end of the measurement window would
    bias the distribution downward, so Fig 4's analysis drops them.
    """
    mask = np.asarray(mask, dtype=bool)
    lengths = run_lengths(mask, value)
    if len(lengths) == 0:
        return lengths
    drop_first = len(mask) > 0 and bool(mask[0]) == value
    drop_last = len(mask) > 0 and bool(mask[-1]) == value
    start = 1 if drop_first else 0
    stop = len(lengths) - 1 if drop_last else len(lengths)
    if stop <= start:
        return np.zeros(0, dtype=np.int64)
    return lengths[start:stop]
