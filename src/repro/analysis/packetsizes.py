"""Packet-size regimes inside and outside bursts (Fig 5, Sec 5.3).

The size-histogram counter is polled alongside the byte counter; each
sampling period is classified hot or not from the byte counter, and the
per-period histogram increments are accumulated into an inside-burst and
an outside-burst histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bursts import HOT_THRESHOLD, hot_mask
from repro.core.samples import CounterTrace
from repro.errors import AnalysisError
from repro.netsim.port import SIZE_BIN_LABELS


@dataclass(frozen=True, slots=True)
class SizeHistogramSplit:
    """Normalised packet-size histograms for the two regimes."""

    inside: np.ndarray
    outside: np.ndarray
    bin_labels: tuple[str, ...]
    n_hot_periods: int
    n_cold_periods: int

    @property
    def large_fraction_inside(self) -> float:
        """Share of packets in the largest bin during bursts."""
        return float(self.inside[-1])

    @property
    def large_fraction_outside(self) -> float:
        return float(self.outside[-1])

    @property
    def large_packet_increase(self) -> float:
        """Relative increase of largest-bin share inside bursts, e.g.
        +0.2 means 20 % more large packets (the paper's Cache number)."""
        if self.large_fraction_outside == 0.0:
            return float("inf") if self.large_fraction_inside > 0 else 0.0
        return self.large_fraction_inside / self.large_fraction_outside - 1.0


def split_histogram_by_burst(
    byte_trace: CounterTrace,
    hist_trace: CounterTrace,
    threshold: float = HOT_THRESHOLD,
    bin_labels: tuple[str, ...] = SIZE_BIN_LABELS,
) -> SizeHistogramSplit:
    """Split histogram increments by the hotness of each period.

    Both traces must come from the same measurement campaign (identical
    timestamps): the paper polls them together for exactly this reason.
    """
    if len(byte_trace) != len(hist_trace) or not np.array_equal(
        byte_trace.timestamps_ns, hist_trace.timestamps_ns
    ):
        raise AnalysisError("byte and histogram traces must share timestamps")
    util = byte_trace.utilization()
    hist_deltas = hist_trace.deltas()
    if hist_deltas.ndim != 2:
        raise AnalysisError("histogram trace must be 2-D (periods x bins)")
    mask = hot_mask(util, threshold)
    inside_counts = hist_deltas[mask].sum(axis=0).astype(np.float64)
    outside_counts = hist_deltas[~mask].sum(axis=0).astype(np.float64)

    def _normalise(counts: np.ndarray) -> np.ndarray:
        total = counts.sum()
        if total == 0:
            return np.zeros_like(counts)
        return counts / total

    return SizeHistogramSplit(
        inside=_normalise(inside_counts),
        outside=_normalise(outside_counts),
        bin_labels=bin_labels,
        n_hot_periods=int(mask.sum()),
        n_cold_periods=int((~mask).sum()),
    )
