"""Kolmogorov–Smirnov test against an exponential distribution.

Sec 5.2 tests whether µburst arrivals form a homogeneous Poisson process
by KS-testing inter-arrival times against an exponential fit and obtains
a p-value "close to 0".  We implement the statistic directly (with the
rate fitted by MLE, i.e. 1/mean) and use the asymptotic Kolmogorov
distribution for the p-value; scipy's ``kstest`` is used in the test
suite as a cross-check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class KsResult:
    """KS statistic and p-value for the exponential null."""

    statistic: float
    p_value: float
    n: int
    fitted_rate: float

    @property
    def rejects_poisson(self) -> bool:
        """Reject at the conventional 5 % level."""
        return self.p_value < 0.05


def kolmogorov_sf(x: float, terms: int = 100) -> float:
    """Survival function of the Kolmogorov distribution.

    Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); the series
    converges extremely fast for x > 0.3.
    """
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        term = (-1) ** (k - 1) * math.exp(-2.0 * k * k * x * x)
        total += term
        if abs(term) < 1e-12:
            break
    return max(0.0, min(1.0, 2.0 * total))


def exponential_ks_test(samples: np.ndarray) -> KsResult:
    """KS test of ``samples`` against Exp(rate = 1/mean).

    Note: fitting the rate from the data makes the test conservative
    (the true null distribution is Lilliefors-corrected), so a rejection
    here is a fortiori a rejection under the corrected test — the
    direction the paper's conclusion needs.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise AnalysisError("KS test expects a 1-D sample")
    if len(samples) < 8:
        raise AnalysisError("KS test needs at least 8 samples")
    if np.any(samples <= 0):
        raise AnalysisError("inter-arrival times must be positive")
    mean = samples.mean()
    rate = 1.0 / mean
    sorted_samples = np.sort(samples)
    n = len(samples)
    cdf = 1.0 - np.exp(-rate * sorted_samples)
    empirical_hi = np.arange(1, n + 1) / n
    empirical_lo = np.arange(0, n) / n
    statistic = float(
        max(np.max(empirical_hi - cdf), np.max(cdf - empirical_lo))
    )
    p_value = kolmogorov_sf(statistic * math.sqrt(n))
    return KsResult(statistic=statistic, p_value=p_value, n=n, fitted_rate=rate)
