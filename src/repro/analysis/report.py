"""Plain-text emitters for experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent (fixed-width ASCII tables
and CDF series) without pulling in a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.cdf import EmpiricalCdf


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0.0):
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_cdf_rows(
    cdf: EmpiricalCdf,
    label: str,
    percentiles: Sequence[float] = (10, 25, 50, 75, 90, 99),
    unit: str = "",
) -> str:
    """One line per requested percentile of a CDF."""
    parts = [f"p{int(q) if q == int(q) else q}={cdf.percentile(q):.4g}{unit}" for q in percentiles]
    return f"{label}: " + "  ".join(parts)


def cdf_series(cdf: EmpiricalCdf, n_points: int = 50) -> list[tuple[float, float]]:
    """(x, F) pairs matching the released-data distribution format."""
    xs, fs = cdf.grid(n_points)
    return [(float(x), float(f)) for x, f in zip(xs, fs)]


def format_comparison(
    rows: Iterable[tuple[str, object, object]],
    title: str | None = None,
) -> str:
    """Paper-vs-measured table used by every experiment."""
    return format_table(
        headers=("metric", "paper", "measured"),
        rows=rows,
        title=title,
    )


def heatmap_to_text(matrix: np.ndarray, labels: Sequence[str] | None = None) -> str:
    """Coarse ASCII rendering of a correlation heatmap (Fig 8)."""
    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    if labels is None:
        labels = [f"s{i}" for i in range(n)]
    ramp = " .:-=+*#%@"

    def shade(value: float) -> str:
        clipped = min(1.0, max(0.0, (value + 1.0) / 2.0))
        return ramp[min(len(ramp) - 1, int(clipped * (len(ramp) - 1)))]

    width = max(len(label) for label in labels)
    lines = []
    for i, label in enumerate(labels):
        row = "".join(shade(float(matrix[i, j])) for j in range(n))
        lines.append(f"{label.rjust(width)} {row}")
    return "\n".join(lines)
