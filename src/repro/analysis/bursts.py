"""Burst extraction.

Following Sec 5.1: an egress link is *hot* during a sampling period when
its utilization exceeds 50 %; an unbroken sequence of hot samples is a
burst; a µburst is a burst shorter than 1 ms.  Durations are measured in
sampling periods times the sampling interval, so a single hot sample at
25 µs granularity is a 25 µs burst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.runs import interior_run_lengths, run_lengths
from repro.core.kernels import scalar_enabled, scalar_hot_mask
from repro.core.samples import CounterTrace
from repro.errors import AnalysisError
from repro.units import ms

#: Sec 5.1's hot threshold: utilization above 50 % of line rate.
HOT_THRESHOLD = 0.5

#: Sec 1 / Sec 3: a µburst is high utilization lasting under 1 ms.
MICROBURST_LIMIT_NS = ms(1)


def hot_mask(utilization: np.ndarray, threshold: float = HOT_THRESHOLD) -> np.ndarray:
    """Boolean hot/not-hot classification of per-interval utilization."""
    utilization = np.asarray(utilization, dtype=np.float64)
    if utilization.ndim != 1:
        raise AnalysisError("hot_mask expects a 1-D utilization series")
    if not 0.0 < threshold < 1.0:
        raise AnalysisError(f"threshold {threshold} outside (0, 1)")
    if scalar_enabled():
        return scalar_hot_mask(utilization, threshold)
    return utilization > threshold


def trace_hot_mask(trace: CounterTrace, threshold: float = HOT_THRESHOLD) -> np.ndarray:
    """Hot mask straight from a byte-counter trace."""
    return hot_mask(trace.utilization(), threshold)


def burst_durations_ns(
    mask: np.ndarray,
    interval_ns: int,
    include_boundary: bool = True,
) -> np.ndarray:
    """Durations of all bursts in a hot mask.

    ``include_boundary=False`` drops bursts clipped by the window edges
    (their true duration is unknown); the paper's windows are 2 minutes
    against microsecond bursts, so the choice is immaterial there, but it
    matters for short test windows.
    """
    if interval_ns <= 0:
        raise AnalysisError("interval must be positive")
    if include_boundary:
        lengths = run_lengths(mask, True)
    else:
        lengths = interior_run_lengths(mask, True)
    return lengths * interval_ns


def interburst_gaps_ns(mask: np.ndarray, interval_ns: int) -> np.ndarray:
    """Durations of gaps *between* bursts (boundary gaps excluded, Fig 4)."""
    if interval_ns <= 0:
        raise AnalysisError("interval must be positive")
    return interior_run_lengths(mask, False) * interval_ns


def time_in_bursts_fraction(mask: np.ndarray) -> float:
    """Fraction of sampling periods spent hot (Sec 5.4's ~15 % for Hadoop)."""
    mask = np.asarray(mask, dtype=bool)
    if len(mask) == 0:
        return 0.0
    return float(mask.mean())


def microburst_fraction(durations_ns: np.ndarray) -> float:
    """Fraction of bursts that are µbursts (< 1 ms)."""
    durations_ns = np.asarray(durations_ns)
    if len(durations_ns) == 0:
        return 0.0
    return float((durations_ns < MICROBURST_LIMIT_NS).mean())


@dataclass(frozen=True, slots=True)
class BurstStats:
    """Summary of burst behaviour for one trace (one port, one window)."""

    n_bursts: int
    n_samples: int
    interval_ns: int
    durations_ns: np.ndarray
    gaps_ns: np.ndarray
    hot_fraction: float
    microburst_fraction: float

    @property
    def p90_duration_ns(self) -> float:
        if len(self.durations_ns) == 0:
            return float("nan")
        return float(np.percentile(self.durations_ns, 90))

    @property
    def single_period_fraction(self) -> float:
        """Share of bursts lasting exactly one sampling period (Sec 5.1:
        over 60 % for Web and Cache at 25 µs)."""
        if len(self.durations_ns) == 0:
            return float("nan")
        return float((self.durations_ns == self.interval_ns).mean())


def extract_bursts(
    utilization: np.ndarray,
    interval_ns: int,
    threshold: float = HOT_THRESHOLD,
) -> BurstStats:
    """Full burst summary of one utilization series."""
    mask = hot_mask(utilization, threshold)
    durations = burst_durations_ns(mask, interval_ns)
    gaps = interburst_gaps_ns(mask, interval_ns)
    return BurstStats(
        n_bursts=len(durations),
        n_samples=len(mask),
        interval_ns=interval_ns,
        durations_ns=durations,
        gaps_ns=gaps,
        hot_fraction=time_in_bursts_fraction(mask),
        microburst_fraction=microburst_fraction(durations),
    )


def extract_bursts_from_trace(
    trace: CounterTrace, threshold: float = HOT_THRESHOLD
) -> BurstStats:
    """Burst summary straight from a byte-counter trace.

    Uses the median sampling interval as the nominal period; traces with
    misses have slightly longer intervals for the missed spans, which the
    per-interval utilization computation already accounts for.
    """
    intervals = trace.interval_durations_ns()
    if len(intervals) == 0:
        raise AnalysisError(f"trace {trace.name!r} too short for burst analysis")
    nominal = int(np.median(intervals))
    return extract_bursts(trace.utilization(), nominal, threshold)


@dataclass(frozen=True, slots=True)
class GapAwareBurstStats:
    """Burst summary of a trace with missing intervals, plus an honest
    account of how much the gaps can have moved the statistics."""

    stats: BurstStats
    n_segments: int
    n_missing_instants: int
    n_clipped_bursts: int
    coverage: float
    cdf_delta_bound: float

    @property
    def durations_ns(self) -> np.ndarray:
        return self.stats.durations_ns


def burst_cdf_delta_bound(
    n_observed_bursts: int, n_clipped_bursts: int, confidence: float = 0.99
) -> float:
    """Bound on the sup-norm shift of the observed burst-duration CDF
    relative to the full (unobserved) trace.

    Two effects move the CDF.  Bursts *clipped* by a gap are counted
    exactly (``n_clipped_bursts``, observable): each contributes at most
    one mismatched entry on each side of the comparison.  Bursts hidden
    entirely inside gaps are, for loss that is independent of utilization
    (collector backpressure, export loss), a uniform random subsample of
    the true burst population — their effect is sampling noise, covered
    by the Dvoretzky–Kiefer–Wolfowitz term at the given confidence.
    """
    if n_observed_bursts <= 0:
        return 1.0
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence {confidence} outside (0, 1)")
    clip_term = 2.0 * n_clipped_bursts / n_observed_bursts
    dkw_term = float(np.sqrt(np.log(2.0 / (1.0 - confidence)) / (2.0 * n_observed_bursts)))
    return min(1.0, clip_term + dkw_term)


def _count_clipped_bursts(masks: list[np.ndarray]) -> int:
    """Distinct observed bursts touching a gap-adjacent segment edge.

    A burst is clipped when it touches a side of a segment that borders
    a gap (segment interiors are exact; trace start/end are ordinary
    window boundaries, same as the clean analysis).  A burst spanning an
    *entire* segment starts exactly at one split point and ends at the
    next, but it is still one clipped burst — counting both edges would
    double-count it and inflate the reported CDF bound.
    """
    n_clipped = 0
    last = len(masks) - 1
    for i, mask in enumerate(masks):
        if len(mask) == 0:
            continue
        left = i > 0 and bool(mask[0])
        right = i < last and bool(mask[-1])
        if left and right and bool(mask.all()):
            n_clipped += 1
        else:
            n_clipped += int(left) + int(right)
    return n_clipped


def _run_bounds(mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(starts, stops) of every maximal True run of a boolean array."""
    padded = np.concatenate(([False], mask, [False]))
    diff = np.diff(padded.astype(np.int8))
    return np.flatnonzero(diff == 1), np.flatnonzero(diff == -1)


def _gap_aware_core_segmented(
    trace: CounterTrace, nominal: int, threshold: float, tolerance: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Reference implementation: materialize segment traces and pool.

    Returns ``(durations_ns, gaps_ns, pooled_mask, n_segments,
    n_clipped)``.  This is the oracle the vectorized core is verified
    against, and the path taken under ``REPRO_SCALAR=1``.
    """
    segments = trace.split_at_gaps(nominal, tolerance)
    if not segments:
        raise AnalysisError(f"trace {trace.name!r} has no analyzable segment")
    masks = [hot_mask(segment.utilization(), threshold) for segment in segments]
    durations = np.concatenate([burst_durations_ns(m, nominal) for m in masks])
    gaps = np.concatenate([interburst_gaps_ns(m, nominal) for m in masks])
    pooled_mask = np.concatenate(masks)
    return durations, gaps, pooled_mask, len(segments), _count_clipped_bursts(masks)


def _gap_aware_core_vectorized(
    trace: CounterTrace, nominal: int, threshold: float, tolerance: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Vectorized gap-aware core: no segment traces are materialized.

    Works entirely in interval space: gap intervals split the trace into
    maximal non-gap stretches (exactly the segments
    :meth:`~repro.core.samples.CounterTrace.split_at_gaps` would build),
    and every statistic is derived from the full-trace utilization and
    gap masks with run-length arithmetic.  Equivalence with
    :func:`_gap_aware_core_segmented` is asserted exactly in
    ``tests/property/test_kernel_equivalence.py``.
    """
    util = trace.utilization()
    hot = hot_mask(util, threshold)
    ok = ~trace.missing_interval_mask(nominal, tolerance)
    n = len(hot)
    if not ok.any():
        raise AnalysisError(f"trace {trace.name!r} has no analyzable segment")
    effective_hot = hot & ok
    # Bursts: hot runs never cross a gap interval (it is forced cold),
    # which is precisely the per-segment extraction, pooled in order.
    durations = run_lengths(effective_hot, True) * nominal
    # Inter-burst gaps: cold runs bounded by hot intervals on both sides
    # *within one stretch* — a neighbor that is a gap interval (or the
    # trace boundary) disqualifies the run, same as interior_run_lengths
    # on the segment mask.
    cold = ~hot & ok
    cold_starts, cold_stops = _run_bounds(cold)
    interior = (cold_starts > 0) & (cold_stops < n)
    left_neighbor = np.clip(cold_starts - 1, 0, max(n - 1, 0))
    right_neighbor = np.clip(cold_stops, 0, max(n - 1, 0))
    interior &= effective_hot[left_neighbor] & effective_hot[right_neighbor]
    gaps = (cold_stops - cold_starts)[interior] * nominal
    pooled_mask = hot[ok]
    # Clipped-burst count with the same one-per-burst semantics as
    # _count_clipped_bursts: a stretch that is entirely hot holds a
    # single burst touching both of its gap-adjacent edges.
    ok_starts, ok_stops = _run_bounds(ok)
    k = len(ok_starts)
    order = np.arange(k)
    left = (order > 0) & hot[ok_starts]
    right = (order < k - 1) & hot[ok_stops - 1]
    hot_csum = np.concatenate(([0], np.cumsum(hot.astype(np.int64))))
    whole = (hot_csum[ok_stops] - hot_csum[ok_starts]) == (ok_stops - ok_starts)
    spanning = left & right & whole
    n_clipped = int(spanning.sum())
    n_clipped += int((left & ~spanning).sum()) + int((right & ~spanning).sum())
    return durations, gaps, pooled_mask, k, n_clipped


def extract_bursts_gap_aware(
    trace: CounterTrace,
    threshold: float = HOT_THRESHOLD,
    tolerance: float = 1.5,
) -> GapAwareBurstStats:
    """Burst summary of a trace that may have missing intervals.

    The trace is split into contiguous segments at every gap (an interval
    longer than ``tolerance`` nominal periods), and bursts are extracted
    per segment — a gap can therefore never fuse two bursts, fabricate a
    long one across missing data, or invent inter-burst gaps.  The
    returned ``cdf_delta_bound`` (see :func:`burst_cdf_delta_bound`)
    bounds the shift of the burst-duration CDF relative to the unobserved
    full trace, so degraded figures come with an explicit error bar
    instead of a silent bias.

    The default implementation is fully vectorized (one pass over the
    interval arrays, no per-segment trace objects); ``REPRO_SCALAR=1``
    selects the segment-materializing reference implementation instead.
    """
    nominal = trace.nominal_interval_ns()
    if scalar_enabled():
        core = _gap_aware_core_segmented(trace, nominal, threshold, tolerance)
    else:
        core = _gap_aware_core_vectorized(trace, nominal, threshold, tolerance)
    durations, gaps, pooled_mask, n_segments, n_clipped = core
    stats = BurstStats(
        n_bursts=len(durations),
        n_samples=len(pooled_mask),
        interval_ns=nominal,
        durations_ns=durations,
        gaps_ns=gaps,
        hot_fraction=time_in_bursts_fraction(pooled_mask),
        microburst_fraction=microburst_fraction(durations),
    )
    n_missing = trace.n_missing_instants(nominal)
    bound = 0.0
    if n_missing > 0 or n_segments > 1:
        bound = burst_cdf_delta_bound(len(durations), n_clipped)
    return GapAwareBurstStats(
        stats=stats,
        n_segments=n_segments,
        n_missing_instants=n_missing,
        n_clipped_bursts=n_clipped,
        coverage=trace.coverage_fraction(nominal),
        cdf_delta_bound=bound,
    )
