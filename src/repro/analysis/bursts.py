"""Burst extraction.

Following Sec 5.1: an egress link is *hot* during a sampling period when
its utilization exceeds 50 %; an unbroken sequence of hot samples is a
burst; a µburst is a burst shorter than 1 ms.  Durations are measured in
sampling periods times the sampling interval, so a single hot sample at
25 µs granularity is a 25 µs burst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.runs import interior_run_lengths, run_lengths
from repro.core.samples import CounterTrace
from repro.errors import AnalysisError
from repro.units import ms

#: Sec 5.1's hot threshold: utilization above 50 % of line rate.
HOT_THRESHOLD = 0.5

#: Sec 1 / Sec 3: a µburst is high utilization lasting under 1 ms.
MICROBURST_LIMIT_NS = ms(1)


def hot_mask(utilization: np.ndarray, threshold: float = HOT_THRESHOLD) -> np.ndarray:
    """Boolean hot/not-hot classification of per-interval utilization."""
    utilization = np.asarray(utilization, dtype=np.float64)
    if utilization.ndim != 1:
        raise AnalysisError("hot_mask expects a 1-D utilization series")
    if not 0.0 < threshold < 1.0:
        raise AnalysisError(f"threshold {threshold} outside (0, 1)")
    return utilization > threshold


def trace_hot_mask(trace: CounterTrace, threshold: float = HOT_THRESHOLD) -> np.ndarray:
    """Hot mask straight from a byte-counter trace."""
    return hot_mask(trace.utilization(), threshold)


def burst_durations_ns(
    mask: np.ndarray,
    interval_ns: int,
    include_boundary: bool = True,
) -> np.ndarray:
    """Durations of all bursts in a hot mask.

    ``include_boundary=False`` drops bursts clipped by the window edges
    (their true duration is unknown); the paper's windows are 2 minutes
    against microsecond bursts, so the choice is immaterial there, but it
    matters for short test windows.
    """
    if interval_ns <= 0:
        raise AnalysisError("interval must be positive")
    if include_boundary:
        lengths = run_lengths(mask, True)
    else:
        lengths = interior_run_lengths(mask, True)
    return lengths * interval_ns


def interburst_gaps_ns(mask: np.ndarray, interval_ns: int) -> np.ndarray:
    """Durations of gaps *between* bursts (boundary gaps excluded, Fig 4)."""
    if interval_ns <= 0:
        raise AnalysisError("interval must be positive")
    return interior_run_lengths(mask, False) * interval_ns


def time_in_bursts_fraction(mask: np.ndarray) -> float:
    """Fraction of sampling periods spent hot (Sec 5.4's ~15 % for Hadoop)."""
    mask = np.asarray(mask, dtype=bool)
    if len(mask) == 0:
        return 0.0
    return float(mask.mean())


def microburst_fraction(durations_ns: np.ndarray) -> float:
    """Fraction of bursts that are µbursts (< 1 ms)."""
    durations_ns = np.asarray(durations_ns)
    if len(durations_ns) == 0:
        return 0.0
    return float((durations_ns < MICROBURST_LIMIT_NS).mean())


@dataclass(frozen=True, slots=True)
class BurstStats:
    """Summary of burst behaviour for one trace (one port, one window)."""

    n_bursts: int
    n_samples: int
    interval_ns: int
    durations_ns: np.ndarray
    gaps_ns: np.ndarray
    hot_fraction: float
    microburst_fraction: float

    @property
    def p90_duration_ns(self) -> float:
        if len(self.durations_ns) == 0:
            return float("nan")
        return float(np.percentile(self.durations_ns, 90))

    @property
    def single_period_fraction(self) -> float:
        """Share of bursts lasting exactly one sampling period (Sec 5.1:
        over 60 % for Web and Cache at 25 µs)."""
        if len(self.durations_ns) == 0:
            return float("nan")
        return float((self.durations_ns == self.interval_ns).mean())


def extract_bursts(
    utilization: np.ndarray,
    interval_ns: int,
    threshold: float = HOT_THRESHOLD,
) -> BurstStats:
    """Full burst summary of one utilization series."""
    mask = hot_mask(utilization, threshold)
    durations = burst_durations_ns(mask, interval_ns)
    gaps = interburst_gaps_ns(mask, interval_ns)
    return BurstStats(
        n_bursts=len(durations),
        n_samples=len(mask),
        interval_ns=interval_ns,
        durations_ns=durations,
        gaps_ns=gaps,
        hot_fraction=time_in_bursts_fraction(mask),
        microburst_fraction=microburst_fraction(durations),
    )


def extract_bursts_from_trace(
    trace: CounterTrace, threshold: float = HOT_THRESHOLD
) -> BurstStats:
    """Burst summary straight from a byte-counter trace.

    Uses the median sampling interval as the nominal period; traces with
    misses have slightly longer intervals for the missed spans, which the
    per-interval utilization computation already accounts for.
    """
    intervals = trace.interval_durations_ns()
    if len(intervals) == 0:
        raise AnalysisError(f"trace {trace.name!r} too short for burst analysis")
    nominal = int(np.median(intervals))
    return extract_bursts(trace.utilization(), nominal, threshold)
