"""Correlation statistics (Fig 1 scalar correlation, Fig 8 heatmaps)."""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two series.

    Returns 0.0 when either series is constant (no linear relationship
    measurable) rather than propagating a NaN, which matches how the
    paper treats idle links in Fig 1.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise AnalysisError("correlation expects two equal-length 1-D series")
    if len(x) < 2:
        raise AnalysisError("correlation needs at least two points")
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def pearson_matrix(series_by_column: np.ndarray) -> np.ndarray:
    """Pairwise Pearson matrix of (n_periods, n_series) data (Fig 8).

    Constant columns get zero correlation against everything (and 1.0 on
    the diagonal), again avoiding NaNs for idle servers.
    """
    data = np.asarray(series_by_column, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] < 2:
        raise AnalysisError("need (n_periods >= 2, n_series) data")
    n_series = data.shape[1]
    stds = data.std(axis=0)
    matrix = np.eye(n_series)
    live = np.flatnonzero(stds > 0)
    if len(live) >= 2:
        sub = np.corrcoef(data[:, live], rowvar=False)
        for a, i in enumerate(live):
            for b, j in enumerate(live):
                matrix[i, j] = sub[a, b]
    return matrix


def mean_offdiagonal(matrix: np.ndarray) -> float:
    """Average pairwise correlation excluding the diagonal."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise AnalysisError("expected a square matrix")
    n = matrix.shape[0]
    if n < 2:
        raise AnalysisError("need at least a 2x2 matrix")
    mask = ~np.eye(n, dtype=bool)
    return float(matrix[mask].mean())


def block_mean_correlation(matrix: np.ndarray, groups: list[list[int]]) -> float:
    """Mean within-group off-diagonal correlation (Cache subsets, Fig 8)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    values: list[float] = []
    for group in groups:
        for a_index, a in enumerate(group):
            for b in group[a_index + 1 :]:
                values.append(matrix[a, b])
    if not values:
        raise AnalysisError("no within-group pairs")
    return float(np.mean(values))
