"""Shared-buffer occupancy vs. concurrent bursts (Fig 10).

Fig 10 is a boxplot of normalised peak buffer occupancy during 50 ms
windows, grouped by how many ports were hot in that window.  We compute
the box statistics (quartiles + whiskers) per hot-port count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.hotports import window_hot_port_counts
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class BoxStats:
    """Matplotlib-style box statistics for one group."""

    n: int
    whisker_low: float
    q1: float
    median: float
    q3: float
    whisker_high: float
    mean: float

    @staticmethod
    def from_samples(samples: np.ndarray) -> "BoxStats":
        samples = np.asarray(samples, dtype=np.float64)
        if len(samples) == 0:
            raise AnalysisError("box stats of empty group")
        q1, median, q3 = np.percentile(samples, [25, 50, 75])
        iqr = q3 - q1
        in_low = samples[samples >= q1 - 1.5 * iqr]
        in_high = samples[samples <= q3 + 1.5 * iqr]
        return BoxStats(
            n=len(samples),
            whisker_low=float(in_low.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            whisker_high=float(in_high.max()),
            mean=float(samples.mean()),
        )


def occupancy_by_hot_ports(
    peak_occupancy_per_window: np.ndarray,
    utilization_by_port: np.ndarray,
    periods_per_window: int,
    normalize_to: float | None = None,
    threshold: float = 0.5,
) -> dict[int, BoxStats]:
    """Group per-window peak occupancy by the window's hot-port count.

    Parameters
    ----------
    peak_occupancy_per_window:
        Peak shared-buffer occupancy observed in each window (bytes, or
        already normalised).
    utilization_by_port:
        Fine-grained (n_periods, n_ports) utilization aligned so that
        ``periods_per_window`` consecutive periods form one window.
    normalize_to:
        When given, occupancies are divided by this value first — the
        paper normalises "to the maximum value we observed in any of our
        data sets".
    """
    peaks = np.asarray(peak_occupancy_per_window, dtype=np.float64)
    counts = window_hot_port_counts(
        utilization_by_port, periods_per_window, threshold=threshold
    )
    if len(peaks) < len(counts):
        counts = counts[: len(peaks)]
    elif len(peaks) > len(counts):
        peaks = peaks[: len(counts)]
    if len(peaks) == 0:
        raise AnalysisError("no complete windows")
    if normalize_to is not None:
        if normalize_to <= 0:
            raise AnalysisError("normalize_to must be positive")
        peaks = peaks / normalize_to
    result: dict[int, BoxStats] = {}
    for count in np.unique(counts):
        group = peaks[counts == count]
        result[int(count)] = BoxStats.from_samples(group)
    return result


def occupancy_scaling_slope(groups: dict[int, BoxStats]) -> float:
    """Least-squares slope of median occupancy vs. hot-port count.

    A crude scalar for "buffer occupancy scales with the number of hot
    ports more drastically in Hadoop than in Web/Cache" (Sec 6.4).
    """
    if len(groups) < 2:
        raise AnalysisError("need at least two hot-port groups")
    xs = np.array(sorted(groups), dtype=np.float64)
    ys = np.array([groups[int(x)].median for x in xs])
    slope = np.polyfit(xs, ys, 1)[0]
    return float(slope)
