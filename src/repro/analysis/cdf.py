"""Empirical cumulative distribution functions.

Every distribution figure in the paper (Figs 3, 4, 6, 7) is an empirical
CDF; this class provides evaluation, percentiles, and fixed-grid export
in the same format as the paper's released data (x, cdf columns).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import scalar_ecdf_probs, scalar_enabled, scalar_sorted
from repro.errors import AnalysisError


class EmpiricalCdf:
    """Right-continuous empirical CDF of a sample."""

    def __init__(self, samples: np.ndarray) -> None:
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 1:
            raise AnalysisError("CDF expects a one-dimensional sample")
        if len(samples) == 0:
            raise AnalysisError("CDF of an empty sample is undefined")
        if np.any(~np.isfinite(samples)):
            raise AnalysisError("CDF sample contains non-finite values")
        self._sorted = scalar_sorted(samples) if scalar_enabled() else np.sort(samples)
        self._n = len(samples)

    def __len__(self) -> int:
        return self._n

    @property
    def values(self) -> np.ndarray:
        """The sorted sample (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        """P(X <= x)."""
        if scalar_enabled():
            result = scalar_ecdf_probs(self._sorted, np.asarray(x))
        else:
            result = np.searchsorted(self._sorted, np.asarray(x), side="right") / self._n
        if np.isscalar(x):
            return float(result)
        return result

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise AnalysisError(f"percentile {q} outside [0, 100]")
        return float(np.percentile(self._sorted, q))

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        return self.percentile(90.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        return float(self._sorted.mean())

    def grid(self, n_points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) on an even quantile grid, for plotting / export."""
        if n_points < 2:
            raise AnalysisError("grid needs at least two points")
        qs = np.linspace(0.0, 100.0, n_points)
        xs = np.percentile(self._sorted, qs)
        return xs, qs / 100.0

    def ks_distance(self, other: "EmpiricalCdf") -> float:
        """Kolmogorov distance sup_x |F(x) - G(x)| between two ECDFs."""
        grid = np.union1d(self._sorted, other._sorted)
        return float(np.max(np.abs(self(grid) - other(grid))))


def missing_mass_bound(n_observed: int, n_missing: int) -> float:
    """Worst-case sup-norm shift of an ECDF caused by missing samples.

    The full-data ECDF is the mixture ``F = (1-f)*F_obs + f*F_miss`` with
    ``f = n_missing / (n_observed + n_missing)``; whatever the missing
    values were, ``sup_x |F_obs(x) - F(x)| <= f``.  This is how gap-aware
    analyses report a *bounded* delta for degraded traces instead of a
    silently shifted figure.
    """
    if n_observed < 0 or n_missing < 0:
        raise AnalysisError("sample counts must be non-negative")
    total = n_observed + n_missing
    if total == 0:
        return 0.0
    return n_missing / total
