"""Scale-dependent burstiness metrics.

Beyond burst extraction, classic traffic analysis characterizes
burstiness across timescales: the index of dispersion for counts (IDC)
and the Hurst parameter (estimated here by the aggregate-variance
method).  For the paper's traces they quantify the same phenomenon Fig 3
and Table 2 show — correlation and clustering of hot periods well beyond
independent arrivals — with a single scalar per trace.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def index_of_dispersion(counts: np.ndarray) -> float:
    """IDC = Var(N) / E[N] of per-interval counts.

    1.0 for a Poisson process; >> 1 for bursty/clustered traffic.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1 or len(counts) < 2:
        raise AnalysisError("IDC needs a 1-D series of at least 2 counts")
    mean = counts.mean()
    if mean == 0:
        raise AnalysisError("IDC undefined for an all-zero series")
    return float(counts.var() / mean)


def idc_curve(
    series: np.ndarray, factors: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
) -> dict[int, float]:
    """IDC at several aggregation levels.

    For short-range-dependent traffic the curve flattens; for
    long-range-dependent traffic it keeps growing with the scale.
    """
    series = np.asarray(series, dtype=np.float64)
    curve: dict[int, float] = {}
    for factor in factors:
        n = (len(series) // factor) * factor
        if n < 2 * factor:
            break
        aggregated = series[:n].reshape(-1, factor).sum(axis=1)
        if len(aggregated) < 2:
            break
        curve[factor] = index_of_dispersion(aggregated)
    if not curve:
        raise AnalysisError("series too short for any aggregation level")
    return curve


def hurst_aggregate_variance(
    series: np.ndarray,
    min_blocks: int = 8,
    factors: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> float:
    """Hurst parameter via the aggregate-variance method.

    For an aggregation level m, Var(X^(m)) ~ m^(2H-2); H is estimated by
    the slope of log Var against log m.  H = 0.5 for independent data;
    H in (0.5, 1) indicates long-range dependence — the self-similarity
    repeatedly reported for aggregated network traffic.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise AnalysisError("Hurst estimation expects a 1-D series")
    if series.std() == 0:
        raise AnalysisError("constant series has no Hurst exponent")
    log_m: list[float] = []
    log_var: list[float] = []
    for factor in factors:
        n_blocks = len(series) // factor
        if n_blocks < min_blocks:
            break
        aggregated = series[: n_blocks * factor].reshape(n_blocks, factor).mean(axis=1)
        variance = aggregated.var()
        if variance <= 0:
            break
        log_m.append(np.log(factor))
        log_var.append(np.log(variance))
    if len(log_m) < 3:
        raise AnalysisError("series too short for Hurst estimation")
    slope = np.polyfit(log_m, log_var, 1)[0]
    hurst = 1.0 + slope / 2.0
    return float(np.clip(hurst, 0.0, 1.0))


def coefficient_of_variation(series: np.ndarray) -> float:
    """CoV = std / mean of per-interval values (unitless burstiness)."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1 or len(series) < 2:
        raise AnalysisError("CoV needs a 1-D series of at least 2 values")
    mean = series.mean()
    if mean == 0:
        raise AnalysisError("CoV undefined for a zero-mean series")
    return float(series.std() / mean)
