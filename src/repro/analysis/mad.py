"""Load-balance dispersion metrics (Fig 7).

Fig 7 plots, for every sampling period, the mean absolute deviation
(MAD) of the four uplinks' utilization, normalised so that 0 means
perfectly balanced and ~100 % means traffic concentrated on half the
links.  We normalise by the across-uplink mean of the period, which makes
the metric scale-free: a period where one of four links carries
everything scores 150 %, two of four score 100 %.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def mean_absolute_deviation(values: np.ndarray) -> float:
    """Plain MAD around the mean of one vector."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) == 0:
        raise AnalysisError("MAD expects a non-empty 1-D vector")
    return float(np.mean(np.abs(values - values.mean())))


def normalized_mad_series(
    utilization_by_link: np.ndarray,
    min_mean: float = 1e-4,
) -> np.ndarray:
    """Per-period normalised MAD across links.

    Parameters
    ----------
    utilization_by_link:
        Array of shape (n_periods, n_links): per-period utilization of
        each uplink.
    min_mean:
        Periods whose mean utilization is below this are dropped — the
        deviation of an idle period is noise, not imbalance.

    Returns
    -------
    1-D array of MAD / mean per retained period (1.0 == 100 % deviation).
    """
    util = np.asarray(utilization_by_link, dtype=np.float64)
    if util.ndim != 2 or util.shape[1] < 2:
        raise AnalysisError("need (n_periods, n_links>=2) utilization")
    means = util.mean(axis=1)
    keep = means > min_mean
    util = util[keep]
    means = means[keep]
    if len(util) == 0:
        return np.zeros(0)
    mad = np.mean(np.abs(util - means[:, None]), axis=1)
    return mad / means


def resample_utilization(
    utilization_by_link: np.ndarray, factor: int
) -> np.ndarray:
    """Average fine-grained per-link utilization into coarser periods.

    Used to compare the 40 µs and 1 s views of the same measurement: the
    1 s series is the mean of 25 000 consecutive 40 µs samples, exactly
    what a coarse poller would have reported.
    """
    util = np.asarray(utilization_by_link, dtype=np.float64)
    if util.ndim != 2:
        raise AnalysisError("expected (n_periods, n_links)")
    if factor <= 0:
        raise AnalysisError("factor must be positive")
    n = (util.shape[0] // factor) * factor
    if n == 0:
        raise AnalysisError(f"fewer than {factor} periods to resample")
    trimmed = util[:n]
    return trimmed.reshape(n // factor, factor, util.shape[1]).mean(axis=1)
