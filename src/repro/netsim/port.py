"""Switch port model with ASIC-style counters.

Each port owns an egress queue backed by the switch's shared buffer and a
set of cumulative counters mirroring what the paper's framework polls:

* cumulative bytes and packets, per direction (Sec 4.1 "Byte count"),
* a packet-size histogram with ASIC-style bins (Sec 4.1 "Packet size"),
* congestion-drop counts (used by the coarse-grained Fig 1/2 analysis).

Counters are cumulative and never reset by the data plane; samplers
difference successive reads, so a missed poll loses resolution but not
bytes (Table 1 semantics).
"""

from __future__ import annotations

import bisect
import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.netsim.buffer import SharedBuffer
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet

#: Upper (inclusive) edge of each packet-size histogram bin, in bytes.
#: These are the classic Broadcom ASIC RMON bins the measured switches use.
SIZE_BIN_EDGES: tuple[int, ...] = (64, 127, 255, 511, 1023, 1518)

SIZE_BIN_LABELS: tuple[str, ...] = (
    "64",
    "65-127",
    "128-255",
    "256-511",
    "512-1023",
    "1024-1518",
)


#: Precomputed size -> bin-index table.  The linear edge scan this
#: replaces ran once per counted packet; a frame can only be 0..1518 B
#: (oversize MTUs are rejected at RackConfig construction time), so a
#: 1519-entry lookup table covers every legal frame.
_SIZE_BIN_TABLE: tuple[int, ...] = tuple(
    bisect.bisect_left(SIZE_BIN_EDGES, size) for size in range(SIZE_BIN_EDGES[-1] + 1)
)

_MAX_BINNED = SIZE_BIN_EDGES[-1]


def size_bin_index(size_bytes: int) -> int:
    """Histogram bin for a frame of ``size_bytes``."""
    if 0 <= size_bytes <= _MAX_BINNED:
        return _SIZE_BIN_TABLE[size_bytes]
    raise SimulationError(f"packet size {size_bytes} above largest bin")


class Direction(enum.Enum):
    """Which side of the ToR a port faces."""

    DOWNLINK = "downlink"  # toward a server in the rack
    UPLINK = "uplink"  # toward the fabric/spine


@dataclass(slots=True)
class PortCounters:
    """Cumulative ASIC counters for one port.

    ``tx`` is the switch-egress direction (ToR -> attached device) and
    ``rx`` the switch-ingress direction.
    """

    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    rx_packets: int = 0
    tx_drops: int = 0
    tx_size_hist: list[int] = field(default_factory=lambda: [0] * len(SIZE_BIN_EDGES))
    rx_size_hist: list[int] = field(default_factory=lambda: [0] * len(SIZE_BIN_EDGES))

    def record_tx(self, packet: Packet) -> None:
        self.tx_bytes += packet.size_bytes
        self.tx_packets += 1
        self.tx_size_hist[size_bin_index(packet.size_bytes)] += 1

    def record_rx(self, packet: Packet) -> None:
        self.rx_bytes += packet.size_bytes
        self.rx_packets += 1
        self.rx_size_hist[size_bin_index(packet.size_bytes)] += 1


class Port:
    """A single switch port: egress queue + drain loop + counters."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        direction: Direction,
        egress_link: Link,
        shared_buffer: SharedBuffer,
        ecn=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.direction = direction
        self.egress_link = egress_link
        self.shared_buffer = shared_buffer
        #: optional :class:`repro.netsim.ecn.EcnMarker`
        self.ecn = ecn
        self.counters = PortCounters()
        self._queue: deque[Packet] = deque()
        self._transmitting = False
        shared_buffer.register_queue(name)

    # -- data path -----------------------------------------------------------

    @property
    def rate_bps(self) -> float:
        return self.egress_link.rate_bps

    @property
    def queue_depth_bytes(self) -> int:
        return self.shared_buffer.queue_bytes(self.name)

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to this port's egress queue.

        Returns False (and counts a congestion drop) when the shared
        buffer's dynamic threshold rejects it.
        """
        ecn = self.ecn
        if ecn is not None:
            depth_at_arrival = self.shared_buffer.queue_bytes(self.name)
        if not self.shared_buffer.admit(self.name, packet.size_bytes):
            self.counters.tx_drops += 1
            return False
        if ecn is not None:
            ecn.observe(depth_at_arrival, packet)
        self._queue.append(packet)
        if not self._transmitting:
            self._start_next()
        return True

    def note_ingress(self, packet: Packet) -> None:
        """Count a packet arriving from the attached device."""
        self.counters.record_rx(packet)

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            return
        self._transmitting = True
        packet = self._queue.popleft()
        done_ns = self.egress_link.transmit(packet)
        # Bound method + event args instead of a per-packet closure.
        self.sim.schedule_at(done_ns, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        # Buffer space is held until the packet has fully left the switch,
        # which is what makes concurrent bursts contend for shared memory.
        self.shared_buffer.release(self.name, packet.size_bytes)
        self.counters.record_tx(packet)
        self._start_next()
