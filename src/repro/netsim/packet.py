"""Packet and flow identity.

A packet in this simulator is a metadata record: the switch model only
needs sizes and flow identity (for ECMP hashing and counter updates), not
payloads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.units import MIN_PACKET, MTU

_packet_ids = itertools.count()


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """Flow identity used by ECMP flow hashing."""

    src_host: str
    dst_host: str
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    def reversed(self) -> "FiveTuple":
        """The identity of packets flowing the other way."""
        return FiveTuple(
            src_host=self.dst_host,
            dst_host=self.src_host,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )


@dataclass(slots=True)
class Packet:
    """A simulated packet.

    ``size_bytes`` is the on-wire frame size, which is what the switch
    byte counters and packet-size histogram bins observe.
    """

    flow: FiveTuple
    size_bytes: int
    created_ns: int
    seq: int = 0
    is_ack: bool = False
    #: ECN Congestion Experienced mark (set by the switch, echoed on acks).
    ce: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if not MIN_PACKET <= self.size_bytes <= MTU:
            raise ValueError(
                f"packet size {self.size_bytes} outside [{MIN_PACKET}, {MTU}]"
            )
