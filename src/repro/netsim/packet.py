"""Packet and flow identity.

A packet in this simulator is a metadata record: the switch model only
needs sizes and flow identity (for ECMP hashing and counter updates), not
payloads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.units import MAX_FRAME, MIN_PACKET

_packet_ids = itertools.count()


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """Flow identity used by ECMP flow hashing."""

    src_host: str
    dst_host: str
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    def reversed(self) -> "FiveTuple":
        """The identity of packets flowing the other way.

        Memoised (both directions at once): the ACK path reverses every
        data packet's flow, and flow identities recur for a flow's whole
        lifetime.
        """
        cached = _reversed_cache.get(self)
        if cached is None:
            if len(_reversed_cache) > _REVERSED_CACHE_MAX:
                _reversed_cache.clear()
            cached = FiveTuple(
                src_host=self.dst_host,
                dst_host=self.src_host,
                src_port=self.dst_port,
                dst_port=self.src_port,
                protocol=self.protocol,
            )
            _reversed_cache[self] = cached
            _reversed_cache[cached] = self
        return cached


#: flow -> reversed-flow memo; bounded so pathological campaigns with
#: millions of distinct flows cannot grow it without limit.
_reversed_cache: dict[FiveTuple, FiveTuple] = {}
_REVERSED_CACHE_MAX = 1 << 20


@dataclass(slots=True)
class Packet:
    """A simulated packet.

    ``size_bytes`` is the on-wire frame size, which is what the switch
    byte counters and packet-size histogram bins observe.
    """

    flow: FiveTuple
    size_bytes: int
    created_ns: int
    seq: int = 0
    is_ack: bool = False
    #: ECN Congestion Experienced mark (set by the switch, echoed on acks).
    ce: bool = False
    packet_id: int = field(default_factory=_packet_ids.__next__)

    def __post_init__(self) -> None:
        # The frame bound is the largest ASIC histogram bin, not the MTU:
        # rack MTU policy lives in RackConfig/WindowedTransport (where a
        # bad value fails fast with ConfigError at construction time);
        # this is the last-ditch guard that keeps the counter path total.
        if not MIN_PACKET <= self.size_bytes <= MAX_FRAME:
            raise ValueError(
                f"packet size {self.size_bytes} outside [{MIN_PACKET}, {MAX_FRAME}]"
            )
