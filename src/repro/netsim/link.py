"""Point-to-point link model.

A link carries packets from a sender to a receiver callback with
serialization delay (size / rate) followed by propagation delay.  The
link itself never queues: queueing happens in the egress port (switch
side) or NIC (host side) feeding it, which is where the paper's counters
live.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.units import serialization_time_ns

Receiver = Callable[[Packet], None]


class Link:
    """Unidirectional link; build two for a full-duplex cable."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        propagation_ns: int = 500,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigError(f"link {name!r} needs positive rate, got {rate_bps}")
        if propagation_ns < 0:
            raise ConfigError(f"link {name!r} negative propagation delay")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.propagation_ns = int(propagation_ns)
        self._receiver: Receiver | None = None
        # Packet sizes come from small per-application mixtures, so the
        # exact integer serialization time for each distinct size is
        # memoised: same rounding as serialization_time_ns, no per-packet
        # float arithmetic on the hot path.
        self._serialization_cache: dict[int, int] = {}

    def connect(self, receiver: Receiver) -> None:
        if self._receiver is not None:
            raise ConfigError(f"link {self.name!r} already connected")
        self._receiver = receiver

    def serialization_ns(self, packet: Packet) -> int:
        cache = self._serialization_cache
        size = packet.size_bytes
        ser = cache.get(size)
        if ser is None:
            ser = cache[size] = serialization_time_ns(size, self.rate_bps)
        return ser

    def transmit(self, packet: Packet) -> int:
        """Start transmitting ``packet`` now.

        Returns the time at which the sender's transmitter frees up
        (end of serialization).  Delivery to the receiver happens one
        propagation delay later.
        """
        receiver = self._receiver
        if receiver is None:
            raise ConfigError(f"link {self.name!r} transmit before connect")
        # Inline serialization_ns and read the clock attribute directly:
        # this runs once per packet per hop.
        cache = self._serialization_cache
        size = packet.size_bytes
        ser = cache.get(size)
        if ser is None:
            ser = cache[size] = serialization_time_ns(size, self.rate_bps)
        sim = self.sim
        done_ns = sim.clock.now + ser
        # Deliver via event args — no per-packet closure allocation.
        sim.schedule_at(done_ns + self.propagation_ns, receiver, packet)
        return done_ns
