"""Three-tier Clos fabric topology.

The measured data center "uses a conventional 3-tier Clos network"
(Sec 4.2, citing the fabric design): servers -> ToR -> fabric switches ->
spine switches, a multi-rooted tree with ToRs as leaves.  This module
builds that topology as a graph, validates its structure, enumerates
equal-cost paths, and computes the per-uplink capacity asymmetry caused
by link failures — the condition under which "imbalance becomes
significantly worse" (Sec 6.1), which the paper could not intercept in
production but we can inject.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigError
from repro.units import gbps


@dataclass(frozen=True, slots=True)
class ClosConfig:
    """Fabric shape.

    Defaults follow the paper's pod design scaled down: each ToR has
    ``n_fabric_per_pod`` uplinks (one per fabric switch of its pod), and
    each fabric switch reaches every spine of its plane.
    """

    n_pods: int = 4
    n_racks_per_pod: int = 4
    n_fabric_per_pod: int = 4
    n_spines_per_plane: int = 4
    tor_uplink_rate_bps: float = gbps(10)
    fabric_spine_rate_bps: float = gbps(40)

    def __post_init__(self) -> None:
        if min(
            self.n_pods,
            self.n_racks_per_pod,
            self.n_fabric_per_pod,
            self.n_spines_per_plane,
        ) <= 0:
            raise ConfigError("all Clos dimensions must be positive")


class ClosFabric:
    """A multi-rooted Clos graph with failure injection."""

    def __init__(self, config: ClosConfig | None = None) -> None:
        self.config = config or ClosConfig()
        self.graph = nx.Graph()
        self._build()
        self._failed: set[tuple[str, str]] = set()

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        for pod in range(cfg.n_pods):
            for rack in range(cfg.n_racks_per_pod):
                self.graph.add_node(self.tor_name(pod, rack), tier="tor", pod=pod)
            for fabric in range(cfg.n_fabric_per_pod):
                self.graph.add_node(
                    self.fabric_name(pod, fabric), tier="fabric", pod=pod
                )
        for plane in range(cfg.n_fabric_per_pod):
            for spine in range(cfg.n_spines_per_plane):
                self.graph.add_node(self.spine_name(plane, spine), tier="spine", plane=plane)
        # ToR <-> every fabric switch in its pod (the four uplinks)
        for pod in range(cfg.n_pods):
            for rack in range(cfg.n_racks_per_pod):
                for fabric in range(cfg.n_fabric_per_pod):
                    self.graph.add_edge(
                        self.tor_name(pod, rack),
                        self.fabric_name(pod, fabric),
                        rate_bps=cfg.tor_uplink_rate_bps,
                    )
        # fabric switch f of every pod <-> every spine of plane f
        for pod in range(cfg.n_pods):
            for fabric in range(cfg.n_fabric_per_pod):
                for spine in range(cfg.n_spines_per_plane):
                    self.graph.add_edge(
                        self.fabric_name(pod, fabric),
                        self.spine_name(fabric, spine),
                        rate_bps=cfg.fabric_spine_rate_bps,
                    )

    @staticmethod
    def tor_name(pod: int, rack: int) -> str:
        return f"tor-p{pod}r{rack}"

    @staticmethod
    def fabric_name(pod: int, fabric: int) -> str:
        return f"fab-p{pod}f{fabric}"

    @staticmethod
    def spine_name(plane: int, spine: int) -> str:
        return f"spine-l{plane}s{spine}"

    # -- structure queries --------------------------------------------------------

    @property
    def tors(self) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d["tier"] == "tor"]

    @property
    def n_uplinks_per_tor(self) -> int:
        return self.config.n_fabric_per_pod

    def validate(self) -> None:
        """Structural invariants of a healthy multi-rooted Clos."""
        cfg = self.config
        for tor in self.tors:
            if self.graph.degree(tor) != cfg.n_fabric_per_pod:
                raise ConfigError(f"{tor} has wrong uplink count")
        for node, data in self.graph.nodes(data=True):
            if data["tier"] == "fabric":
                expected = cfg.n_racks_per_pod + cfg.n_spines_per_plane
                if self.graph.degree(node) != expected:
                    raise ConfigError(f"{node} has wrong degree")
            elif data["tier"] == "spine":
                if self.graph.degree(node) != cfg.n_pods:
                    raise ConfigError(f"{node} has wrong degree")
        if not nx.is_connected(self.graph):
            raise ConfigError("fabric is not connected")

    def equal_cost_paths(self, src_tor: str, dst_tor: str) -> list[list[str]]:
        """All shortest switch paths between two ToRs (ECMP choices)."""
        if src_tor == dst_tor:
            raise ConfigError("source and destination ToR are the same")
        live = self._live_graph()
        return list(nx.all_shortest_paths(live, src_tor, dst_tor))

    # -- failures ------------------------------------------------------------------

    def fail_link(self, a: str, b: str) -> None:
        """Take one link down (order-insensitive)."""
        if not self.graph.has_edge(a, b):
            raise ConfigError(f"no link {a!r} <-> {b!r}")
        self._failed.add(tuple(sorted((a, b))))

    def restore_all(self) -> None:
        self._failed.clear()

    def _live_graph(self) -> nx.Graph:
        live = self.graph.copy()
        live.remove_edges_from(self._failed)
        return live

    def uplink_capacity_factors(self, tor: str) -> list[float]:
        """Per-uplink usable-capacity factor in [0, 1] for one ToR.

        Factor 0 means the uplink (or its fabric switch's entire spine
        reachability) is down; fractional values mean the fabric switch
        lost part of its spine plane.  These factors feed the synthetic
        ECMP model for the failure-asymmetry experiment.
        """
        cfg = self.config
        pod = self.graph.nodes[tor]["pod"]
        live = self._live_graph()
        factors: list[float] = []
        for fabric_index in range(cfg.n_fabric_per_pod):
            fabric = self.fabric_name(pod, fabric_index)
            if not live.has_edge(tor, fabric):
                factors.append(0.0)
                continue
            spine_links = sum(
                1
                for spine in range(cfg.n_spines_per_plane)
                if live.has_edge(fabric, self.spine_name(fabric_index, spine))
            )
            factors.append(spine_links / cfg.n_spines_per_plane)
        return factors

    def bisection_bandwidth_bps(self) -> float:
        """Total live ToR-layer uplink capacity (a health scalar)."""
        live = self._live_graph()
        return sum(
            data["rate_bps"]
            for a, b, data in live.edges(data=True)
            if self.graph.nodes[a]["tier"] == "tor"
            or self.graph.nodes[b]["tier"] == "tor"
        )
