"""Shared packet buffer with dynamic threshold carving.

ToR ASICs in the measured data center share one packet buffer across all
ports and carve it dynamically (the paper, Sec 5.1 footnote and Sec 6.4,
notes buffers are "shared and dynamically carved").  We implement the
classic Dynamic Threshold (DT) rule of Choudhury & Hahne: an egress queue
may grow only while its length is below ``alpha`` times the remaining
free buffer space.  Drops can therefore occur well before the buffer is
full, exactly the effect the paper mentions under Fig 10.

The buffer also maintains the *peak occupancy watermark* counter that the
paper's framework polls: highest total occupancy since the last read,
reset on read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class BufferPolicy:
    """Configuration of the shared buffer.

    Parameters
    ----------
    capacity_bytes:
        Total shared buffer capacity.  Commodity ToR ASICs of the paper's
        era (e.g. Trident II) carry 12–16 MB; we default to 12 MB.
    alpha:
        Dynamic-threshold aggressiveness.  A queue may admit a packet only
        while ``queue_len < alpha * free_space``.  Typical values 0.5–8.
    static_per_port_bytes:
        When > 0, disables dynamic carving and gives every port a fixed
        quota instead (used by the carving ablation benchmark).
    """

    capacity_bytes: int = 12 * 1024 * 1024
    alpha: float = 1.0
    static_per_port_bytes: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.static_per_port_bytes < 0:
            raise ValueError("static per-port quota cannot be negative")


class SharedBuffer:
    """Byte-granular shared buffer shared by all egress queues of a switch."""

    def __init__(self, policy: BufferPolicy | None = None) -> None:
        self.policy = policy or BufferPolicy()
        # Hot-path copies of the (frozen) policy fields: admit() runs
        # once per switched packet, and dataclass attribute reads add up.
        self._capacity = self.policy.capacity_bytes
        self._alpha = self.policy.alpha
        self._static = self.policy.static_per_port_bytes
        self._occupancy = 0
        self._peak_since_read = 0
        self._queue_bytes: dict[str, int] = {}
        self.total_admitted = 0
        self.total_rejected = 0

    # -- registration -------------------------------------------------------

    def register_queue(self, queue_id: str) -> None:
        """Declare an egress queue; queues must be registered before use."""
        if queue_id in self._queue_bytes:
            raise SimulationError(f"queue {queue_id!r} registered twice")
        self._queue_bytes[queue_id] = 0

    # -- admission ----------------------------------------------------------

    def admit(self, queue_id: str, size_bytes: int) -> bool:
        """Try to reserve ``size_bytes`` for ``queue_id``.

        Returns True and updates occupancy when admitted; returns False
        (congestion drop) when the DT rule or total capacity rejects it.
        """
        queue_len = self._queue_bytes[queue_id]
        if size_bytes <= 0:
            raise SimulationError(f"admit of non-positive size {size_bytes}")
        free = self._capacity - self._occupancy
        if size_bytes > free:
            self.total_rejected += 1
            return False
        if self._static > 0:
            allowed = queue_len + size_bytes <= self._static
        else:
            allowed = queue_len < self._alpha * free
        if not allowed:
            self.total_rejected += 1
            return False
        self._queue_bytes[queue_id] = queue_len + size_bytes
        self._occupancy += size_bytes
        self.total_admitted += 1
        if self._occupancy > self._peak_since_read:
            self._peak_since_read = self._occupancy
        return True

    def release(self, queue_id: str, size_bytes: int) -> None:
        """Return ``size_bytes`` to the free pool after a dequeue."""
        queue_len = self._queue_bytes[queue_id]
        if size_bytes > queue_len:
            raise SimulationError(
                f"releasing {size_bytes} bytes from queue {queue_id!r} "
                f"holding only {queue_len}"
            )
        self._queue_bytes[queue_id] = queue_len - size_bytes
        self._occupancy -= size_bytes
        if self._occupancy < 0:  # pragma: no cover - guarded by the check above
            raise SimulationError("negative buffer occupancy")

    # -- counters ------------------------------------------------------------

    @property
    def occupancy_bytes(self) -> int:
        return self._occupancy

    def queue_bytes(self, queue_id: str) -> int:
        return self._queue_bytes[queue_id]

    def peak_occupancy_read_and_reset(self) -> int:
        """The ASIC watermark counter: peak occupancy since last read.

        Reading resets the watermark to the *current* occupancy, so a
        standing queue is still reflected in the next sample (matching
        the read-and-reset semantics described in Sec 4.1).
        """
        peak = self._peak_since_read
        self._peak_since_read = self._occupancy
        return peak

    def occupancy_fraction(self) -> float:
        return self._occupancy / self.policy.capacity_bytes
