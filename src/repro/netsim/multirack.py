"""Multi-rack pods: several ToRs sharing one fabric.

The single-rack topology models everything beyond the uplinks as a
cloud.  A pod wires *multiple* racks through one
:class:`PodFabric`, so cross-rack request/response traffic traverses two
real ToRs — the web rack's fan-in and the cache rack's uplink bursts
(Fig 9's two signatures) then emerge from one coupled workload instead
of being simulated separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, SimulationError
from repro.netsim.ecmp import EcmpHasher
from repro.netsim.engine import Simulator
from repro.netsim.fabric import _PacedQueue
from repro.netsim.host import Server
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.switch import TorSwitch
from repro.netsim.topology import Rack, RackConfig
from repro.units import us


class PodFabric:
    """Fabric + spine tiers shared by every rack of a pod."""

    def __init__(self, sim: Simulator, latency_ns: int = us(25), ecmp_salt: int = 17) -> None:
        if latency_ns < 0:
            raise ConfigError("fabric latency cannot be negative")
        self.sim = sim
        self.latency_ns = int(latency_ns)
        self._host_rack: dict[str, str] = {}
        self._rack_queues: dict[str, list[_PacedQueue]] = {}
        self._rack_hashers: dict[str, EcmpHasher] = {}
        self._remote_hosts: dict[str, Server] = {}
        self._salt = ecmp_salt

    # -- wiring ---------------------------------------------------------------

    def register_rack(
        self,
        rack_id: str,
        hosts: list[str],
        n_uplinks: int,
        uplink_rate_bps: float,
        deliver,
        queue_bytes: int = 2 * 1024 * 1024,
    ) -> None:
        """Declare a rack: its hosts and its ingress path from the fabric."""
        if rack_id in self._rack_queues:
            raise ConfigError(f"rack {rack_id!r} registered twice")
        for host in hosts:
            if host in self._host_rack or host in self._remote_hosts:
                raise ConfigError(f"duplicate host {host!r}")
            self._host_rack[host] = rack_id
        self._rack_queues[rack_id] = [
            _PacedQueue(
                self.sim,
                uplink_rate_bps,
                queue_bytes,
                deliver=lambda packet, index=index: deliver(index, packet),
            )
            for index in range(n_uplinks)
        ]
        # distinct downstream hash per rack, all different from ToR hashes
        self._rack_hashers[rack_id] = EcmpHasher(
            n_uplinks, mode="flow", salt=self._salt + len(self._rack_hashers)
        )

    def attach_remote(self, server: Server) -> None:
        if server.name in self._remote_hosts or server.name in self._host_rack:
            raise ConfigError(f"duplicate host {server.name!r}")
        self._remote_hosts[server.name] = server

    # -- data path --------------------------------------------------------------

    def _deliver(self, packet: Packet) -> None:
        dst = packet.flow.dst_host
        rack_id = self._host_rack.get(dst)
        if rack_id is not None:
            uplink = self._rack_hashers[rack_id].choose(packet.flow)
            queue = self._rack_queues[rack_id][uplink]
            self.sim.schedule(self.latency_ns, lambda: queue.offer(packet))
            return
        remote = self._remote_hosts.get(dst)
        if remote is not None:
            self.sim.schedule(self.latency_ns, lambda: remote.receive(packet))
            return
        raise SimulationError(f"pod fabric has no route to {dst!r}")

    def receive_from_tor(self, packet: Packet) -> None:
        self._deliver(packet)

    def receive_from_remote(self, packet: Packet) -> None:
        self._deliver(packet)

    @property
    def rack_ids(self) -> list[str]:
        return list(self._rack_queues)


@dataclass(slots=True)
class Pod:
    """A built pod: racks sharing one fabric."""

    sim: Simulator
    racks: list[Rack]
    fabric: PodFabric
    standalone_remotes: list[Server] = field(default_factory=list)

    def rack(self, index: int) -> Rack:
        return self.racks[index]

    def cross_view(self, index: int) -> Rack:
        """A Rack whose ``remote_hosts`` are the *other* racks' servers.

        Lets the single-rack workload classes drive cross-rack traffic:
        a WebWorkload installed on ``cross_view(0)`` fans its RPCs out to
        the servers of the other racks, through both ToRs.
        """
        base = self.racks[index]
        others: list[Server] = []
        for other_index, other in enumerate(self.racks):
            if other_index != index:
                others.extend(other.servers)
        others.extend(self.standalone_remotes)
        return Rack(
            config=base.config,
            sim=base.sim,
            tor=base.tor,
            servers=base.servers,
            remote_hosts=others,
            fabric=base.fabric,
        )


def build_pod(
    sim: Simulator,
    rack_configs: list[RackConfig],
    fabric_latency_ns: int = us(25),
    n_standalone_remotes: int = 0,
    remote_rate_bps: float | None = None,
) -> Pod:
    """Build several racks wired through one shared fabric.

    Rack names must be unique; ``n_standalone_remotes`` adds fabric-attached
    hosts outside any rack (front-end users, other-pod peers).
    """
    if not rack_configs:
        raise ConfigError("a pod needs at least one rack")
    names = [config.name for config in rack_configs]
    if len(set(names)) != len(names):
        raise ConfigError("rack names must be unique within a pod")

    fabric = PodFabric(sim, latency_ns=fabric_latency_ns)
    racks: list[Rack] = []
    for config in rack_configs:
        tor = TorSwitch(sim, config.switch)
        servers: list[Server] = []
        for index in range(config.switch.n_downlinks):
            host = f"{config.name}-s{index}"
            nic_link = Link(
                sim,
                name=f"{host}-nic",
                rate_bps=config.switch.downlink_rate_bps,
                propagation_ns=config.switch.link_propagation_ns,
            )
            server = Server(
                sim,
                host,
                nic_link,
                rto_ns=config.rto_ns,
                transport_class=config.transport_class(),
                pacing_rate_bps=config.pacing_rate_bps,
            )
            nic_link.connect(
                lambda packet, name=host, switch=tor: switch.receive_from_server(
                    name, packet
                )
            )
            tor.add_downlink(host, server.receive)
            servers.append(server)
        for _ in range(config.switch.n_uplinks):
            tor.add_uplink(fabric.receive_from_tor)
        fabric.register_rack(
            config.name,
            tor.rack_hosts,
            n_uplinks=config.switch.n_uplinks,
            uplink_rate_bps=config.switch.uplink_rate_bps,
            deliver=tor.receive_from_fabric,
        )
        racks.append(
            Rack(
                config=config,
                sim=sim,
                tor=tor,
                servers=servers,
                remote_hosts=[],
                fabric=fabric,  # type: ignore[arg-type] - duck-compatible
            )
        )

    standalone: list[Server] = []
    base = rack_configs[0]
    rate = remote_rate_bps or base.remote_rate_bps
    for index in range(n_standalone_remotes):
        host = f"pod-r{index}"
        remote_link = Link(
            sim,
            name=f"{host}-nic",
            rate_bps=rate,
            propagation_ns=base.switch.link_propagation_ns,
        )
        remote = Server(
            sim,
            host,
            remote_link,
            rto_ns=base.rto_ns,
            transport_class=base.transport_class(),
            pacing_rate_bps=base.pacing_rate_bps,
        )
        remote_link.connect(fabric.receive_from_remote)
        fabric.attach_remote(remote)
        standalone.append(remote)

    return Pod(sim=sim, racks=racks, fabric=fabric, standalone_remotes=standalone)
