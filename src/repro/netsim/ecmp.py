"""Equal-Cost MultiPath (ECMP) flow hashing.

The measured ToRs spread traffic over four uplinks with flow-level ECMP
using consistent hashing (Sec 6.1).  Flow-level hashing avoids TCP
reordering but cannot balance unequal flows — the source of the
small-timescale imbalance Fig 7 quantifies.  We implement:

* ``flow`` mode — consistent hash of the 5-tuple (production behaviour),
* ``packet`` mode — round-robin spraying (the idealised comparison the
  paper mentions, used by the load-balancing ablation benchmark).
"""

from __future__ import annotations

import hashlib
import itertools

from repro.errors import ConfigError
from repro.netsim.packet import FiveTuple


def _stable_hash(flow: FiveTuple, salt: int) -> int:
    """Deterministic 64-bit hash of a flow (Python's ``hash`` is salted
    per process, which would break reproducibility)."""
    key = (
        f"{flow.src_host}|{flow.dst_host}|{flow.src_port}|"
        f"{flow.dst_port}|{flow.protocol}|{salt}"
    ).encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


class EcmpHasher:
    """Chooses an uplink index for each packet."""

    def __init__(self, n_uplinks: int, mode: str = "flow", salt: int = 0) -> None:
        if n_uplinks <= 0:
            raise ConfigError("need at least one uplink")
        if mode not in ("flow", "packet"):
            raise ConfigError(f"unknown ECMP mode {mode!r}")
        self.n_uplinks = n_uplinks
        self.mode = mode
        self.salt = salt
        self._packet_mode = mode == "packet"
        self._round_robin = itertools.count()
        self._flow_cache: dict[FiveTuple, int] = {}

    def choose(self, flow: FiveTuple) -> int:
        """Uplink index for a packet of ``flow``.

        In flow mode the choice is a pure function of the 5-tuple, so all
        packets of a flow share a path (consistent hashing); the blake2b
        digest is memoised per flow, since every packet of a flow would
        otherwise recompute the identical hash.  In packet mode
        successive packets rotate round-robin.
        """
        if self._packet_mode:
            return next(self._round_robin) % self.n_uplinks
        try:
            return self._flow_cache[flow]
        except KeyError:
            uplink = _stable_hash(flow, self.salt) % self.n_uplinks
            self._flow_cache[flow] = uplink
            return uplink
