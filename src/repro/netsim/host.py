"""Servers, NICs, and a windowed transport.

The paper attributes burst structure primarily to application behaviour
(Sec 5.3), so the transport here is deliberately simple: an ack-clocked
sliding window with slow start, AIMD halving on loss, and NIC
segmentation-offload packet trains.  That is enough to reproduce the
transport-level phenomena the paper leans on — line-rate bursts from
offloaded sends, fan-in overload at downlinks, and reverse ACK streams of
minimum-size packets.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError, SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import FiveTuple, Packet
from repro.units import MAX_FRAME, MIN_PACKET, MTU, ms, serialization_time_ns

FlowCallback = Callable[["FlowState"], None]


@dataclass(slots=True)
class FlowState:
    """Book-keeping for one unidirectional data flow."""

    flow: FiveTuple
    total_packets: int
    packet_size: int
    cwnd: float = 10.0
    ssthresh: float = float("inf")
    next_seq: int = 0
    acked: int = 0
    inflight: int = 0
    started_ns: int = 0
    completed_ns: int | None = None
    retransmits: int = 0
    last_progress_ns: int = 0
    on_complete: FlowCallback | None = None

    @property
    def done(self) -> bool:
        return self.acked >= self.total_packets

    @property
    def total_bytes(self) -> int:
        return self.total_packets * self.packet_size


class Nic:
    """Host NIC: an egress queue paced at the access-link rate.

    Segmentation offload means the host hands the NIC whole send-window
    bursts; the NIC emits them back-to-back at line rate, which is the
    micro-scale burstiness TCP pacing would have smoothed (Sec 7,
    "Implications for pacing").
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        pacing_rate_bps: float | None = None,
    ) -> None:
        if pacing_rate_bps is not None and pacing_rate_bps <= 0:
            raise ConfigError("pacing rate must be positive")
        self.sim = sim
        self.link = link
        self.pacing_rate_bps = pacing_rate_bps
        self._queue: deque[Packet] = deque()
        self._busy = False
        self._pace_free_ns = 0
        self.tx_bytes = 0
        self.tx_packets = 0

    @property
    def backlog_packets(self) -> int:
        return len(self._queue)

    def send(self, packet: Packet) -> None:
        self._queue.append(packet)
        if not self._busy:
            self._busy = True
            self._pump()

    def _pump(self) -> None:
        if not self._queue:
            self._busy = False
            return
        sim = self.sim
        pacing = self.pacing_rate_bps
        if pacing is not None and sim.clock.now < self._pace_free_ns:
            # Pacing (Sec 7): hold the next packet until its pace slot.
            sim.schedule_at(self._pace_free_ns, self._pump)
            return
        packet = self._queue.popleft()
        done_ns = self.link.transmit(packet)
        self.tx_bytes += packet.size_bytes
        self.tx_packets += 1
        if pacing is not None:
            self._pace_free_ns = sim.clock.now + serialization_time_ns(
                packet.size_bytes, pacing
            )
            next_free = max(done_ns, self._pace_free_ns)
        else:
            next_free = done_ns
        sim.schedule_at(next_free, self._pump)


class WindowedTransport:
    """Ack-clocked window transport shared by all flows of one server."""

    INITIAL_CWND = 10.0
    ACK_SIZE = MIN_PACKET

    def __init__(
        self,
        sim: Simulator,
        host_name: str,
        nic: Nic,
        rto_ns: int = ms(5),
        mtu_bytes: int = MTU,
    ) -> None:
        if rto_ns <= 0:
            raise ConfigError("RTO must be positive")
        if not MIN_PACKET <= mtu_bytes <= MAX_FRAME:
            raise ConfigError(
                f"mtu_bytes {mtu_bytes} outside [{MIN_PACKET}, {MAX_FRAME}]: "
                f"frames above {MAX_FRAME} B cannot be binned by the switch "
                "packet-size histogram counters"
            )
        self.sim = sim
        self.host_name = host_name
        self.nic = nic
        self.rto_ns = rto_ns
        self.mtu_bytes = mtu_bytes
        self._flows: dict[FiveTuple, FlowState] = {}
        self.flows_started = 0
        self.flows_completed = 0
        # Per-transport port counter: flow identity (and hence ECMP path
        # choice) must depend only on this simulation, not on how many
        # flows other simulations in the process created before it.
        self._next_port = itertools.count(10_000)

    # -- sending -------------------------------------------------------------

    def start_flow(
        self,
        dst_host: str,
        size_bytes: int,
        packet_size: int = MTU,
        on_complete: FlowCallback | None = None,
    ) -> FlowState:
        """Begin sending ``size_bytes`` to ``dst_host``.

        The flow is chopped into ``packet_size`` frames (the last frame is
        not shortened; switch counters only care about wire bytes, and
        keeping frames uniform keeps the size-histogram model explicit).
        """
        if size_bytes <= 0:
            raise ConfigError(f"flow size must be positive, got {size_bytes}")
        if not MIN_PACKET <= packet_size <= self.mtu_bytes:
            raise ConfigError(
                f"packet size {packet_size} outside frame limits "
                f"[{MIN_PACKET}, {self.mtu_bytes}]"
            )
        flow = FiveTuple(
            src_host=self.host_name,
            dst_host=dst_host,
            src_port=next(self._next_port),
            dst_port=80,
        )
        n_packets = max(1, math.ceil(size_bytes / packet_size))
        state = FlowState(
            flow=flow,
            total_packets=n_packets,
            packet_size=packet_size,
            cwnd=self.INITIAL_CWND,
            started_ns=self.sim.now,
            last_progress_ns=self.sim.now,
            on_complete=on_complete,
        )
        self._flows[flow] = state
        self.flows_started += 1
        self._fill_window(state)
        self._arm_timer(state)
        return state

    def _fill_window(self, state: FlowState) -> None:
        window = int(state.cwnd)
        if state.inflight >= window or state.next_seq >= state.total_packets:
            return
        send = self.nic.send
        now = self.sim.clock.now
        flow = state.flow
        size = state.packet_size
        while state.inflight < window and state.next_seq < state.total_packets:
            packet = Packet(flow=flow, size_bytes=size, created_ns=now,
                            seq=state.next_seq)
            state.next_seq += 1
            state.inflight += 1
            send(packet)

    def _arm_timer(self, state: FlowState) -> None:
        deadline = self.sim.now + self.rto_ns
        self.sim.schedule_at(deadline, self._check_timeout, state)

    def _check_timeout(self, state: FlowState) -> None:
        if state.done:
            return
        if self.sim.now - state.last_progress_ns >= self.rto_ns:
            # Coarse loss recovery: resume from the last cumulative ack
            # with a halved window (AIMD multiplicative decrease).
            state.ssthresh = max(2.0, state.cwnd / 2.0)
            state.cwnd = max(2.0, state.cwnd / 2.0)
            state.next_seq = state.acked
            state.inflight = 0
            state.retransmits += 1
            state.last_progress_ns = self.sim.now
            self._fill_window(state)
        self._arm_timer(state)

    # -- receiving -----------------------------------------------------------

    def handle_packet(self, packet: Packet, reply: Callable[[Packet], None]) -> None:
        """Process an arriving packet addressed to this host.

        Data packets are acknowledged through ``reply``; ACK packets feed
        the congestion window of the owning flow.
        """
        if packet.is_ack:
            self._handle_ack(packet)
            return
        ack = Packet(
            flow=packet.flow.reversed(),
            size_bytes=self.ACK_SIZE,
            created_ns=self.sim.clock.now,
            seq=packet.seq,
            is_ack=True,
        )
        reply(ack)

    def _handle_ack(self, ack: Packet) -> None:
        flow = ack.flow.reversed()
        state = self._flows.get(flow)
        if state is None or state.done:
            return
        now = self.sim.clock.now
        if ack.seq == state.acked:
            state.acked += 1
            state.inflight = max(0, state.inflight - 1)
            state.last_progress_ns = now
            if state.cwnd < state.ssthresh:
                state.cwnd += 1.0  # slow start
            else:
                state.cwnd += 1.0 / state.cwnd  # congestion avoidance
        elif ack.seq > state.acked:
            # Out-of-order cumulative progress after a loss: jump forward.
            jump = ack.seq + 1 - state.acked
            state.acked = ack.seq + 1
            state.inflight = max(0, state.inflight - jump)
            state.last_progress_ns = now
        if state.done:
            state.completed_ns = now
            self.flows_completed += 1
            del self._flows[flow]
            if state.on_complete is not None:
                state.on_complete(state)
            return
        self._fill_window(state)

    @property
    def active_flows(self) -> int:
        return len(self._flows)


class Server:
    """A rack server: NIC + transport + application hook.

    ``transport_class`` selects the congestion-control behaviour — the
    default Reno-style :class:`WindowedTransport` or
    :class:`repro.netsim.ecn.DctcpTransport`.  ``pacing_rate_bps`` turns
    on NIC packet pacing (Sec 7's pacing implication).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        uplink_to_tor: Link,
        rto_ns: int = ms(5),
        transport_class: type["WindowedTransport"] | None = None,
        pacing_rate_bps: float | None = None,
        mtu_bytes: int = MTU,
    ) -> None:
        self.sim = sim
        self.name = name
        self.nic = Nic(sim, uplink_to_tor, pacing_rate_bps=pacing_rate_bps)
        transport_class = transport_class or WindowedTransport
        self.transport = transport_class(
            sim, name, self.nic, rto_ns=rto_ns, mtu_bytes=mtu_bytes
        )
        self.rx_bytes = 0
        self.rx_packets = 0
        self.on_data_packet: Callable[[Packet], None] | None = None

    def send_flow(
        self,
        dst_host: str,
        size_bytes: int,
        packet_size: int = MTU,
        on_complete: FlowCallback | None = None,
    ) -> FlowState:
        return self.transport.start_flow(
            dst_host, size_bytes, packet_size=packet_size, on_complete=on_complete
        )

    def receive(self, packet: Packet) -> None:
        """Entry point for packets delivered by the ToR downlink."""
        if packet.flow.dst_host != self.name:
            raise SimulationError(
                f"server {self.name} received packet for {packet.flow.dst_host}"
            )
        self.rx_bytes += packet.size_bytes
        self.rx_packets += 1
        self.transport.handle_packet(packet, reply=self.nic.send)
        if not packet.is_ack and self.on_data_packet is not None:
            self.on_data_packet(packet)
