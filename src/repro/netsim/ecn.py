"""ECN marking and a DCTCP-style transport.

Sec 7 ("Implications for congestion control") argues that ECN- and
RTT-based congestion control reacts at least RTT/2 after the signal,
while many µbursts are shorter than one RTT.  To let experiments quantify
that, the switch can mark packets whose egress queue exceeds a threshold
(the DCTCP 'K' parameter), and :class:`DctcpTransport` adapts its window
to the marked fraction like DCTCP (Alizadeh et al., SIGCOMM 2010).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.netsim.engine import Simulator
from repro.netsim.host import Nic, WindowedTransport
from repro.netsim.packet import FiveTuple, Packet
from repro.units import MTU, ms


@dataclass(frozen=True, slots=True)
class EcnConfig:
    """Switch-side marking configuration.

    ``mark_threshold_bytes`` is the per-queue depth above which arriving
    packets are CE-marked (DCTCP's K).  The paper-era guidance is
    K ~ 20-80 packets for 10 G links.
    """

    mark_threshold_bytes: int = 30 * 1500

    def __post_init__(self) -> None:
        if self.mark_threshold_bytes <= 0:
            raise ConfigError("ECN threshold must be positive")


class EcnMarker:
    """Per-queue threshold marking, attached to switch ports."""

    def __init__(self, config: EcnConfig | None = None) -> None:
        self.config = config or EcnConfig()
        self.packets_seen = 0
        self.packets_marked = 0

    def observe(self, queue_depth_bytes: int, packet: Packet) -> None:
        """Mark ``packet`` (set ``ce``) if the queue is past threshold."""
        self.packets_seen += 1
        if queue_depth_bytes > self.config.mark_threshold_bytes:
            packet.ce = True
            self.packets_marked += 1

    @property
    def mark_fraction(self) -> float:
        if self.packets_seen == 0:
            return 0.0
        return self.packets_marked / self.packets_seen


class DctcpTransport(WindowedTransport):
    """DCTCP: window scales with the *fraction* of marked packets.

    Per window of acks, alpha <- (1 - g) alpha + g F where F is the
    fraction of ECN-echo acks, and on any marked window the sender cuts
    cwnd by alpha/2 — a proportional response instead of TCP's halving.
    """

    GAIN = 1.0 / 16.0

    def __init__(
        self,
        sim: Simulator,
        host_name: str,
        nic: Nic,
        rto_ns: int = ms(5),
        mtu_bytes: int = MTU,
    ) -> None:
        super().__init__(sim, host_name, nic, rto_ns=rto_ns, mtu_bytes=mtu_bytes)
        self._alpha: dict[FiveTuple, float] = {}
        self._window_acked: dict[FiveTuple, int] = {}
        self._window_marked: dict[FiveTuple, int] = {}

    def handle_packet(self, packet: Packet, reply) -> None:
        if packet.is_ack:
            self._note_ack_marks(packet)
            super().handle_packet(packet, reply)
            return
        # Receiver: echo the CE mark on the ack (ECN-Echo).
        ack = Packet(
            flow=packet.flow.reversed(),
            size_bytes=self.ACK_SIZE,
            created_ns=self.sim.now,
            seq=packet.seq,
            is_ack=True,
        )
        ack.ce = packet.ce
        reply(ack)

    def _note_ack_marks(self, ack: Packet) -> None:
        flow = ack.flow.reversed()
        state = self._flows.get(flow)
        if state is None:
            return
        self._window_acked[flow] = self._window_acked.get(flow, 0) + 1
        if ack.ce:
            self._window_marked[flow] = self._window_marked.get(flow, 0) + 1
        # One observation window ~ one cwnd of acks.
        if self._window_acked[flow] >= max(1, int(state.cwnd)):
            acked = self._window_acked.pop(flow)
            marked = self._window_marked.pop(flow, 0)
            fraction = marked / acked
            # alpha starts at 1 (RFC 8257): the first marked window halves,
            # then alpha converges to the running marked fraction.
            alpha = self._alpha.get(flow, 1.0)
            alpha = (1.0 - self.GAIN) * alpha + self.GAIN * fraction
            self._alpha[flow] = alpha
            if marked:
                state.cwnd = max(2.0, state.cwnd * (1.0 - alpha / 2.0))
                state.ssthresh = state.cwnd

    def flow_alpha(self, flow: FiveTuple) -> float:
        """Current DCTCP alpha estimate for a flow (0 when unmarked)."""
        return self._alpha.get(flow, 0.0)
