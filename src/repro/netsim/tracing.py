"""Counter surface: the boundary between the switch ASIC and the sampler.

The high-resolution framework (:mod:`repro.core`) must not reach into
simulator internals; it reads counters the way the paper's CPU polling
loop does — through named read operations with ASIC-defined semantics.
``SwitchCounterSurface`` is that register file.
"""

from __future__ import annotations

from repro.errors import CounterError
from repro.netsim.port import SIZE_BIN_EDGES, Direction, Port
from repro.netsim.switch import TorSwitch


class SwitchCounterSurface:
    """Read-only (plus read-and-reset watermark) view of a ToR's counters."""

    def __init__(self, switch: TorSwitch) -> None:
        self._switch = switch
        self._ports: dict[str, Port] = {port.name: port for port in switch.all_ports}

    # -- discovery ------------------------------------------------------------

    @property
    def port_names(self) -> list[str]:
        return list(self._ports)

    def ports_by_direction(self, direction: Direction) -> list[str]:
        return [
            name for name, port in self._ports.items() if port.direction is direction
        ]

    def port_rate_bps(self, port_name: str) -> float:
        return self._port(port_name).rate_bps

    def _port(self, port_name: str) -> Port:
        try:
            return self._ports[port_name]
        except KeyError:
            raise CounterError(f"no such port {port_name!r}") from None

    # -- cumulative counters ----------------------------------------------------

    def read_tx_bytes(self, port_name: str) -> int:
        """Cumulative bytes transmitted out of the switch on this port."""
        return self._port(port_name).counters.tx_bytes

    def read_rx_bytes(self, port_name: str) -> int:
        """Cumulative bytes received into the switch on this port."""
        return self._port(port_name).counters.rx_bytes

    def read_tx_drops(self, port_name: str) -> int:
        """Cumulative egress congestion discards on this port."""
        return self._port(port_name).counters.tx_drops

    def read_tx_size_histogram(self, port_name: str) -> tuple[int, ...]:
        """Cumulative per-bin packet counts (egress direction)."""
        return tuple(self._port(port_name).counters.tx_size_hist)

    def read_rx_size_histogram(self, port_name: str) -> tuple[int, ...]:
        return tuple(self._port(port_name).counters.rx_size_hist)

    # -- buffer watermark ---------------------------------------------------------

    def read_peak_buffer_and_reset(self) -> int:
        """Peak shared-buffer occupancy since last read (read-and-reset)."""
        return self._switch.shared_buffer.peak_occupancy_read_and_reset()

    def read_buffer_occupancy(self) -> int:
        return self._switch.shared_buffer.occupancy_bytes

    @property
    def buffer_capacity_bytes(self) -> int:
        return self._switch.shared_buffer.policy.capacity_bytes

    @property
    def size_bin_edges(self) -> tuple[int, ...]:
        return SIZE_BIN_EDGES
