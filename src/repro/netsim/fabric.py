"""Aggregation/spine fabric cloud.

The paper studies ToR switches only (Sec 4.2); the fabric and spine tiers
matter to the ToR only as (a) a sink for uplink egress traffic, (b) a
source of uplink ingress traffic whose spreading across the four uplinks
mirrors the spine's own ECMP, and (c) a latency in the request/response
path.  ``FabricCloud`` models exactly that: remote hosts attach to it
directly, and per-uplink paced queues deliver fabric->ToR traffic at
uplink line rate.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError, SimulationError
from repro.netsim.ecmp import EcmpHasher
from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.units import serialization_time_ns, us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.host import Server


class _PacedQueue:
    """FIFO paced at a fixed rate with tail drop (fabric egress to ToR)."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        capacity_bytes: int,
        deliver: Callable[[Packet], None],
    ) -> None:
        self.sim = sim
        self.rate_bps = rate_bps
        self.capacity_bytes = capacity_bytes
        self.deliver = deliver
        self._queue: deque[Packet] = deque()
        self._backlog = 0
        self._busy = False
        self.drops = 0
        self.tx_bytes = 0
        # Serialization times memoised per distinct packet size, exactly
        # as in Link (same rounding, so timing is bit-identical).
        self._ser_cache: dict[int, int] = {}

    def offer(self, packet: Packet) -> bool:
        if self._backlog + packet.size_bytes > self.capacity_bytes:
            self.drops += 1
            return False
        self._queue.append(packet)
        self._backlog += packet.size_bytes
        if not self._busy:
            self._pump()
        return True

    def _pump(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        size = packet.size_bytes
        self._backlog -= size
        self.tx_bytes += size
        cache = self._ser_cache
        ser = cache.get(size)
        if ser is None:
            ser = cache[size] = serialization_time_ns(size, self.rate_bps)
        sim = self.sim
        sim.schedule_at(sim.clock.now + ser, self._emit, packet)

    def _emit(self, packet: Packet) -> None:
        self.deliver(packet)
        self._pump()


class FabricCloud:
    """Everything beyond the rack's four uplinks."""

    def __init__(
        self,
        sim: Simulator,
        n_uplinks: int,
        uplink_rate_bps: float,
        latency_ns: int = us(25),
        uplink_queue_bytes: int = 2 * 1024 * 1024,
        ecmp_salt: int = 1,
    ) -> None:
        if latency_ns < 0:
            raise ConfigError("fabric latency cannot be negative")
        self.sim = sim
        self.latency_ns = int(latency_ns)
        self._remote_hosts: dict[str, "Server"] = {}
        self._tor_delivery: Callable[[int, Packet], None] | None = None
        self._rack_hosts: set[str] = set()
        # The spine's hash choice is independent of the ToR's, hence a
        # different salt: the same flow may use different uplinks in the
        # two directions, as in real Clos fabrics.
        self._ecmp = EcmpHasher(n_uplinks, mode="flow", salt=ecmp_salt)
        self._to_tor = [
            _PacedQueue(
                sim,
                uplink_rate_bps,
                uplink_queue_bytes,
                deliver=self._make_tor_deliver(i),
            )
            for i in range(n_uplinks)
        ]

    # -- wiring ---------------------------------------------------------------

    def connect_tor(
        self, rack_hosts: list[str], deliver: Callable[[int, Packet], None]
    ) -> None:
        """Register the rack's ToR: its host list and ingress callback."""
        if self._tor_delivery is not None:
            raise ConfigError("fabric already connected to a ToR")
        self._tor_delivery = deliver
        self._rack_hosts = set(rack_hosts)

    def attach_remote(self, server: "Server") -> None:
        if server.name in self._remote_hosts or server.name in self._rack_hosts:
            raise ConfigError(f"duplicate host name {server.name!r}")
        self._remote_hosts[server.name] = server

    def _make_tor_deliver(self, uplink_index: int) -> Callable[[Packet], None]:
        def deliver(packet: Packet) -> None:
            if self._tor_delivery is None:
                raise SimulationError("fabric delivering to unconnected ToR")
            self._tor_delivery(uplink_index, packet)

        return deliver

    # -- data path --------------------------------------------------------------

    def receive_from_tor(self, packet: Packet) -> None:
        """A packet leaving the rack via an uplink."""
        host = self._remote_hosts.get(packet.flow.dst_host)
        if host is None:
            raise SimulationError(
                f"fabric has no remote host {packet.flow.dst_host!r}"
            )
        self.sim.schedule(self.latency_ns, host.receive, packet)

    def receive_from_remote(self, packet: Packet) -> None:
        """A packet sent by a remote host."""
        dst = packet.flow.dst_host
        if dst in self._rack_hosts:
            uplink = self._ecmp.choose(packet.flow)
            queue = self._to_tor[uplink]
            self.sim.schedule(self.latency_ns, queue.offer, packet)
        elif dst in self._remote_hosts:
            host = self._remote_hosts[dst]
            self.sim.schedule(self.latency_ns, host.receive, packet)
        else:
            raise SimulationError(f"fabric has no route to {dst!r}")

    # -- introspection ------------------------------------------------------------

    @property
    def uplink_queue_drops(self) -> list[int]:
        return [queue.drops for queue in self._to_tor]

    @property
    def remote_host_names(self) -> list[str]:
        return sorted(self._remote_hosts)
