"""Event queue for the discrete-event engine.

Events are ordered by (time, sequence); the sequence number makes the
ordering of simultaneous events deterministic (FIFO in scheduling order),
which keeps whole simulations reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SchedulingError

Action = Callable[[], None]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap but are skipped when popped;
    this is the standard lazy-deletion trick and keeps cancellation O(1).
    """

    time_ns: int
    seq: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Binary-heap event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time_ns: int, action: Action) -> Event:
        """Schedule ``action`` at absolute time ``time_ns``."""
        if time_ns < 0:
            raise SchedulingError(f"cannot schedule event at negative time {time_ns}")
        event = Event(time_ns=int(time_ns), seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SchedulingError("pop from empty event queue")

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time_ns
