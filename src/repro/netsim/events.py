"""Event queue for the discrete-event engine.

Events are ordered by (time, sequence); the sequence number makes the
ordering of simultaneous events deterministic (FIFO in scheduling order),
which keeps whole simulations reproducible for a fixed seed.

Performance notes (this is the simulator's hottest data structure):

* Heap entries are plain ``(time_ns, seq, event)`` tuples, so every
  sift comparison is a C-level int compare — the previous dataclass
  ``Event.__lt__`` accounted for ~20 % of simulation wall time on its
  own.  ``seq`` is unique, so ties never reach the (incomparable) event.
* ``__len__``/``__bool__`` are O(1): a live-event counter is maintained
  across push/pop/cancel instead of scanning the heap.
* Cancellation stays O(1) lazy deletion, but the queue now *compacts*
  (drops cancelled entries and re-heapifies) once cancelled entries
  outnumber live ones, so timer-cancelling workloads cannot grow the
  heap without bound over long windows.  Compaction preserves pop order
  exactly: entries are totally ordered by the unique ``(time, seq)``
  key, and heapify cannot reorder equal keys because there are none.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable

from repro.errors import SchedulingError

Action = Callable[..., None]


class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap but are skipped when popped;
    this is the standard lazy-deletion trick and keeps cancellation O(1).
    ``args`` are passed to ``action`` when the event runs, which lets
    per-packet hot paths schedule bound methods instead of allocating a
    fresh closure per packet.
    """

    __slots__ = ("time_ns", "seq", "action", "args", "cancelled", "_queue")

    def __init__(
        self, time_ns: int, seq: int, action: Action, args: tuple = ()
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.action = action
        self.args = args
        self.cancelled = False
        self._queue: "EventQueue | None" = None

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                self._queue = None
                queue._note_cancel()


class EventQueue:
    """Binary-heap event queue with deterministic tie-breaking."""

    #: never bother compacting below this many cancelled entries
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._next_seq = 0
        self._live = 0
        self._cancelled = 0
        self._peak_heap = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical entries held, live and cancelled (introspection)."""
        return len(self._heap)

    @property
    def peak_heap_size(self) -> int:
        """High-water mark of physical heap entries over the queue's
        lifetime (compaction shrinks the heap but never the peak) —
        the telemetry layer's memory-cost gauge for the engine."""
        return self._peak_heap

    def push(self, time_ns: int, action: Action, args: tuple = ()) -> Event:
        """Schedule ``action(*args)`` at absolute time ``time_ns``.

        This is the reference implementation; ``Simulator.schedule`` /
        ``schedule_at`` inline the same logic to drop one Python call per
        scheduled event.  Keep the three in sync.
        """
        if time_ns < 0:
            raise SchedulingError(f"cannot schedule event at negative time {time_ns}")
        time_ns = int(time_ns)
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time_ns, seq, action, args)
        event._queue = self
        heappush(self._heap, (time_ns, seq, event))
        self._live += 1
        if len(self._heap) > self._peak_heap:
            self._peak_heap = len(self._heap)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            event._queue = None
            self._live -= 1
            return event
        raise SchedulingError("pop from empty event queue")

    def pop_due(self, end_ns: int) -> Event | None:
        """Fused peek/pop: the earliest live event at or before ``end_ns``,
        or None when the queue is empty or the next event lies beyond it.

        This is the engine's inner-loop primitive — one heap traversal
        per processed event instead of a peek followed by a pop.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                heappop(heap)
                self._cancelled -= 1
                continue
            if head[0] > end_ns:
                return None
            heappop(heap)
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or None when empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]

    # -- lazy-deletion bookkeeping -----------------------------------------

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > self.COMPACT_MIN and self._cancelled > self._live:
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant.

        Runs automatically once cancelled entries outnumber live ones
        (amortised O(1) per cancellation), bounding heap growth for
        retransmit-style workloads that cancel most of their timers.
        """
        if self._cancelled:
            # In-place rebuild: the engine's run loop holds a direct
            # reference to this list, so the heap's identity must survive
            # compaction triggered by a cancel inside an event action.
            heap = self._heap
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapify(heap)
            self._cancelled = 0
