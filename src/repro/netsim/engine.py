"""Discrete-event simulation engine.

The engine owns the clock and the event queue and runs callbacks in time
order.  Components (links, ports, hosts, samplers) schedule themselves
through :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

import numpy as np

from repro.errors import SchedulingError, SimulationError
from repro.netsim.clock import SimClock
from repro.netsim.events import Event, EventQueue


class Simulator:
    """Single-threaded discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random generator.  Components that
        need randomness should draw from :attr:`rng` (or from generators
        spawned off it) so a single seed reproduces the whole run.
    """

    def __init__(self, seed: int | np.random.Generator | None = 0) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)
        self._events_processed = 0
        self._running = False

    # -- scheduling --------------------------------------------------------

    @property
    def now(self) -> int:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay_ns: int, action: Callable[..., None], *args) -> Event:
        """Schedule ``action(*args)`` after ``delay_ns`` relative to now.

        Passing ``args`` through the event (instead of closing over them)
        avoids allocating a fresh closure per scheduled packet, which
        matters on the per-packet hot path.
        """
        if delay_ns < 0:
            raise SchedulingError(f"negative delay {delay_ns}")
        # Inlined EventQueue.push (events.py keeps the reference copy):
        # one Python call per scheduled packet is measurable at campaign
        # scale, and the negative-time re-check is redundant here.
        time_ns = self.clock.now + int(delay_ns)
        queue = self.queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        event = Event(time_ns, seq, action, args)
        event._queue = queue
        heap = queue._heap
        heappush(heap, (time_ns, seq, event))
        queue._live += 1
        if len(heap) > queue._peak_heap:
            queue._peak_heap = len(heap)
        return event

    def schedule_at(self, time_ns: int, action: Callable[..., None], *args) -> Event:
        """Schedule ``action(*args)`` at absolute time ``time_ns`` (>= now)."""
        if time_ns < self.clock.now:
            raise SchedulingError(
                f"cannot schedule at {time_ns} before now={self.clock.now}"
            )
        # Inlined EventQueue.push — see schedule() above.
        time_ns = int(time_ns)
        queue = self.queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        event = Event(time_ns, seq, action, args)
        event._queue = queue
        heap = queue._heap
        heappush(heap, (time_ns, seq, event))
        queue._live += 1
        if len(heap) > queue._peak_heap:
            queue._peak_heap = len(heap)
        return event

    def spawn_rng(self) -> np.random.Generator:
        """Derive an independent generator (for per-component streams)."""
        return np.random.default_rng(self.rng.integers(0, 2**63 - 1))

    # -- execution ---------------------------------------------------------

    def run_until(self, end_ns: int, max_events: int | None = None) -> int:
        """Process events up to and including ``end_ns``.

        Returns the number of events processed during this call.  The
        clock always finishes at exactly ``end_ns`` so periodic samplers
        and traffic sources observe a consistent end-of-run time.

        ``max_events`` bounds the number of events processed.  When more
        events remain due at or before ``end_ns`` after the bound is hit,
        the call raises :class:`SimulationError` with the clock left at
        the time of the last processed event — a consistent state from
        which a caller that catches the error may call ``run_until``
        again to resume exactly where the run stopped.  If the bound is
        reached but nothing else is due, the run completes normally and
        the clock advances to ``end_ns``.
        """
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        processed = 0
        # Hot loop: this runs once per simulated event, millions of times
        # per campaign window, so the unbounded path walks the heap
        # directly (no per-event method calls) and advances the clock by
        # plain assignment.  compact() rebuilds the heap list in place,
        # so the local reference stays valid across event actions.
        queue = self.queue
        clock = self.clock
        heap = queue._heap
        pop = heappop
        now_ns = clock.now
        try:
            if max_events is None:
                while heap:
                    entry = heap[0]
                    event = entry[2]
                    if event.cancelled:
                        pop(heap)
                        queue._cancelled -= 1
                        continue
                    time_ns = entry[0]
                    if time_ns > end_ns:
                        break
                    pop(heap)
                    queue._live -= 1
                    event._queue = None
                    if time_ns < now_ns:
                        # Only reachable via a raw queue.push into the
                        # past; delegate for the standard error message.
                        clock.advance_to(time_ns)
                    now_ns = time_ns
                    clock.now = time_ns
                    event.action(*event.args)
                    processed += 1
            else:
                pop_due = queue.pop_due
                advance = clock.advance_to
                while (event := pop_due(end_ns)) is not None:
                    advance(event.time_ns)
                    event.action(*event.args)
                    processed += 1
                    if processed >= max_events:
                        next_time = queue.peek_time()
                        if next_time is not None and next_time <= end_ns:
                            raise SimulationError(
                                f"exceeded max_events={max_events} "
                                f"before reaching {end_ns}"
                            )
                        break
            self.clock.advance_to(end_ns)
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    def run_for(self, duration_ns: int, max_events: int | None = None) -> int:
        """Process events for ``duration_ns`` from the current time."""
        return self.run_until(self.clock.now + int(duration_ns), max_events=max_events)
