"""Discrete-event simulation engine.

The engine owns the clock and the event queue and runs callbacks in time
order.  Components (links, ports, hosts, samplers) schedule themselves
through :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SchedulingError, SimulationError
from repro.netsim.clock import SimClock
from repro.netsim.events import Event, EventQueue


class Simulator:
    """Single-threaded discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random generator.  Components that
        need randomness should draw from :attr:`rng` (or from generators
        spawned off it) so a single seed reproduces the whole run.
    """

    def __init__(self, seed: int | np.random.Generator | None = 0) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)
        self._events_processed = 0
        self._running = False

    # -- scheduling --------------------------------------------------------

    @property
    def now(self) -> int:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay_ns: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` after ``delay_ns`` relative to now."""
        if delay_ns < 0:
            raise SchedulingError(f"negative delay {delay_ns}")
        return self.queue.push(self.clock.now + int(delay_ns), action)

    def schedule_at(self, time_ns: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute time ``time_ns`` (>= now)."""
        if time_ns < self.clock.now:
            raise SchedulingError(
                f"cannot schedule at {time_ns} before now={self.clock.now}"
            )
        return self.queue.push(int(time_ns), action)

    def spawn_rng(self) -> np.random.Generator:
        """Derive an independent generator (for per-component streams)."""
        return np.random.default_rng(self.rng.integers(0, 2**63 - 1))

    # -- execution ---------------------------------------------------------

    def run_until(self, end_ns: int, max_events: int | None = None) -> int:
        """Process events up to and including ``end_ns``.

        Returns the number of events processed during this call.  The
        clock always finishes at exactly ``end_ns`` so periodic samplers
        and traffic sources observe a consistent end-of-run time.
        """
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > end_ns:
                    break
                event = self.queue.pop()
                self.clock.advance_to(event.time_ns)
                event.action()
                processed += 1
                self._events_processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before reaching {end_ns}"
                    )
            self.clock.advance_to(end_ns)
        finally:
            self._running = False
        return processed

    def run_for(self, duration_ns: int, max_events: int | None = None) -> int:
        """Process events for ``duration_ns`` from the current time."""
        return self.run_until(self.clock.now + int(duration_ns), max_events=max_events)
