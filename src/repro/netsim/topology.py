"""Rack topology builder.

Assembles one measured rack: servers, ToR switch, and the fabric cloud
with its pool of remote hosts, all cross-wired.  This is the unit of the
paper's measurement campaigns — each campaign samples one ToR at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.netsim.engine import Simulator
from repro.netsim.fabric import FabricCloud
from repro.netsim.host import Server
from repro.netsim.link import Link
from repro.netsim.switch import TorSwitch, TorSwitchConfig
from repro.units import MAX_FRAME, MIN_PACKET, MTU, gbps, ms, us


@dataclass(frozen=True, slots=True)
class RackConfig:
    """Everything needed to build one rack and its surroundings."""

    name: str = "rack0"
    switch: TorSwitchConfig = field(default_factory=TorSwitchConfig)
    n_remote_hosts: int = 32
    remote_rate_bps: float = gbps(10)
    fabric_latency_ns: int = us(25)
    rto_ns: int = ms(5)
    #: "reno" (default loss-based window) or "dctcp" (needs switch.ecn set)
    transport: str = "reno"
    #: NIC pacing rate for all hosts; None = unpaced line-rate trains
    pacing_rate_bps: float | None = None
    #: Largest data frame the rack's hosts may put on the wire.  Validated
    #: here, at construction time, against the largest ASIC histogram bin
    #: so a misconfigured (e.g. jumbo) MTU fails fast with a clear error
    #: instead of crashing mid-simulation deep in the counter path.
    mtu_bytes: int = MTU

    def __post_init__(self) -> None:
        if self.n_remote_hosts < 0:
            raise ConfigError("remote host count cannot be negative")
        if self.transport not in ("reno", "dctcp"):
            raise ConfigError(f"unknown transport {self.transport!r}")
        if not MIN_PACKET <= self.mtu_bytes <= MAX_FRAME:
            raise ConfigError(
                f"rack {self.name!r} mtu_bytes={self.mtu_bytes} outside "
                f"[{MIN_PACKET}, {MAX_FRAME}]: the switch packet-size "
                f"histogram tops out at the {MAX_FRAME} B RMON bin, so "
                "larger frames cannot be counted — lower the workload MTU"
            )

    def transport_class(self):
        if self.transport == "dctcp":
            from repro.netsim.ecn import DctcpTransport

            return DctcpTransport
        from repro.netsim.host import WindowedTransport

        return WindowedTransport


@dataclass(slots=True)
class Rack:
    """A built rack: handles to every component."""

    config: RackConfig
    sim: Simulator
    tor: TorSwitch
    servers: list[Server]
    remote_hosts: list[Server]
    fabric: FabricCloud

    @property
    def server_names(self) -> list[str]:
        return [server.name for server in self.servers]

    @property
    def remote_names(self) -> list[str]:
        return [server.name for server in self.remote_hosts]

    def host(self, name: str) -> Server:
        for server in self.servers + self.remote_hosts:
            if server.name == name:
                return server
        raise KeyError(name)


def build_rack(sim: Simulator, config: RackConfig | None = None) -> Rack:
    """Build and wire a complete rack.

    Server ``i`` is named ``{rack}-s{i}``; remote hosts are
    ``{rack}-r{i}``.  All links are full duplex (a pair of simplex
    :class:`~repro.netsim.link.Link` objects).
    """
    config = config or RackConfig()
    tor = TorSwitch(sim, config.switch)
    fabric = FabricCloud(
        sim,
        n_uplinks=config.switch.n_uplinks,
        uplink_rate_bps=config.switch.uplink_rate_bps,
        latency_ns=config.fabric_latency_ns,
    )

    servers: list[Server] = []
    for i in range(config.switch.n_downlinks):
        name = f"{config.name}-s{i}"
        nic_link = Link(
            sim,
            name=f"{name}-nic",
            rate_bps=config.switch.downlink_rate_bps,
            propagation_ns=config.switch.link_propagation_ns,
        )
        server = Server(
            sim,
            name,
            nic_link,
            rto_ns=config.rto_ns,
            transport_class=config.transport_class(),
            pacing_rate_bps=config.pacing_rate_bps,
            mtu_bytes=config.mtu_bytes,
        )
        nic_link.connect(
            lambda packet, host=name: tor.receive_from_server(host, packet)
        )
        tor.add_downlink(name, server.receive)
        servers.append(server)

    for _ in range(config.switch.n_uplinks):
        tor.add_uplink(fabric.receive_from_tor)
    fabric.connect_tor(tor.rack_hosts, tor.receive_from_fabric)

    remote_hosts: list[Server] = []
    for i in range(config.n_remote_hosts):
        name = f"{config.name}-r{i}"
        remote_link = Link(
            sim,
            name=f"{name}-nic",
            rate_bps=config.remote_rate_bps,
            propagation_ns=config.switch.link_propagation_ns,
        )
        remote = Server(
            sim,
            name,
            remote_link,
            rto_ns=config.rto_ns,
            transport_class=config.transport_class(),
            pacing_rate_bps=config.pacing_rate_bps,
            mtu_bytes=config.mtu_bytes,
        )
        remote_link.connect(fabric.receive_from_remote)
        fabric.attach_remote(remote)
        remote_hosts.append(remote)

    return Rack(
        config=config,
        sim=sim,
        tor=tor,
        servers=servers,
        remote_hosts=remote_hosts,
        fabric=fabric,
    )
