"""Simulation clock.

A thin mutable wrapper around the current simulation time so that every
component observes a single consistent notion of "now".  Time is integer
nanoseconds (see :mod:`repro.units`).

``now`` is a plain slot attribute rather than a property: components read
it once per scheduled packet, and a property's descriptor call showed up
measurably in engine profiles.  Treat it as read-only outside this module
and the engine's run loop — advance time via :meth:`advance_to`, which
enforces monotonicity.
"""

from __future__ import annotations

from repro.errors import SchedulingError


class SimClock:
    """Monotonically advancing integer-nanosecond clock."""

    __slots__ = ("now",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise SchedulingError(f"clock cannot start at negative time {start_ns}")
        self.now = int(start_ns)

    def advance_to(self, time_ns: int) -> None:
        """Move the clock forward; rejects travel into the past."""
        if time_ns < self.now:
            raise SchedulingError(
                f"cannot advance clock backwards from {self.now} to {time_ns}"
            )
        self.now = int(time_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now}ns)"
