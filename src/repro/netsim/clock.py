"""Simulation clock.

A thin mutable wrapper around the current simulation time so that every
component observes a single consistent notion of "now".  Time is integer
nanoseconds (see :mod:`repro.units`).
"""

from __future__ import annotations

from repro.errors import SchedulingError


class SimClock:
    """Monotonically advancing integer-nanosecond clock."""

    __slots__ = ("_now",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise SchedulingError(f"clock cannot start at negative time {start_ns}")
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def advance_to(self, time_ns: int) -> None:
        """Move the clock forward; rejects travel into the past."""
        if time_ns < self._now:
            raise SchedulingError(
                f"cannot advance clock backwards from {self._now} to {time_ns}"
            )
        self._now = int(time_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now}ns)"
