"""Top-of-Rack switch.

Wires together ports, the shared buffer, and ECMP uplink selection, and
exposes the counter surface that :mod:`repro.core` polls.  Matches the
architecture in Sec 4.2: servers on 10 Gbps downlinks, four uplinks into
the fabric, 1:4 oversubscription by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError, SimulationError
from repro.netsim.buffer import BufferPolicy, SharedBuffer
from repro.netsim.ecmp import EcmpHasher
from repro.netsim.ecn import EcnConfig, EcnMarker
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.port import Direction, Port
from repro.units import gbps


@dataclass(frozen=True, slots=True)
class TorSwitchConfig:
    """Shape of the ToR switch.

    Defaults give a 16-server rack with 4 x 10 G uplinks, i.e. the 1:4
    oversubscription ratio the paper reports (Sec 6.3), scaled down from
    production port counts to keep packet-level simulation tractable.
    """

    n_downlinks: int = 16
    downlink_rate_bps: float = gbps(10)
    n_uplinks: int = 4
    uplink_rate_bps: float = gbps(10)
    buffer: BufferPolicy = field(default_factory=BufferPolicy)
    ecmp_mode: str = "flow"
    link_propagation_ns: int = 500
    #: when set, ports CE-mark packets past this queue depth (DCTCP's K)
    ecn: "EcnConfig | None" = None

    def __post_init__(self) -> None:
        if self.n_downlinks <= 0 or self.n_uplinks <= 0:
            raise ConfigError("switch needs at least one downlink and uplink")

    @property
    def oversubscription(self) -> float:
        """Downlink to uplink capacity ratio."""
        return (self.n_downlinks * self.downlink_rate_bps) / (
            self.n_uplinks * self.uplink_rate_bps
        )


class TorSwitch:
    """The measured switch: shared-buffer ToR with ECMP uplinks."""

    def __init__(self, sim: Simulator, config: TorSwitchConfig | None = None) -> None:
        self.sim = sim
        self.config = config or TorSwitchConfig()
        self.shared_buffer = SharedBuffer(self.config.buffer)
        self.ecmp = EcmpHasher(self.config.n_uplinks, mode=self.config.ecmp_mode)
        self._host_table: dict[str, int] = {}
        self.downlink_ports: list[Port] = []
        self.uplink_ports: list[Port] = []

    # -- wiring ---------------------------------------------------------------

    def add_downlink(self, host_name: str, deliver: Callable[[Packet], None]) -> Port:
        """Attach a server; returns the new downlink port."""
        index = len(self.downlink_ports)
        if index >= self.config.n_downlinks:
            raise ConfigError("all downlink ports already in use")
        if host_name in self._host_table:
            raise ConfigError(f"host {host_name!r} already attached")
        link = Link(
            self.sim,
            name=f"tor-down{index}",
            rate_bps=self.config.downlink_rate_bps,
            propagation_ns=self.config.link_propagation_ns,
        )
        link.connect(deliver)
        port = Port(
            self.sim,
            name=f"down{index}",
            direction=Direction.DOWNLINK,
            egress_link=link,
            shared_buffer=self.shared_buffer,
            ecn=self._make_marker(),
        )
        self.downlink_ports.append(port)
        self._host_table[host_name] = index
        return port

    def add_uplink(self, deliver: Callable[[Packet], None]) -> Port:
        """Attach one uplink toward the fabric."""
        index = len(self.uplink_ports)
        if index >= self.config.n_uplinks:
            raise ConfigError("all uplink ports already in use")
        link = Link(
            self.sim,
            name=f"tor-up{index}",
            rate_bps=self.config.uplink_rate_bps,
            propagation_ns=self.config.link_propagation_ns,
        )
        link.connect(deliver)
        port = Port(
            self.sim,
            name=f"up{index}",
            direction=Direction.UPLINK,
            egress_link=link,
            shared_buffer=self.shared_buffer,
            ecn=self._make_marker(),
        )
        self.uplink_ports.append(port)
        return port

    def _make_marker(self) -> EcnMarker | None:
        if self.config.ecn is None:
            return None
        return EcnMarker(self.config.ecn)

    @property
    def all_ports(self) -> list[Port]:
        return self.downlink_ports + self.uplink_ports

    @property
    def rack_hosts(self) -> list[str]:
        return sorted(self._host_table, key=self._host_table.get)

    # -- data path --------------------------------------------------------------

    def receive_from_server(self, host_name: str, packet: Packet) -> None:
        """Ingress from a rack server's NIC."""
        index = self._host_table.get(host_name)
        if index is None:
            raise SimulationError(f"packet from unknown host {host_name!r}")
        self.downlink_ports[index].note_ingress(packet)
        self._forward(packet)

    def receive_from_fabric(self, uplink_index: int, packet: Packet) -> None:
        """Ingress from the fabric on a specific uplink."""
        self.uplink_ports[uplink_index].note_ingress(packet)
        dst_index = self._host_table.get(packet.flow.dst_host)
        if dst_index is None:
            raise SimulationError(
                f"fabric delivered packet for non-rack host {packet.flow.dst_host!r}"
            )
        self.downlink_ports[dst_index].enqueue(packet)

    def _forward(self, packet: Packet) -> None:
        dst_index = self._host_table.get(packet.flow.dst_host)
        if dst_index is not None:
            self.downlink_ports[dst_index].enqueue(packet)
            return
        uplink = self.ecmp.choose(packet.flow)
        self.uplink_ports[uplink].enqueue(packet)

    # -- counters ----------------------------------------------------------------

    def total_drops(self) -> int:
        return sum(port.counters.tx_drops for port in self.all_ports)
