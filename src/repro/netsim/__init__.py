"""Packet-level data-center network simulator.

This subpackage is the substrate for the microburst study: it models the
Top-of-Rack switch whose ASIC counters the high-resolution sampler
(:mod:`repro.core`) polls.  The simulator is deliberately scoped to what
the paper measures — a single ToR with 10 Gbps server downlinks, four
40 Gbps ECMP uplinks into a fabric cloud, and a shared dynamically-carved
packet buffer — and exposes exactly the counters the paper's framework
collects (byte counts, packet-size histograms, peak buffer occupancy).
"""

from repro.netsim.clock import SimClock
from repro.netsim.engine import Simulator
from repro.netsim.events import Event, EventQueue
from repro.netsim.packet import FiveTuple, Packet
from repro.netsim.buffer import BufferPolicy, SharedBuffer
from repro.netsim.link import Link
from repro.netsim.port import Direction, Port
from repro.netsim.ecmp import EcmpHasher
from repro.netsim.switch import TorSwitch, TorSwitchConfig
from repro.netsim.fabric import FabricCloud
from repro.netsim.host import Nic, Server, WindowedTransport
from repro.netsim.ecn import DctcpTransport, EcnConfig, EcnMarker
from repro.netsim.clos import ClosConfig, ClosFabric
from repro.netsim.topology import Rack, RackConfig, build_rack
from repro.netsim.multirack import Pod, PodFabric, build_pod
from repro.netsim.tracing import SwitchCounterSurface

__all__ = [
    "SimClock",
    "Simulator",
    "Event",
    "EventQueue",
    "FiveTuple",
    "Packet",
    "BufferPolicy",
    "SharedBuffer",
    "Link",
    "Direction",
    "Port",
    "EcmpHasher",
    "TorSwitch",
    "TorSwitchConfig",
    "FabricCloud",
    "Nic",
    "Server",
    "WindowedTransport",
    "DctcpTransport",
    "EcnConfig",
    "EcnMarker",
    "ClosConfig",
    "ClosFabric",
    "Rack",
    "RackConfig",
    "build_rack",
    "Pod",
    "PodFabric",
    "build_pod",
    "SwitchCounterSurface",
]
