"""Shared-buffer occupancy response model (Fig 10).

The packet-level simulator produces buffer occupancy physically; at
campaign scale we use a phenomenological response fitted to the same
mechanism: peak occupancy in a window grows with the number of
simultaneously hot ports, saturates at high counts (shared-buffer
ceiling plus the sublinear-buffering effect the paper cites), carries a
standing-occupancy floor (large for Hadoop), and is noisy window to
window.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.synth.calibration import AppProfile, BufferResponse


class BufferResponseModel:
    """Maps per-window hot-port counts to normalised peak occupancy."""

    def __init__(self, response: BufferResponse, n_ports: int = 20) -> None:
        if n_ports <= 0:
            raise ConfigError("n_ports must be positive")
        self.response = response
        self.n_ports = n_ports

    @classmethod
    def for_app(cls, profile: AppProfile, n_ports: int = 20) -> "BufferResponseModel":
        return cls(profile.buffer, n_ports=n_ports)

    def mean_response(self, hot_ports: np.ndarray) -> np.ndarray:
        """Noise-free normalised occupancy for each hot-port count."""
        hot_ports = np.asarray(hot_ports, dtype=np.float64)
        r = self.response
        return r.base + r.scale * (1.0 - np.exp(-hot_ports / r.saturation_ports))

    def sample(
        self, hot_ports: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-window normalised peak occupancy draws in [0, 1]."""
        mean = self.mean_response(hot_ports)
        noise = rng.lognormal(0.0, self.response.noise_sigma, size=mean.shape)
        return np.clip(mean * noise, 0.0, 1.0)
