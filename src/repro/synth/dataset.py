"""Synthetic campaign dataset generation.

Bridges the synthesiser to the campaign machinery in
:mod:`repro.core.campaign`: a :class:`SyntheticCampaignSource` plays the
role of the production switch fleet, producing counter traces for each
(rack, hour) window the plan requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.campaign import CampaignPlan, CampaignWindow, MeasurementCampaign
from repro.core.samples import CounterTrace
from repro.core.seeding import window_rng
from repro.errors import ConfigError
from repro.synth.calibration import APP_PROFILES, BASE_TICK_NS
from repro.synth.onoff import OnOffGenerator
from repro.synth.rackmodel import utilization_to_byte_trace
from repro.units import gbps, seconds


@dataclass(slots=True)
class SyntheticCampaignSource:
    """Window source backed by the per-port on/off synthesiser.

    Produces single-port byte traces — the paper's single-counter
    campaigns (Sec 4.1: highest-resolution results use one counter per
    campaign).  Port names starting with ``up`` use the app's uplink
    profile; anything else the downlink profile.
    """

    seed: int = 0
    tick_ns: int = BASE_TICK_NS
    rate_bps: float = gbps(10)

    def sample_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        try:
            profile = APP_PROFILES[window.rack_type]
        except KeyError:
            raise ConfigError(f"unknown rack type {window.rack_type!r}") from None
        port_profile = (
            profile.uplink if window.port_name.startswith("up") else profile.downlink
        )
        # Window identity -> deterministic, independent stream, so serial,
        # sharded-parallel, and resumed runs all see the same randomness.
        rng = window_rng(self.seed, window.rack_id, window.hour)
        n_ticks = window.duration_ns // self.tick_ns
        series = OnOffGenerator(port_profile).generate(int(n_ticks), rng)
        trace = utilization_to_byte_trace(
            series.utilization,
            self.rate_bps,
            self.tick_ns,
            name=f"{window.port_name}.tx_bytes",
            start_ns=window.start_ns,
        )
        return {trace.name: trace}


def default_plan(
    racks_per_app: int = 10,
    hours: int = 24,
    window_duration_ns: int = seconds(120),
    seed: int = 0,
    apps: tuple[str, ...] = ("web", "cache", "hadoop"),
    n_downlinks: int = 16,
    n_uplinks: int = 4,
) -> CampaignPlan:
    """The paper's campaign: ``racks_per_app`` racks per application, one
    random port per rack, one random window per hour."""
    rng = np.random.default_rng(seed)
    racks = [
        (f"{app}-rack{i}", app) for app in apps for i in range(racks_per_app)
    ]
    port_names = [f"down{i}" for i in range(n_downlinks)] + [
        f"up{i}" for i in range(n_uplinks)
    ]

    def choose_port(_rack_id: str, rng: np.random.Generator) -> str:
        return port_names[int(rng.integers(len(port_names)))]

    return CampaignPlan.generate(
        racks=racks,
        port_chooser=choose_port,
        rng=rng,
        hours=hours,
        window_duration_ns=window_duration_ns,
    )


def synthesize_app_windows(
    app: str,
    n_windows: int,
    window_duration_ns: int,
    seed: int = 0,
    tick_ns: int = BASE_TICK_NS,
    port: str | None = None,
    rate_bps: float = gbps(10),
    n_downlinks: int = 16,
    n_uplinks: int = 4,
) -> list[CounterTrace]:
    """Convenience: ``n_windows`` single-port byte traces for one app.

    This is the fast path used by the Fig 3/4/6 and Table 2 benchmarks.
    ``port=None`` mirrors the paper's campaign, which measured one
    *random* port per rack — so roughly 80 % of windows are downlinks.
    Port choice goes through the crc32 site-key scheme of
    :mod:`repro.core.seeding` (keyed per ``(seed, app, window index)``),
    the same discipline the backends use for trace content, so the
    schedule is independent of call order and worker count.
    """
    # Imported lazily: repro.backends wraps this module, so a module-level
    # import would be circular.
    from repro.backends.base import single_port_plan

    source = SyntheticCampaignSource(seed=seed, tick_ns=tick_ns, rate_bps=rate_bps)
    plan = single_port_plan(
        app,
        n_windows,
        window_duration_ns,
        seed=seed,
        port=port,
        n_downlinks=n_downlinks,
        n_uplinks=n_uplinks,
    )
    traces = []
    for window in plan.windows:
        traces.extend(source.sample_window(window).values())
    return traces


def run_campaign(
    plan: CampaignPlan,
    seed: int = 0,
    tick_ns: int = BASE_TICK_NS,
    workers: int = 1,
    backend=None,
):
    """Execute a plan against a measurement backend (synth by default).

    ``workers > 1`` shards the plan by rack across a process pool; the
    per-window seeding contract of the backends guarantees the result is
    byte-identical to the serial run.  ``backend`` accepts a backend name
    (``"synth"`` / ``"netsim"``) or instance; ``None`` keeps the
    historical synthetic source path.
    """
    if backend is None:
        resolved = SyntheticCampaignSource(seed=seed, tick_ns=tick_ns)
    else:
        from repro.backends import resolve_backend

        resolved = resolve_backend(backend, seed=seed, tick_ns=tick_ns)
    if workers > 1:
        from repro.core.parallel import ParallelCampaign

        return ParallelCampaign(plan, resolved, workers=workers).run()
    return MeasurementCampaign(plan, resolved).run()
