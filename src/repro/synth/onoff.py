"""Vectorised semi-Markov on/off utilization generator.

Generates per-tick utilization series by alternating burst and gap runs
drawn from the calibrated models, then expanding runs with
``numpy.repeat``.  This produces millions of 25 µs ticks per second of
wall time, which is what makes campaign-scale reproduction feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.synth.calibration import PortProfile


@dataclass(slots=True)
class OnOffSeries:
    """A generated series: utilization plus its ground-truth hot mask."""

    utilization: np.ndarray
    hot: np.ndarray

    def __len__(self) -> int:
        return len(self.utilization)


class OnOffGenerator:
    """Draws utilization series for one port profile."""

    def __init__(self, profile: PortProfile) -> None:
        self.profile = profile

    def _draw_runs(
        self, n_ticks: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alternating (lengths, is_hot) runs covering >= n_ticks."""
        mean_cycle = self.profile.duration.mean() + self.profile.gap.mean()
        n_cycles = max(4, int(1.3 * n_ticks / mean_cycle) + 4)
        lengths_list: list[np.ndarray] = []
        flags_list: list[np.ndarray] = []
        covered = 0
        start_hot = bool(rng.random() < self.profile.hot_fraction)
        first = True
        while covered < n_ticks:
            gaps = self.profile.gap.sample(rng, n_cycles)
            bursts = self.profile.duration.sample(rng, n_cycles)
            interleaved = np.empty(2 * n_cycles, dtype=np.int64)
            flags = np.empty(2 * n_cycles, dtype=bool)
            if start_hot and first:
                interleaved[0::2] = bursts
                interleaved[1::2] = gaps
                flags[0::2] = True
                flags[1::2] = False
            else:
                interleaved[0::2] = gaps
                interleaved[1::2] = bursts
                flags[0::2] = False
                flags[1::2] = True
            lengths_list.append(interleaved)
            flags_list.append(flags)
            covered += int(interleaved.sum())
            first = False
        return np.concatenate(lengths_list), np.concatenate(flags_list)

    def generate(self, n_ticks: int, rng: np.random.Generator) -> OnOffSeries:
        """One utilization series of exactly ``n_ticks`` samples."""
        if n_ticks <= 0:
            raise ConfigError("n_ticks must be positive")
        lengths, flags = self._draw_runs(n_ticks, rng)
        # Trim the run sequence to exactly n_ticks.
        ends = np.cumsum(lengths)
        last = int(np.searchsorted(ends, n_ticks))
        lengths = lengths[: last + 1].copy()
        flags = flags[: last + 1]
        lengths[-1] -= int(ends[last] - n_ticks)
        hot = np.repeat(flags, lengths)

        util = np.empty(n_ticks)
        n_cold = int((~hot).sum())
        util[~hot] = self.profile.cold.sample(rng, n_cold)
        # One intensity per burst, smeared with small per-tick noise.
        burst_lengths = lengths[flags]
        intensities = self.profile.intensity.sample(rng, len(burst_lengths))
        per_tick = np.repeat(intensities, burst_lengths)
        noise = rng.normal(0.0, self.profile.intensity.tick_noise, size=len(per_tick))
        util[hot] = np.clip(per_tick + noise, 0.501, 1.0)
        return OnOffSeries(utilization=util, hot=hot)

    def generate_mask_runs(
        self, n_ticks: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(burst_starts, burst_lengths) covering n_ticks, for correlation
        synthesis where members copy individual bursts."""
        lengths, flags = self._draw_runs(n_ticks, rng)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        keep = flags & (starts < n_ticks)
        burst_starts = starts[keep]
        burst_lengths = np.minimum(lengths[keep], n_ticks - burst_starts)
        return burst_starts.astype(np.int64), burst_lengths.astype(np.int64)


def correlated_utilization(
    n_members: int,
    n_ticks: int,
    profile: PortProfile,
    participation: float,
    shared_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Utilization for ``n_members`` servers sharing group bursts (Fig 8).

    A master process supplies shared bursts; each member joins each with
    probability ``participation`` and — critically for the Pearson
    correlation the paper measures — participating members share the
    burst's intensity (scatter-gather responses are near-identical in
    size).  Each member additionally runs a private process thinned to
    ``1 - shared_fraction`` so marginal statistics stay at the profile's.

    Returns ``(utilization, hot)`` arrays of shape (n_ticks, n_members).
    """
    if n_members <= 0:
        raise ConfigError("need at least one member")
    generator = OnOffGenerator(profile)
    util = np.zeros((n_ticks, n_members))
    hot = np.zeros((n_ticks, n_members), dtype=bool)

    def paint(member: int, start: int, length: int, intensity: float) -> None:
        stop = start + length
        noise = rng.normal(0.0, profile.intensity.tick_noise, size=stop - start)
        segment = np.clip(intensity + noise, 0.501, 1.0)
        util[start:stop, member] = np.maximum(util[start:stop, member], segment)
        hot[start:stop, member] = True

    if shared_fraction > 0.0 and participation > 0.0 and n_members > 1:
        starts, lengths = generator.generate_mask_runs(n_ticks, rng)
        intensities = profile.intensity.sample(rng, len(starts))
        for index in range(len(starts)):
            members = np.flatnonzero(rng.random(n_members) < participation)
            for member in members:
                paint(int(member), int(starts[index]), int(lengths[index]), float(intensities[index]))

    private_share = 1.0 - shared_fraction if n_members > 1 else 1.0
    if private_share > 0.0:
        for member in range(n_members):
            starts, lengths = generator.generate_mask_runs(n_ticks, rng)
            keep = np.flatnonzero(rng.random(len(starts)) < private_share)
            intensities = profile.intensity.sample(rng, len(keep))
            for intensity, index in zip(intensities, keep):
                paint(member, int(starts[index]), int(lengths[index]), float(intensity))

    for member in range(n_members):
        cold = ~hot[:, member]
        util[cold, member] = profile.cold.sample(rng, int(cold.sum()))
    return util, hot


def correlated_masks(
    n_members: int,
    n_ticks: int,
    profile: PortProfile,
    participation: float,
    shared_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Hot masks for ``n_members`` servers sharing group bursts (Fig 8).

    A master on/off process supplies shared bursts; each member joins
    each shared burst with probability ``participation``.  Each member
    additionally runs a thinned private process so its own hot fraction
    stays at the profile's, with ``shared_fraction`` of bursts shared.

    Returns a (n_ticks, n_members) boolean array.
    """
    if n_members <= 0:
        raise ConfigError("need at least one member")
    generator = OnOffGenerator(profile)
    masks = np.zeros((n_ticks, n_members), dtype=bool)

    if shared_fraction > 0.0 and participation > 0.0 and n_members > 1:
        starts, lengths = generator.generate_mask_runs(n_ticks, rng)
        for member in range(n_members):
            join = rng.random(len(starts)) < participation
            for start, length in zip(starts[join], lengths[join]):
                masks[start : start + length, member] = True

    private_share = 1.0 - shared_fraction if n_members > 1 else 1.0
    if private_share > 0.0:
        for member in range(n_members):
            starts, lengths = generator.generate_mask_runs(n_ticks, rng)
            keep = rng.random(len(starts)) < private_share
            for start, length in zip(starts[keep], lengths[keep]):
                masks[start : start + length, member] = True
    return masks
