"""Campaign-scale synthetic trace generation.

The paper's dataset is 720 two-minute windows of 25 µs samples (billions
of points).  The packet-level simulator (:mod:`repro.netsim`) validates
mechanisms but cannot generate that volume in Python, so benchmarks use
this vectorised generator: semi-Markov on/off utilization processes per
port, calibrated per application against the paper's published
statistics (Table 2 transition matrices, Fig 3/4 duration and gap
shapes, Fig 6 intensity mixtures), plus rack-level structure for ECMP
imbalance (Fig 7), server correlation (Fig 8), directionality (Fig 9),
buffer response (Fig 10), and the coarse-grained drop behaviour of the
motivation study (Figs 1-2).

Cross-validation against the packet simulator lives in
``tests/integration/test_synth_vs_netsim.py``.
"""

from repro.synth.calibration import (
    APP_PROFILES,
    AppProfile,
    ColdUtilModel,
    DurationModel,
    GapModel,
    IntensityModel,
    PortProfile,
)
from repro.synth.onoff import OnOffGenerator, correlated_masks
from repro.synth.rackmodel import RackSynthesizer, RackWindow
from repro.synth.buffermodel import BufferResponseModel
from repro.synth.dropmodel import CoarseLinkPopulation, DropEpisodeModel
from repro.synth.dataset import SyntheticCampaignSource, synthesize_app_windows

__all__ = [
    "APP_PROFILES",
    "AppProfile",
    "ColdUtilModel",
    "DurationModel",
    "GapModel",
    "IntensityModel",
    "PortProfile",
    "OnOffGenerator",
    "correlated_masks",
    "RackSynthesizer",
    "RackWindow",
    "BufferResponseModel",
    "CoarseLinkPopulation",
    "DropEpisodeModel",
    "SyntheticCampaignSource",
    "synthesize_app_windows",
]
