"""Coarse-grained drop behaviour (the Sec 3 motivation study).

Fig 1: across ToR-server links, 4-minute drop rates are nearly
uncorrelated with 4-minute average utilization (r = 0.098), because
drops come from µbursts whose intensity is largely independent of the
link's average load.  Fig 2: 1-minute drop time series are episodic —
bursts of drops shorter than the measurement granularity separated by
drop-free gaps — on both low- and high-utilization ports.

We model exactly that generative story: each link has an average
utilization and an independent *burstiness* factor; drops per coarse
interval are produced by a heavy-tailed episode process driven almost
entirely by burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class CoarseLinkPopulation:
    """Population model of ToR-server links for the Fig 1 scatter.

    ``utilization_coupling`` sets how much average utilization leaks into
    drop propensity; near zero reproduces the paper's r ~ 0.1.
    """

    mean_util_median: float = 0.08
    mean_util_sigma: float = 1.1
    burstiness_sigma: float = 1.6
    drop_scale: float = 2e-4
    utilization_coupling: float = 0.45
    zero_drop_fraction: float = 0.45

    def __post_init__(self) -> None:
        if not 0.0 <= self.zero_drop_fraction <= 1.0:
            raise ConfigError("zero_drop_fraction must be a probability")
        if self.drop_scale <= 0:
            raise ConfigError("drop_scale must be positive")

    def sample_links(
        self, n_links: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(utilization, drop_rate) pairs for ``n_links`` link-intervals.

        Utilization is a fraction of line rate over the coarse interval;
        drop rate is drops per packet over the same interval.
        """
        if n_links <= 0:
            raise ConfigError("need at least one link")
        util = np.clip(
            rng.lognormal(np.log(self.mean_util_median), self.mean_util_sigma, n_links),
            0.002,
            0.85,
        )
        burstiness = rng.lognormal(0.0, self.burstiness_sigma, n_links)
        # Drop propensity: dominated by burstiness, weakly coupled to load.
        propensity = burstiness * np.power(util / self.mean_util_median, self.utilization_coupling)
        drops = self.drop_scale * propensity * rng.lognormal(0.0, 0.8, n_links)
        # Many link-intervals see no congestion discards at all.
        silent = rng.random(n_links) < self.zero_drop_fraction
        drops[silent] = 0.0
        return util, np.clip(drops, 0.0, 0.05)


@dataclass(frozen=True, slots=True)
class DropEpisodeModel:
    """Episodic drop time series at 1-minute granularity (Fig 2).

    Episodes arrive as a Poisson process; each lasts less than the
    1-minute measurement bin with heavy-tailed magnitude, so successive
    bins flip between zero and large counts — the signature Fig 2 shows
    for both the ~9 % web port and the ~43 % hadoop port.
    """

    episodes_per_hour: float
    drops_per_episode_median: float = 2_000.0
    drops_per_episode_sigma: float = 1.4

    def __post_init__(self) -> None:
        if self.episodes_per_hour <= 0:
            raise ConfigError("episode rate must be positive")

    def sample_minutes(self, n_minutes: int, rng: np.random.Generator) -> np.ndarray:
        """Per-minute drop counts for ``n_minutes``."""
        if n_minutes <= 0:
            raise ConfigError("need at least one minute")
        rate_per_minute = self.episodes_per_hour / 60.0
        episodes = rng.poisson(rate_per_minute, size=n_minutes)
        drops = np.zeros(n_minutes)
        active = np.flatnonzero(episodes > 0)
        for index in active:
            magnitudes = rng.lognormal(
                np.log(self.drops_per_episode_median),
                self.drops_per_episode_sigma,
                size=int(episodes[index]),
            )
            drops[index] = magnitudes.sum()
        return drops
