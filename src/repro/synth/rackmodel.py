"""Whole-rack synthetic window generation.

Produces everything the cross-port analyses need for one campaign
window: per-downlink utilization with the application's correlation
structure (Fig 8), per-uplink egress/ingress utilization with flow-level
ECMP imbalance (Fig 7), hot-sample directionality (Fig 9), and counter
traces (byte counters and packet-size histograms) in the exact format
the real sampler produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.samples import CounterTrace, ValueKind
from repro.errors import ConfigError
from repro.synth.calibration import APP_PROFILES, BASE_TICK_NS, AppProfile, PortProfile
from repro.synth.onoff import OnOffGenerator, correlated_utilization
from repro.units import NS_PER_S, gbps


def fill_utilization(
    mask: np.ndarray, profile: PortProfile, rng: np.random.Generator
) -> np.ndarray:
    """Turn a hot mask into a utilization series using a port profile.

    Each maximal hot run gets one intensity draw (plus per-tick noise);
    cold ticks draw from the cold-utilization model.
    """
    mask = np.asarray(mask, dtype=bool)
    util = np.empty(len(mask))
    util[~mask] = profile.cold.sample(rng, int((~mask).sum()))
    padded = np.concatenate(([False], mask, [False]))
    diff = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diff == 1)
    stops = np.flatnonzero(diff == -1)
    lengths = stops - starts
    intensities = profile.intensity.sample(rng, len(lengths))
    per_tick = np.repeat(intensities, lengths)
    noise = rng.normal(0.0, profile.intensity.tick_noise, size=len(per_tick))
    util[mask] = np.clip(per_tick + noise, 0.501, 1.0)
    return util


def _ecmp_weight_segments(
    n_ticks: int,
    n_links: int,
    n_flows: int,
    mean_lifetime_ticks: float,
    weight_shape: float,
    rng: np.random.Generator,
    link_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Per-tick per-link traffic shares under churning flow-level ECMP.

    Simulates ``n_flows`` flow aggregates, each hashed to one link with a
    Gamma-distributed weight; when a flow ends (exponential lifetime) a
    fresh flow replaces it.  Returns (n_ticks, n_links) shares summing to
    1 per tick.

    ``link_weights`` biases the hash toward healthy links (WCMP-style
    reweighting after failures): a weight of 0 removes a link from the
    hash entirely, fractional weights shrink its share of flows.
    """
    if link_weights is None:
        probabilities = np.full(n_links, 1.0 / n_links)
    else:
        link_weights = np.asarray(link_weights, dtype=np.float64)
        if link_weights.shape != (n_links,) or link_weights.min() < 0:
            raise ConfigError("link_weights must be non-negative, one per link")
        total = link_weights.sum()
        if total <= 0:
            raise ConfigError("at least one link must have positive weight")
        probabilities = link_weights / total

    def choose_links(count: int) -> np.ndarray:
        return rng.choice(n_links, size=count, p=probabilities)

    links = choose_links(n_flows)
    weights = rng.gamma(weight_shape, 1.0, size=n_flows)
    deaths = rng.exponential(mean_lifetime_ticks, size=n_flows)
    shares = np.empty((n_ticks, n_links))
    t = 0
    while t < n_ticks:
        next_death = float(deaths.min())
        segment_end = min(n_ticks, int(np.ceil(next_death)) + t) if next_death > 0 else t + 1
        segment_end = max(segment_end, t + 1)
        link_weights = np.bincount(links, weights=weights, minlength=n_links)
        total = link_weights.sum()
        shares[t:segment_end] = link_weights / total if total > 0 else 1.0 / n_links
        elapsed = segment_end - t
        deaths -= elapsed
        dead = deaths <= 0
        n_dead = int(dead.sum())
        if n_dead:
            links[dead] = choose_links(n_dead)
            weights[dead] = rng.gamma(weight_shape, 1.0, size=n_dead)
            deaths[dead] = rng.exponential(mean_lifetime_ticks, size=n_dead)
        t = segment_end
    return shares


@dataclass(slots=True)
class RackWindow:
    """One synthesized campaign window for a whole rack."""

    app: str
    tick_ns: int
    downlink_rate_bps: float
    uplink_rate_bps: float
    downlink_util: np.ndarray  # (n_ticks, n_downlinks)
    uplink_egress_util: np.ndarray  # (n_ticks, n_uplinks)
    uplink_ingress_util: np.ndarray  # (n_ticks, n_uplinks)

    @property
    def n_ticks(self) -> int:
        return self.downlink_util.shape[0]

    @property
    def n_downlinks(self) -> int:
        return self.downlink_util.shape[1]

    @property
    def n_uplinks(self) -> int:
        return self.uplink_egress_util.shape[1]

    def all_egress_util(self) -> np.ndarray:
        """(n_ticks, n_down + n_up) egress utilization of every port."""
        return np.concatenate([self.downlink_util, self.uplink_egress_util], axis=1)

    def downlink_byte_trace(self, index: int, start_ns: int = 0) -> CounterTrace:
        return utilization_to_byte_trace(
            self.downlink_util[:, index],
            self.downlink_rate_bps,
            self.tick_ns,
            name=f"down{index}.tx_bytes",
            start_ns=start_ns,
        )

    def uplink_byte_trace(
        self, index: int, direction: str = "egress", start_ns: int = 0
    ) -> CounterTrace:
        if direction == "egress":
            util = self.uplink_egress_util[:, index]
        elif direction == "ingress":
            util = self.uplink_ingress_util[:, index]
        else:
            raise ConfigError(f"unknown direction {direction!r}")
        return utilization_to_byte_trace(
            util,
            self.uplink_rate_bps,
            self.tick_ns,
            name=f"up{index}.{'tx' if direction == 'egress' else 'rx'}_bytes",
            start_ns=start_ns,
        )


def utilization_to_byte_trace(
    utilization: np.ndarray,
    rate_bps: float,
    tick_ns: int,
    name: str = "",
    start_ns: int = 0,
) -> CounterTrace:
    """Convert per-tick utilization into a cumulative byte-counter trace.

    The result has n_ticks + 1 samples (the counter is read at the start
    and end of every interval), exactly like the sampler's output on a
    miss-free run.
    """
    utilization = np.asarray(utilization, dtype=np.float64)
    bytes_per_tick = utilization * rate_bps * tick_ns / NS_PER_S / 8.0
    cumulative = np.concatenate(([0.0], np.cumsum(bytes_per_tick)))
    values = np.round(cumulative).astype(np.int64)
    timestamps = start_ns + tick_ns * np.arange(len(values), dtype=np.int64)
    return CounterTrace(
        timestamps_ns=timestamps,
        values=values,
        kind=ValueKind.CUMULATIVE,
        name=name,
        rate_bps=rate_bps,
    )


def synthesize_size_histogram(
    utilization: np.ndarray,
    hot: np.ndarray,
    profile: AppProfile,
    rate_bps: float,
    tick_ns: int,
    rng: np.random.Generator,
    name: str = "tx_size_hist",
    start_ns: int = 0,
) -> CounterTrace:
    """Cumulative packet-size histogram trace consistent with a byte trace.

    Packet counts per tick follow the regime's mean packet size; bin
    splits are Poisson draws around the regime's histogram shares (a
    faithful approximation of per-packet multinomial sampling at these
    counts).
    """
    utilization = np.asarray(utilization, dtype=np.float64)
    hot = np.asarray(hot, dtype=bool)
    bytes_per_tick = utilization * rate_bps * tick_ns / NS_PER_S / 8.0
    mean_size = np.where(hot, profile.mean_packet_inside, profile.mean_packet_outside)
    packets_per_tick = bytes_per_tick / mean_size
    mix_out = np.asarray(profile.size_mix_outside)
    mix_in = np.asarray(profile.size_mix_inside)
    shares = np.where(hot[:, None], mix_in[None, :], mix_out[None, :])
    expected = packets_per_tick[:, None] * shares
    counts = rng.poisson(expected)
    cumulative = np.concatenate(
        [np.zeros((1, counts.shape[1]), dtype=np.int64), np.cumsum(counts, axis=0)]
    )
    timestamps = start_ns + tick_ns * np.arange(cumulative.shape[0], dtype=np.int64)
    return CounterTrace(
        timestamps_ns=timestamps,
        values=cumulative,
        kind=ValueKind.CUMULATIVE,
        name=name,
        rate_bps=rate_bps,
    )


class RackSynthesizer:
    """Synthesizes whole-rack windows for one application profile."""

    def __init__(
        self,
        profile: AppProfile | str,
        n_downlinks: int = 16,
        n_uplinks: int = 4,
        downlink_rate_bps: float = gbps(10),
        uplink_rate_bps: float = gbps(10),
        tick_ns: int = BASE_TICK_NS,
    ) -> None:
        if isinstance(profile, str):
            try:
                profile = APP_PROFILES[profile]
            except KeyError:
                raise ConfigError(
                    f"unknown app {profile!r}; choose from {sorted(APP_PROFILES)}"
                ) from None
        if n_downlinks <= 0 or n_uplinks <= 0:
            raise ConfigError("need at least one downlink and uplink")
        self.profile = profile
        self.n_downlinks = n_downlinks
        self.n_uplinks = n_uplinks
        self.downlink_rate_bps = downlink_rate_bps
        self.uplink_rate_bps = uplink_rate_bps
        self.tick_ns = tick_ns

    # -- pieces --------------------------------------------------------------

    def downlink_matrix(self, n_ticks: int, rng: np.random.Generator) -> np.ndarray:
        """(n_ticks, n_downlinks) utilization with correlation structure."""
        corr = self.profile.correlation
        util = np.empty((n_ticks, self.n_downlinks), dtype=np.float64)
        group_size = min(corr.group_size, self.n_downlinks)
        start = 0
        while start < self.n_downlinks:
            size = min(group_size, self.n_downlinks - start)
            group_util, _hot = correlated_utilization(
                n_members=size,
                n_ticks=n_ticks,
                profile=self.profile.downlink,
                participation=corr.participation,
                shared_fraction=corr.shared_fraction,
                rng=rng,
            )
            util[:, start : start + size] = group_util
            start += size
        return util

    def uplink_matrix(
        self,
        n_ticks: int,
        rng: np.random.Generator,
        capacity_factors: np.ndarray | None = None,
    ) -> np.ndarray:
        """(n_ticks, n_uplinks) utilization for one direction.

        A per-link baseline activity process (the uplink port profile)
        modulated by churning ECMP share multipliers:
        ``util_link = baseline * clip(n_uplinks * share, 0, 2) * noise``.
        The multiplier has mean ~1, so the baseline's hot fraction is
        approximately the per-link hot fraction, while the share spread
        produces Fig 7's dispersion.

        ``capacity_factors`` (from
        :meth:`repro.netsim.clos.ClosFabric.uplink_capacity_factors`)
        injects failure asymmetry: flows avoid degraded paths and the
        survivors absorb the displaced load.
        """
        generator = OnOffGenerator(self.profile.uplink)
        baseline = generator.generate(n_ticks, rng).utilization
        ecmp = self.profile.ecmp
        shares = _ecmp_weight_segments(
            n_ticks,
            self.n_uplinks,
            ecmp.n_flows,
            ecmp.mean_lifetime_ticks,
            ecmp.weight_shape,
            rng,
            link_weights=capacity_factors,
        )
        multiplier = np.clip(self.n_uplinks * shares, 0.0, 2.0)
        noise = rng.lognormal(0.0, ecmp.tick_noise, size=(n_ticks, self.n_uplinks))
        util = baseline[:, None] * multiplier * noise
        return np.clip(util, 0.0, 1.0)

    # -- full window -----------------------------------------------------------

    def synthesize(
        self, n_ticks: int, rng: np.random.Generator, activity: float = 1.0
    ) -> RackWindow:
        """One rack window; ``activity`` scales burst frequency (diurnal)."""
        if n_ticks <= 0:
            raise ConfigError("n_ticks must be positive")
        synthesizer = self
        if activity != 1.0:
            synthesizer = RackSynthesizer(
                self.profile.with_activity(activity),
                n_downlinks=self.n_downlinks,
                n_uplinks=self.n_uplinks,
                downlink_rate_bps=self.downlink_rate_bps,
                uplink_rate_bps=self.uplink_rate_bps,
                tick_ns=self.tick_ns,
            )
        return RackWindow(
            app=self.profile.name,
            tick_ns=self.tick_ns,
            downlink_rate_bps=self.downlink_rate_bps,
            uplink_rate_bps=self.uplink_rate_bps,
            downlink_util=synthesizer.downlink_matrix(n_ticks, rng),
            uplink_egress_util=synthesizer.uplink_matrix(n_ticks, rng),
            uplink_ingress_util=synthesizer.uplink_matrix(n_ticks, rng),
        )
