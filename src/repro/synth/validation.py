"""Calibration scorecard.

Computes, for each application, every per-port statistic the synthesiser
is calibrated to (Table 2 probabilities and ratios, Fig 3 landmarks,
hot-time fractions) and compares them against the published targets in
one structured report.  Exposed on the CLI as ``repro validate``; the
test suite asserts the same bands in ``tests/synth/test_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import extract_bursts, fit_transition_matrix
from repro.data.published import PAPER
from repro.synth.calibration import APP_PROFILES, BASE_TICK_NS
from repro.synth.onoff import OnOffGenerator


@dataclass(frozen=True, slots=True)
class CheckResult:
    """One scorecard row."""

    app: str
    metric: str
    target: str
    measured: float
    passed: bool


def _within(value: float, low: float, high: float) -> bool:
    return low <= value <= high


def calibration_scorecard(
    seed: int = 0, n_ticks: int = 2_000_000
) -> list[CheckResult]:
    """Generate one long series per app and score it against the paper."""
    results: list[CheckResult] = []
    for app, profile in APP_PROFILES.items():
        rng = np.random.default_rng(seed)
        series = OnOffGenerator(profile.downlink).generate(n_ticks, rng)
        stats = extract_bursts(series.utilization, BASE_TICK_NS)
        matrix = fit_transition_matrix(series.hot)
        paper = PAPER.table2[app]

        p90_target_ns = PAPER.fig3_p90_burst_duration_ns[app]
        results.append(
            CheckResult(
                app=app,
                metric="p90 burst duration (us)",
                target=f"<= {p90_target_ns / 1000:.0f} (+1 period slack)",
                measured=stats.p90_duration_ns / 1000.0,
                passed=stats.p90_duration_ns <= p90_target_ns + BASE_TICK_NS,
            )
        )
        results.append(
            CheckResult(
                app=app,
                metric="p(1|1)",
                target=f"{paper.p11} +/- 0.08",
                measured=matrix.p11,
                passed=_within(matrix.p11, paper.p11 - 0.08, paper.p11 + 0.08),
            )
        )
        results.append(
            CheckResult(
                app=app,
                metric="likelihood ratio r",
                target=f"{paper.likelihood_ratio} within 2.5x",
                measured=matrix.likelihood_ratio,
                passed=_within(
                    matrix.likelihood_ratio,
                    paper.likelihood_ratio / 2.5,
                    paper.likelihood_ratio * 2.5,
                ),
            )
        )
        if app in PAPER.fig3_single_period_fraction_min:
            minimum = PAPER.fig3_single_period_fraction_min[app]
            results.append(
                CheckResult(
                    app=app,
                    metric="single-period burst share",
                    target=f">= {minimum}",
                    measured=stats.single_period_fraction,
                    passed=stats.single_period_fraction >= minimum,
                )
            )
        results.append(
            CheckResult(
                app=app,
                metric="microburst (<1ms) share",
                target=f">= {PAPER.microburst_share_min}",
                measured=stats.microburst_fraction,
                passed=stats.microburst_fraction >= PAPER.microburst_share_min,
            )
        )
    # cross-application orderings
    hot = {
        app: OnOffGenerator(profile.downlink)
        .generate(400_000, np.random.default_rng(seed + 1))
        .hot.mean()
        for app, profile in APP_PROFILES.items()
    }
    results.append(
        CheckResult(
            app="all",
            metric="hot-time ordering hadoop > cache > web",
            target="holds",
            measured=float(hot["hadoop"] > hot["cache"] > hot["web"]),
            passed=bool(hot["hadoop"] > hot["cache"] > hot["web"]),
        )
    )
    return results


def render_scorecard(results: list[CheckResult]) -> str:
    lines = [
        f"{'app':>7}  {'metric':<34} {'target':<28} {'measured':>10}  ok",
        "-" * 88,
    ]
    for check in results:
        lines.append(
            f"{check.app:>7}  {check.metric:<34} {check.target:<28} "
            f"{check.measured:10.3f}  {'PASS' if check.passed else 'FAIL'}"
        )
    n_pass = sum(1 for check in results if check.passed)
    lines.append(f"{n_pass}/{len(results)} checks passed")
    return "\n".join(lines)
