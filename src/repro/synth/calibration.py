"""Per-application calibration of the synthetic trace generator.

Every number here traces to a statement in the paper:

* Burst-duration models are fit so the per-tick hot process has the
  Table 2 transition probabilities (p11 = 1 - 1/E[D]) while matching
  Fig 3's duration CDF landmarks (Web p90 = 2 ticks = 50 µs; >60 % of
  Web/Cache bursts are single-period; Hadoop has the longest tail but
  almost all bursts end within 0.5 ms).
* Gap models match Table 2's p01 (= 1/E[G]) in the mean while matching
  Fig 4's shape: ~40 % of Web/Cache gaps under 100 µs, tails out to
  hundreds of milliseconds, decisively non-exponential.
* Intensity mixtures reproduce Fig 6: long-tailed utilization,
  multimodal for Cache/Hadoop, Hadoop near line rate ~10 % of periods.
* Per-direction hot fractions reproduce Fig 9's uplink/downlink split
  (Web server-biased, Hadoop 18 % uplink, Cache uplink-majority) while
  the random-port mix stays consistent with Table 2.
* ECMP flow counts/churn reproduce Fig 7 (Hadoop "longer flows, less
  balanced"; balanced again at 1 s).
* Buffer response curves reproduce Fig 10's shape: occupancy grows with
  simultaneous hot ports, steepest for Hadoop, and levels off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: The paper's base sampling tick (byte counters): 25 microseconds.
BASE_TICK_NS = 25_000


@dataclass(frozen=True)
class DurationModel:
    """Burst-duration distribution in ticks: explicit head pmf plus a
    geometric tail continuing after the head."""

    head: tuple[float, ...]
    tail_decay: float

    def __post_init__(self) -> None:
        if not self.head or any(p < 0 for p in self.head):
            raise ConfigError("head pmf must be non-empty and non-negative")
        if sum(self.head) > 1.0 + 1e-9:
            raise ConfigError("head pmf mass exceeds 1")
        if not 0.0 <= self.tail_decay < 1.0:
            raise ConfigError("tail decay must be in [0, 1)")

    @property
    def tail_mass(self) -> float:
        return max(0.0, 1.0 - sum(self.head))

    def mean(self) -> float:
        """E[D] in ticks; the generator's implied p11 is 1 - 1/E[D]."""
        head_mean = sum((k + 1) * p for k, p in enumerate(self.head))
        start = len(self.head) + 1
        q = self.tail_decay
        # tail: P(D = start + j) = tail_mass * (1-q) * q^j
        tail_mean = self.tail_mass * (start + q / (1.0 - q)) if self.tail_mass else 0.0
        return head_mean + tail_mean

    @property
    def implied_p11(self) -> float:
        return 1.0 - 1.0 / self.mean()

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` burst durations (ticks, >= 1)."""
        if n <= 0:
            return np.zeros(0, dtype=np.int64)
        u = rng.random(n)
        out = np.zeros(n, dtype=np.int64)
        cum = 0.0
        remaining = np.ones(n, dtype=bool)
        for k, p in enumerate(self.head):
            cum += p
            hit = remaining & (u < cum)
            out[hit] = k + 1
            remaining &= ~hit
        n_tail = int(remaining.sum())
        if n_tail:
            extra = rng.geometric(1.0 - self.tail_decay, size=n_tail) - 1
            out[remaining] = len(self.head) + 1 + extra
        return out


@dataclass(frozen=True)
class GapModel:
    """Inter-burst gap distribution in ticks: a mixture of a small
    lognormal (back-to-back µbursts) and a large lognormal (idle spells
    of tens to hundreds of milliseconds)."""

    p_small: float
    small_median: float
    small_sigma: float
    large_median: float
    large_sigma: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_small <= 1.0:
            raise ConfigError("p_small must be a probability")
        if min(self.small_median, self.large_median) <= 0:
            raise ConfigError("medians must be positive")

    def mean(self) -> float:
        """E[G] in ticks; the generator's implied p01 is 1/E[G]."""
        small = self.small_median * math.exp(self.small_sigma**2 / 2.0)
        large = self.large_median * math.exp(self.large_sigma**2 / 2.0)
        return self.p_small * small + (1.0 - self.p_small) * large

    @property
    def implied_p01(self) -> float:
        return 1.0 / self.mean()

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n <= 0:
            return np.zeros(0, dtype=np.int64)
        small = rng.random(n) < self.p_small
        out = np.empty(n)
        n_small = int(small.sum())
        out[small] = rng.lognormal(
            math.log(self.small_median), self.small_sigma, size=n_small
        )
        out[~small] = rng.lognormal(
            math.log(self.large_median), self.large_sigma, size=n - n_small
        )
        return np.maximum(1, np.round(out)).astype(np.int64)

    def with_activity(self, activity: float) -> "GapModel":
        """Scale the idle spells by 1/activity (diurnal load variation).

        Burst shape is an application property; how *often* bursts occur
        tracks offered load, so activity stretches only the large
        (idle-spell) mixture component.
        """
        if activity <= 0:
            raise ConfigError("activity must be positive")
        return GapModel(
            p_small=self.p_small,
            small_median=self.small_median,
            small_sigma=self.small_sigma,
            large_median=self.large_median / activity,
            large_sigma=self.large_sigma,
        )


@dataclass(frozen=True)
class IntensityModel:
    """Within-burst utilization: a mixture of uniform components above
    the hot threshold.  One intensity per burst plus small per-tick
    noise, matching the paper's observation that bursts are 'generally
    intense' (Sec 5.4)."""

    components: tuple[tuple[float, float, float], ...]  # (weight, low, high)
    tick_noise: float = 0.03

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigError("need at least one intensity component")
        for weight, low, high in self.components:
            if weight < 0 or not 0.5 <= low <= high <= 1.0:
                raise ConfigError(f"bad intensity component {(weight, low, high)}")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n <= 0:
            return np.zeros(0)
        weights = np.array([c[0] for c in self.components])
        weights = weights / weights.sum()
        which = rng.choice(len(self.components), size=n, p=weights)
        lows = np.array([c[1] for c in self.components])[which]
        highs = np.array([c[2] for c in self.components])[which]
        return lows + rng.random(n) * (highs - lows)


@dataclass(frozen=True)
class ColdUtilModel:
    """Utilization outside bursts: lognormal base clipped below the hot
    threshold, with an optional secondary mode (Cache/Hadoop are
    multimodal at 25 µs, Sec 5.4)."""

    median: float
    sigma: float
    bump_weight: float = 0.0
    bump_center: float = 0.35
    bump_width: float = 0.08
    zero_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0:
            raise ConfigError("bad cold-utilization parameters")
        if not 0.0 <= self.bump_weight <= 1.0 or not 0.0 <= self.zero_weight <= 1.0:
            raise ConfigError("weights must be probabilities")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n <= 0:
            return np.zeros(0)
        base = rng.lognormal(math.log(self.median), self.sigma, size=n)
        out = np.clip(base, 0.0, 0.495)
        if self.bump_weight > 0:
            in_bump = rng.random(n) < self.bump_weight
            bump = rng.normal(self.bump_center, self.bump_width, size=int(in_bump.sum()))
            out[in_bump] = np.clip(bump, 0.0, 0.495)
        if self.zero_weight > 0:
            idle = rng.random(n) < self.zero_weight
            out[idle] = 0.0
        return out


@dataclass(frozen=True)
class PortProfile:
    """Full single-port utilization process."""

    duration: DurationModel
    gap: GapModel
    intensity: IntensityModel
    cold: ColdUtilModel

    @property
    def hot_fraction(self) -> float:
        """Stationary fraction of hot ticks, E[D] / (E[D] + E[G])."""
        d = self.duration.mean()
        return d / (d + self.gap.mean())

    def with_activity(self, activity: float) -> "PortProfile":
        """Same bursts, scaled burst frequency (diurnal variation)."""
        return PortProfile(
            duration=self.duration,
            gap=self.gap.with_activity(activity),
            intensity=self.intensity,
            cold=self.cold,
        )


@dataclass(frozen=True)
class EcmpFlowModel:
    """Flow-level ECMP imbalance parameters (Fig 7).

    ``n_flows`` concurrent flow aggregates share the four uplinks;
    each lives ~``mean_lifetime_ticks`` then is replaced (new hash, new
    weight).  Fewer, longer flows => worse short-term balance.
    """

    n_flows: int
    mean_lifetime_ticks: float
    weight_shape: float = 1.0
    tick_noise: float = 0.25

    def __post_init__(self) -> None:
        if self.n_flows <= 0 or self.mean_lifetime_ticks <= 0:
            raise ConfigError("bad ECMP flow model")


@dataclass(frozen=True)
class CorrelationModel:
    """Downlink cross-server structure (Fig 8).

    ``group_size`` servers share scatter-gather driven bursts with
    probability ``participation`` each; ``shared_fraction`` of a
    member's bursts come from the group process (the rest are its own).
    """

    group_size: int
    participation: float
    shared_fraction: float

    def __post_init__(self) -> None:
        if self.group_size <= 0:
            raise ConfigError("group size must be positive")
        if not 0.0 <= self.participation <= 1.0:
            raise ConfigError("participation must be a probability")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ConfigError("shared_fraction must be a probability")


@dataclass(frozen=True)
class BufferResponse:
    """Saturating response of peak shared-buffer occupancy to the number
    of simultaneously hot ports (Fig 10)."""

    base: float
    scale: float
    saturation_ports: float
    noise_sigma: float

    def __post_init__(self) -> None:
        if self.saturation_ports <= 0 or self.scale < 0 or self.base < 0:
            raise ConfigError("bad buffer response")


@dataclass(frozen=True)
class AppProfile:
    """Everything the synthesiser needs for one application rack."""

    name: str
    downlink: PortProfile
    uplink: PortProfile
    ecmp: EcmpFlowModel
    correlation: CorrelationModel
    buffer: BufferResponse
    #: normalised packet-size histogram over the 6 ASIC bins,
    #: outside and inside bursts (Fig 5)
    size_mix_outside: tuple[float, ...]
    size_mix_inside: tuple[float, ...]
    #: mean wire bytes per packet in each regime (for count synthesis)
    mean_packet_outside: float
    mean_packet_inside: float

    def with_activity(self, activity: float) -> "AppProfile":
        """Profile under scaled offered load (diurnal variation)."""
        return AppProfile(
            name=self.name,
            downlink=self.downlink.with_activity(activity),
            uplink=self.uplink.with_activity(activity),
            ecmp=self.ecmp,
            correlation=self.correlation,
            buffer=self.buffer,
            size_mix_outside=self.size_mix_outside,
            size_mix_inside=self.size_mix_inside,
            mean_packet_outside=self.mean_packet_outside,
            mean_packet_inside=self.mean_packet_inside,
        )


def diurnal_activity(hour: int, amplitude: float = 0.6, peak_hour: int = 15) -> float:
    """Smooth day/night offered-load factor with mean ~1.

    The paper's campaign spans 24 hours precisely to capture diurnal
    patterns (Sec 4.2); window-level activity modulates burst frequency.
    """
    if not 0.0 <= amplitude < 1.0:
        raise ConfigError("amplitude must be in [0, 1)")
    phase = 2.0 * math.pi * (hour - peak_hour) / 24.0
    return 1.0 + amplitude * math.cos(phase)


def _web_profile() -> AppProfile:
    duration = DurationModel(head=(0.75, 0.16), tail_decay=0.62)
    # E[D] ~ 1.49 ticks -> p11 ~ 0.33 (paper: 0.359); p90 = 2 ticks = 50 us.
    down_gap = GapModel(
        p_small=0.45, small_median=2.0, small_sigma=0.8,
        large_median=82.0, large_sigma=2.0,
    )  # E[G] ~ 335 ticks -> p01 ~ 0.003 (paper: 0.003)
    up_gap = GapModel(
        p_small=0.35, small_median=2.5, small_sigma=0.8,
        large_median=700.0, large_sigma=2.0,
    )  # rarely-hot aggregate: Fig 9 shows Web bursts are server-biased
    intensity = IntensityModel(
        components=((0.70, 0.52, 0.85), (0.25, 0.85, 0.98), (0.05, 0.98, 1.0))
    )
    return AppProfile(
        name="web",
        downlink=PortProfile(
            duration=duration, gap=down_gap, intensity=intensity,
            cold=ColdUtilModel(median=0.02, sigma=1.1, zero_weight=0.10),
        ),
        uplink=PortProfile(
            duration=duration, gap=up_gap, intensity=intensity,
            cold=ColdUtilModel(median=0.025, sigma=0.8),
        ),
        ecmp=EcmpFlowModel(
            n_flows=20, mean_lifetime_ticks=150.0, weight_shape=2.0, tick_noise=0.20
        ),
        correlation=CorrelationModel(group_size=1, participation=0.0, shared_fraction=0.0),
        buffer=BufferResponse(base=0.02, scale=0.38, saturation_ports=3.0, noise_sigma=0.40),
        size_mix_outside=(0.30, 0.22, 0.16, 0.12, 0.08, 0.12),
        size_mix_inside=(0.24, 0.18, 0.14, 0.12, 0.10, 0.22),
        # Web: ~60 % relative increase in full-MTU share inside bursts
        mean_packet_outside=420.0,
        mean_packet_inside=560.0,
    )


def _cache_profile() -> AppProfile:
    duration = DurationModel(
        head=(0.62, 0.07, 0.05, 0.04), tail_decay=0.84
    )
    # E[D] ~ 3.3 ticks -> p11 ~ 0.70 (paper: 0.721); >60 % single-period;
    # p90 ~ 8 ticks = 200 us.
    down_gap = GapModel(
        p_small=0.48, small_median=2.0, small_sigma=0.9,
        large_median=29.0, large_sigma=1.9,
    )  # hot fraction ~ 3.5 %
    up_gap = GapModel(
        p_small=0.50, small_median=1.8, small_sigma=0.9,
        large_median=8.3, large_sigma=1.7,
    )  # hot fraction ~ 15 %: uplink-bound (Fig 9)
    intensity = IntensityModel(
        components=((0.45, 0.52, 0.80), (0.40, 0.80, 0.97), (0.15, 0.97, 1.0))
    )
    return AppProfile(
        name="cache",
        downlink=PortProfile(
            duration=duration, gap=down_gap, intensity=intensity,
            cold=ColdUtilModel(median=0.04, sigma=1.0, bump_weight=0.12, bump_center=0.30),
        ),
        uplink=PortProfile(
            duration=duration, gap=up_gap, intensity=intensity,
            cold=ColdUtilModel(median=0.08, sigma=0.9, bump_weight=0.15, bump_center=0.35),
        ),
        ecmp=EcmpFlowModel(
            n_flows=8, mean_lifetime_ticks=300.0, weight_shape=1.5, tick_noise=0.25
        ),
        correlation=CorrelationModel(group_size=4, participation=0.9, shared_fraction=0.9),
        buffer=BufferResponse(base=0.03, scale=0.35, saturation_ports=3.0, noise_sigma=0.40),
        size_mix_outside=(0.34, 0.22, 0.14, 0.07, 0.03, 0.20),
        size_mix_inside=(0.31, 0.21, 0.13, 0.07, 0.04, 0.24),
        # Cache: ~20 % relative large-packet increase; small still dominates
        mean_packet_outside=380.0,
        mean_packet_inside=430.0,
    )


def _hadoop_profile() -> AppProfile:
    duration = DurationModel(head=(0.345,), tail_decay=0.655)
    # plain geometric with p11 = 0.655 (paper's Table 2 value exactly)
    down_gap = GapModel(
        p_small=0.30, small_median=2.5, small_sigma=0.9,
        large_median=9.0, large_sigma=1.6,
    )  # hot fraction ~ 11 % (Table 2 implies 10.9 %)
    up_gap = GapModel(
        p_small=0.30, small_median=2.5, small_sigma=0.9,
        large_median=13.0, large_sigma=1.6,
    )  # lower per-link activity: Fig 9's 18 % uplink share of hot samples
    intensity = IntensityModel(
        components=((0.20, 0.52, 0.90), (0.80, 0.93, 1.0))
    )
    return AppProfile(
        name="hadoop",
        downlink=PortProfile(
            duration=duration, gap=down_gap, intensity=intensity,
            cold=ColdUtilModel(median=0.12, sigma=0.8, bump_weight=0.10, bump_center=0.40),
        ),
        uplink=PortProfile(
            duration=duration, gap=up_gap, intensity=intensity,
            cold=ColdUtilModel(
                median=0.12, sigma=0.6, bump_weight=0.05, bump_center=0.32, bump_width=0.06
            ),
        ),
        ecmp=EcmpFlowModel(
            n_flows=5, mean_lifetime_ticks=500.0, weight_shape=0.7, tick_noise=0.25
        ),
        correlation=CorrelationModel(group_size=16, participation=0.40, shared_fraction=0.50),
        buffer=BufferResponse(base=0.15, scale=0.90, saturation_ports=10.0, noise_sigma=0.35),
        size_mix_outside=(0.05, 0.03, 0.02, 0.02, 0.03, 0.85),
        size_mix_inside=(0.03, 0.02, 0.02, 0.02, 0.03, 0.88),
        # Hadoop: almost all MTU in both regimes (Fig 5)
        mean_packet_outside=1280.0,
        mean_packet_inside=1340.0,
    )


APP_PROFILES: dict[str, AppProfile] = {
    "web": _web_profile(),
    "cache": _cache_profile(),
    "hadoop": _hadoop_profile(),
}
