"""repro: reproduction of "High-Resolution Measurement of Data Center
Microbursts" (Zhang, Liu, Zeng, Krishnamurthy — IMC 2017).

The package has five layers:

* :mod:`repro.netsim` — packet-level ToR-switch simulator (the hardware
  substrate the paper measured).
* :mod:`repro.workloads` — Web / Cache / Hadoop application traffic.
* :mod:`repro.core` — the paper's contribution: the high-resolution
  counter-collection framework (sampler, ASIC timing, collector,
  campaigns).
* :mod:`repro.synth` — campaign-scale calibrated trace synthesis.
* :mod:`repro.analysis` — burst statistics and every figure's analysis.

Quickstart::

    from repro import Simulator, build_rack, HighResSampler, SamplerConfig
    from repro.core.counters import bind_tx_bytes
    from repro.netsim import SwitchCounterSurface
    from repro.workloads import WebWorkload
    from repro.analysis import extract_bursts_from_trace
    from repro.units import ms, us

    sim = Simulator(seed=1)
    rack = build_rack(sim)
    WebWorkload(rack, rng=1).install()
    sim.run_for(ms(20))                       # warm up
    surface = SwitchCounterSurface(rack.tor)
    sampler = HighResSampler(SamplerConfig(interval_ns=us(25)),
                             [bind_tx_bytes(surface, "down0")])
    report = sampler.run_in_sim(sim, ms(50))
    stats = extract_bursts_from_trace(report.traces["down0.tx_bytes"])
    print(stats.n_bursts, stats.p90_duration_ns)
"""

from repro.errors import (
    AnalysisError,
    ConfigError,
    CounterError,
    DataFormatError,
    ReproError,
    SamplingError,
    SchedulingError,
    SimulationError,
)
from repro.netsim import (
    BufferPolicy,
    EcmpHasher,
    FabricCloud,
    Link,
    Packet,
    Rack,
    RackConfig,
    Server,
    SharedBuffer,
    Simulator,
    SwitchCounterSurface,
    TorSwitch,
    TorSwitchConfig,
    build_rack,
)
from repro.core import (
    AsicTimingModel,
    CollectorService,
    CounterTrace,
    HighResSampler,
    MeasurementCampaign,
    SamplerConfig,
    SamplerReport,
)
from repro.workloads import (
    CacheWorkload,
    HadoopWorkload,
    WebWorkload,
)
from repro.synth import APP_PROFILES, OnOffGenerator, RackSynthesizer
from repro.analysis import (
    EmpiricalCdf,
    extract_bursts,
    fit_transition_matrix,
)
from repro.data import PAPER

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigError",
    "SimulationError",
    "SchedulingError",
    "CounterError",
    "SamplingError",
    "AnalysisError",
    "DataFormatError",
    # netsim
    "Simulator",
    "BufferPolicy",
    "SharedBuffer",
    "EcmpHasher",
    "FabricCloud",
    "Link",
    "Packet",
    "Rack",
    "RackConfig",
    "Server",
    "TorSwitch",
    "TorSwitchConfig",
    "SwitchCounterSurface",
    "build_rack",
    # core
    "AsicTimingModel",
    "CollectorService",
    "CounterTrace",
    "HighResSampler",
    "MeasurementCampaign",
    "SamplerConfig",
    "SamplerReport",
    # workloads
    "WebWorkload",
    "CacheWorkload",
    "HadoopWorkload",
    # synth
    "APP_PROFILES",
    "OnOffGenerator",
    "RackSynthesizer",
    # analysis
    "EmpiricalCdf",
    "extract_bursts",
    "fit_transition_matrix",
    # data
    "PAPER",
    "__version__",
]
