"""Declarative fault plans.

A :class:`FaultPlan` describes *what* can go wrong in a chaos run and how
often, in the vocabulary of the paper's own failure modes: the polling
loop "misses" instants under load (Table 1), ASIC counters are 32-bit
registers that wrap, the switch CPU is perturbed by kernel interrupts and
competing requests (Sec 4.1), and the collector pipeline has bounded
buffering.  Plans are plain frozen data so a chaos run is fully described
by (plan, seed) and can be replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.collector import DROP_POLICIES
from repro.errors import FaultInjectionError
from repro.units import us


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Rates and parameters for every injectable fault class.

    Parameters
    ----------
    seed:
        Root seed of the fault stream.  Every injection decision is drawn
        from a generator keyed by ``(seed, site)`` where the site names
        the window/counter/read affected, so decisions are independent of
        call order — a resumed campaign sees exactly the faults an
        uninterrupted one would.
    window_failure_rate:
        Per-window probability that collection raises
        :class:`~repro.errors.CollectionError`.
    transient_fraction:
        Share of window failures that clear on the first retry (the rest
        are persistent and exhaust the retry budget).
    read_failure_rate:
        Per-read probability that a counter read fails (the sample is
        simply absent, leaving a gap — the paper's miss semantics).
    sample_loss_rate:
        Per-sample probability that an interior sample of a finished
        trace is lost in the collection pipeline (collector backpressure,
        lossy export), producing missing intervals.
    wrap_bits:
        When set (32 for real ASIC registers), cumulative counter values
        are wrapped to this width, exercising wrap correction downstream.
    latency_spike_rate / latency_spike_ns:
        Per-read probability of a switch-CPU contention spike and its
        magnitude, added on top of the ASIC timing model.
    queue_capacity / drop_policy:
        Bound on the collector's per-counter pending queue, and what to
        do on overflow (one of :data:`DROP_POLICIES`).
    truncate_rate:
        Per-archive probability that a written trace file is truncated
        (exercising the traceio integrity checks).
    """

    seed: int = 0
    window_failure_rate: float = 0.0
    transient_fraction: float = 1.0
    read_failure_rate: float = 0.0
    sample_loss_rate: float = 0.0
    wrap_bits: int | None = None
    latency_spike_rate: float = 0.0
    latency_spike_ns: int = us(250)
    queue_capacity: int | None = None
    drop_policy: str = "drop_newest"
    truncate_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "window_failure_rate",
            "transient_fraction",
            "read_failure_rate",
            "sample_loss_rate",
            "latency_spike_rate",
            "truncate_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(f"{name}={value} outside [0, 1]")
        if self.wrap_bits is not None and not 1 <= self.wrap_bits <= 64:
            raise FaultInjectionError(f"wrap_bits={self.wrap_bits} outside [1, 64]")
        if self.latency_spike_ns < 0:
            raise FaultInjectionError("latency_spike_ns must be non-negative")
        if self.queue_capacity is not None and self.queue_capacity <= 0:
            raise FaultInjectionError("queue_capacity must be positive")
        if self.drop_policy not in DROP_POLICIES:
            raise FaultInjectionError(
                f"drop_policy {self.drop_policy!r} not in {DROP_POLICIES}"
            )

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.window_failure_rate == 0.0
            and self.read_failure_rate == 0.0
            and self.sample_loss_rate == 0.0
            and self.wrap_bits is None
            and self.latency_spike_rate == 0.0
            and self.queue_capacity is None
            and self.truncate_rate == 0.0
        )
