"""Fault-injecting window sources.

Wraps any :class:`~repro.core.campaign.WindowSource` so chaos campaigns
need no changes to the underlying fleet model: window failures surface as
:class:`~repro.errors.CollectionError` (what a real collection RPC
failure looks like to the campaign runner) and surviving traces carry the
plan's trace-level degradations (sample loss, counter wraparound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.campaign import CampaignWindow, WindowSource
from repro.core.samples import CounterTrace
from repro.errors import CollectionError
from repro.faults.injector import FaultInjector


def window_site(window: CampaignWindow) -> str:
    """Stable injection-site name for one campaign window."""
    return f"{window.rack_id}|{window.hour}|{window.port_name}"


@dataclass(slots=True)
class FaultyWindowSource:
    """A window source with a fault injector in the collection path.

    Attempt numbers are tracked per window so transient faults clear on
    retry; trace degradation is keyed by window (not attempt), so a
    retried or resumed window yields byte-identical traces.
    """

    inner: WindowSource
    injector: FaultInjector
    _attempts: dict[str, int] = field(default_factory=dict)

    def sample_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        site = window_site(window)
        attempt = self._attempts.get(site, 0)
        self._attempts[site] = attempt + 1
        if self.injector.should_fail_window(site, attempt):
            raise CollectionError(
                f"injected collection failure for window {site} (attempt {attempt})"
            )
        traces = self.inner.sample_window(window)
        return {
            name: self.injector.degrade_trace(trace, f"{site}|{name}")
            for name, trace in traces.items()
        }

    def attempts_for(self, window: CampaignWindow) -> int:
        """How many times this window has been attempted so far."""
        return self._attempts.get(window_site(window), 0)
