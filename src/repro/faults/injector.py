"""Deterministic fault injection.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete injection decisions.  Every decision is drawn from a numpy
generator seeded by ``(plan.seed, crc32(site))`` where the *site* names
the affected window, counter, or file — never from shared mutable RNG
state — so the same plan produces the same faults regardless of call
order, retries, or checkpoint/resume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.samples import CounterTrace, ValueKind
from repro.core.seeding import site_rng
from repro.errors import FaultInjectionError
from repro.faults.plan import FaultPlan
from repro.telemetry.metrics import get_registry

#: Meta key carrying the wrap width of a raw (possibly wrapped) counter.
COUNTER_BITS_META = "counter_bits"


@dataclass(slots=True)
class FaultStats:
    """Tally of everything an injector actually did."""

    window_faults: int = 0
    transient_faults: int = 0
    persistent_faults: int = 0
    reads_failed: int = 0
    samples_dropped: int = 0
    traces_wrapped: int = 0
    latency_spikes: int = 0
    archives_truncated: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "window_faults": self.window_faults,
            "transient_faults": self.transient_faults,
            "persistent_faults": self.persistent_faults,
            "reads_failed": self.reads_failed,
            "samples_dropped": self.samples_dropped,
            "traces_wrapped": self.traces_wrapped,
            "latency_spikes": self.latency_spikes,
            "archives_truncated": self.archives_truncated,
        }


class FaultInjector:
    """Executes a fault plan with order-independent determinism."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()

    def _tally(self, kind: str, amount: int = 1) -> None:
        """Bump one :class:`FaultStats` field and its mirror counter
        ``faults.<kind>`` in the telemetry registry."""
        setattr(self.stats, kind, getattr(self.stats, kind) + amount)
        get_registry().counter(f"faults.{kind}", "fault injections by kind").inc(amount)

    # -- keyed randomness --------------------------------------------------------

    def rng_for(self, site: str) -> np.random.Generator:
        """Fresh generator for one injection site (stable across runs)."""
        return site_rng(self.plan.seed, site)

    # -- window-level faults -----------------------------------------------------

    def should_fail_window(self, site: str, attempt: int) -> bool:
        """Whether collection attempt ``attempt`` (0-based) of the window
        named by ``site`` fails.

        A faulty window is either *transient* (fails attempt 0 only) or
        *persistent* (fails every attempt), split by the plan's
        ``transient_fraction``.  The classification depends only on the
        site, so retries and resumed runs replay identical behaviour.
        """
        if attempt < 0:
            raise FaultInjectionError(f"attempt must be >= 0, got {attempt}")
        rng = self.rng_for(f"window|{site}")
        if rng.random() >= self.plan.window_failure_rate:
            return False
        transient = rng.random() < self.plan.transient_fraction
        if attempt == 0:
            self._tally("window_faults")
            if transient:
                self._tally("transient_faults")
            else:
                self._tally("persistent_faults")
        return True if not transient else attempt == 0

    # -- read-level faults -------------------------------------------------------

    def read_failure_mask(self, site: str, n_reads: int) -> np.ndarray:
        """Boolean mask of reads that fail (sample absent) at this site."""
        if n_reads < 0:
            raise FaultInjectionError(f"n_reads must be >= 0, got {n_reads}")
        if self.plan.read_failure_rate == 0.0 or n_reads == 0:
            return np.zeros(n_reads, dtype=bool)
        mask = self.rng_for(f"reads|{site}").random(n_reads) < self.plan.read_failure_rate
        self._tally("reads_failed", int(mask.sum()))
        return mask

    def latency_spikes_ns(self, site: str, n_reads: int) -> np.ndarray:
        """Extra per-read latency from injected CPU contention."""
        if n_reads < 0:
            raise FaultInjectionError(f"n_reads must be >= 0, got {n_reads}")
        extra = np.zeros(n_reads, dtype=np.int64)
        if self.plan.latency_spike_rate == 0.0 or n_reads == 0:
            return extra
        hit = self.rng_for(f"spikes|{site}").random(n_reads) < self.plan.latency_spike_rate
        extra[hit] = self.plan.latency_spike_ns
        self._tally("latency_spikes", int(hit.sum()))
        return extra

    # -- trace-level faults ------------------------------------------------------

    def wrap_trace(self, trace: CounterTrace) -> CounterTrace:
        """Wrap a cumulative counter to ``wrap_bits`` (e.g. a 32-bit ASIC
        register), recording the width in the trace meta so analysis can
        correct the deltas exactly."""
        bits = self.plan.wrap_bits
        if bits is None or trace.kind is not ValueKind.CUMULATIVE:
            return trace
        modulus = np.int64(1) << bits if bits < 63 else None
        if modulus is None:
            return trace
        values = np.asarray(trace.values)
        wrapped = np.mod(values, modulus)
        meta = dict(trace.meta)
        meta[COUNTER_BITS_META] = bits
        self._tally("traces_wrapped")
        return CounterTrace(
            timestamps_ns=trace.timestamps_ns,
            values=wrapped,
            kind=trace.kind,
            name=trace.name,
            rate_bps=trace.rate_bps,
            meta=meta,
        )

    def drop_samples(self, trace: CounterTrace, site: str) -> CounterTrace:
        """Lose interior samples at ``sample_loss_rate``.

        The first and last samples always survive so the window span is
        preserved; what remains keeps true timestamps and cumulative
        values — exactly the paper's "timestamps survive misses"
        degradation, just injected after the fact.
        """
        rate = self.plan.sample_loss_rate
        if rate == 0.0 or len(trace) <= 2:
            return trace
        keep = self.rng_for(f"loss|{site}").random(len(trace)) >= rate
        keep[0] = True
        keep[-1] = True
        dropped = int((~keep).sum())
        if dropped == 0:
            return trace
        self._tally("samples_dropped", dropped)
        meta = dict(trace.meta)
        meta["samples_dropped"] = meta.get("samples_dropped", 0) + dropped
        return CounterTrace(
            timestamps_ns=trace.timestamps_ns[keep],
            values=np.asarray(trace.values)[keep],
            kind=trace.kind,
            name=trace.name,
            rate_bps=trace.rate_bps,
            meta=meta,
        )

    def degrade_trace(self, trace: CounterTrace, site: str) -> CounterTrace:
        """Apply all trace-level faults (loss then wraparound)."""
        return self.wrap_trace(self.drop_samples(trace, site))

    # -- storage faults ----------------------------------------------------------

    def maybe_truncate_archive(self, path, site: str) -> bool:
        """Truncate a written archive with probability ``truncate_rate``.

        Returns True when the file was damaged.  Used to prove the
        traceio integrity checks catch storage corruption instead of
        silently parsing a shorter trace.
        """
        rng = self.rng_for(f"truncate|{site}")
        if rng.random() >= self.plan.truncate_rate:
            return False
        data = path.read_bytes()
        if len(data) < 2:
            return False
        cut = int(rng.integers(1, len(data)))
        path.write_bytes(data[:cut])
        self._tally("archives_truncated")
        return True


class FaultyTimingModel:
    """ASIC timing model decorated with injected contention spikes.

    Duck-types :class:`repro.core.asic.AsicTimingModel` so it can be
    dropped into a :class:`~repro.core.sampler.SamplerConfig`.
    """

    def __init__(self, base, injector: FaultInjector, site: str = "sampler") -> None:
        self.base = base
        self.injector = injector
        self.site = site
        self._drawn = 0

    def group_read_latency_ns(self, specs, rng, dedicated_core=True) -> int:
        latency = self.base.group_read_latency_ns(specs, rng, dedicated_core=dedicated_core)
        extra = self.injector.latency_spikes_ns(f"{self.site}|{self._drawn}", 1)
        self._drawn += 1
        return int(latency + extra[0])

    def group_read_latencies_ns(self, specs, n, rng, dedicated_core=True) -> np.ndarray:
        latencies = self.base.group_read_latencies_ns(
            specs, n, rng, dedicated_core=dedicated_core
        )
        extra = self.injector.latency_spikes_ns(f"{self.site}|{self._drawn}", n)
        self._drawn += n
        return latencies + extra

    def expected_cpu_utilization(self, specs, interval_ns) -> float:
        return self.base.expected_cpu_utilization(specs, interval_ns)
