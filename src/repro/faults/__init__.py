"""Deterministic, seedable fault injection for chaos runs.

The paper's measurement framework is explicitly best-effort: the polling
loop misses instants under load (Table 1) and the analysis is built so
"timestamps survive misses".  This package makes that degradation — plus
the failure modes production telemetry actually sees (collection RPC
failures, 32-bit counter wraparound, switch-CPU contention, collector
backpressure, storage corruption) — injectable on demand, driven by an
explicit numpy RNG so every chaos run replays exactly.

Usage sketch::

    plan = FaultPlan(seed=7, window_failure_rate=0.05, wrap_bits=32)
    injector = FaultInjector(plan)
    backend = FaultyWindowSource(resolve_backend("synth", seed=0), injector)
    result = MeasurementCampaign(plan=campaign_plan, backend=backend,
                                 retry=RetryPolicy()).run()

``FaultyWindowSource`` wraps *any* measurement backend — synth, netsim,
or another wrapper — because it only relies on the ``sample_window``
protocol the campaign itself consumes.
"""

from repro.faults.injector import (
    COUNTER_BITS_META,
    FaultInjector,
    FaultStats,
    FaultyTimingModel,
)
from repro.faults.plan import DROP_POLICIES, FaultPlan
from repro.faults.sources import FaultyWindowSource, window_site

__all__ = [
    "COUNTER_BITS_META",
    "DROP_POLICIES",
    "FaultInjector",
    "FaultStats",
    "FaultyTimingModel",
    "FaultyWindowSource",
    "FaultPlan",
    "window_site",
]
