"""The measurement-backend protocol.

The paper's framework is one measurement discipline — poll counters per
campaign window (Sec 4.2) — applied to whatever data plane happens to be
underneath.  This module names that boundary: a
:class:`MeasurementBackend` opens a ``(rack_type, rack_id, window)``
triple and yields counter traces, packet-size histograms, whole-rack
utilization windows, and peak-buffer watermarks *through the existing
sampler semantics* (cumulative counters, true timestamps, misses allowed).

Everything above the protocol — campaigns, sharded parallel execution,
fault injection, checkpoint/resume, the gap-aware analysis — is
backend-agnostic.  Everything below it is one of two data planes today
(:class:`~repro.backends.synth.SynthBackend`,
:class:`~repro.backends.netsim.NetsimBackend`) and possibly more later
(pcap replay, an ns-3 bridge) without touching campaign or analysis code.

Seeding contract
----------------
A conforming backend derives **all** randomness from
``(backend seed, window identity)`` via :mod:`repro.core.seeding` — never
from call order, worker count, or shard assignment.  That single rule is
what makes serial, ``--workers N``, and checkpoint-resumed campaign runs
byte-identical for every backend.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

from repro.core.campaign import CampaignPlan, CampaignWindow
from repro.core.samples import CounterTrace
from repro.core.seeding import site_rng
from repro.errors import ConfigError
from repro.telemetry.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.synth.rackmodel import RackWindow

#: Default ToR port layout shared by plan builders and backends: the
#: paper's racks expose 16 server downlinks and 4 fabric uplinks.
DEFAULT_N_DOWNLINKS = 16
DEFAULT_N_UPLINKS = 4


@contextmanager
def timed_window(backend_name: str) -> Iterator[None]:
    """Observe one window collection's wall latency into the backend's
    ``backend.<name>.sample_window_ns`` histogram.

    Wall-clock reads live here — on the backend boundary, outside the
    ``netsim``/``synth`` determinism-lint scope — and the measured time
    never feeds the data path, so traces stay byte-identical with
    telemetry on or off.
    """
    start_ns = time.monotonic_ns()
    try:
        yield
    finally:
        get_registry().histogram(
            f"backend.{backend_name}.sample_window_ns",
            "wall-clock latency of one window collection",
        ).observe(time.monotonic_ns() - start_ns)


def default_port_names(
    n_downlinks: int = DEFAULT_N_DOWNLINKS, n_uplinks: int = DEFAULT_N_UPLINKS
) -> list[str]:
    """Canonical port naming: ``down0..downN-1`` then ``up0..upM-1``."""
    return [f"down{i}" for i in range(n_downlinks)] + [
        f"up{i}" for i in range(n_uplinks)
    ]


@runtime_checkable
class MeasurementBackend(Protocol):
    """A pluggable data plane under the campaign pipeline.

    The byte-counter method :meth:`sample_window` makes every backend a
    valid :class:`~repro.core.campaign.WindowSource`, so backends plug
    directly into :class:`~repro.core.campaign.MeasurementCampaign`,
    :class:`~repro.core.parallel.ParallelCampaign`, and
    :class:`~repro.faults.FaultyWindowSource` unchanged.  The remaining
    methods cover the paper's other two counter families (packet-size
    histograms, the shared-buffer watermark) plus the whole-rack
    utilization view the cross-port figures need.
    """

    #: Short identifier used by the CLI and experiment notes.
    name: str

    def sample_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        """Single-port cumulative byte trace(s) for one campaign window."""
        ...  # pragma: no cover - protocol

    def sample_histogram_window(
        self, window: CampaignWindow
    ) -> dict[str, CounterTrace]:
        """Byte trace plus packet-size-histogram trace for one window.

        Returns ``{"<port>.tx_bytes": ..., "<port>.tx_size_hist": ...}``
        sampled on a shared timestamp grid, as a multi-counter poll group
        would record them (Sec 4.1).
        """
        ...  # pragma: no cover - protocol

    def sample_rack_window(
        self, window: CampaignWindow, activity: float = 1.0
    ) -> "RackWindow":
        """Whole-rack per-tick utilization for one campaign window.

        ``activity`` scales workload intensity (diurnal variation);
        backends that model load mechanistically scale their offered
        load, the synthesiser scales its calibrated profile.
        """
        ...  # pragma: no cover - protocol

    def sample_buffer_window(self, window: CampaignWindow) -> CounterTrace:
        """Peak shared-buffer watermark gauge trace for one window,
        polled at the paper's slower buffer-counter interval."""
        ...  # pragma: no cover - protocol


def single_port_plan(
    app: str,
    n_windows: int,
    window_duration_ns: int,
    seed: int = 0,
    port: str | None = None,
    n_downlinks: int = DEFAULT_N_DOWNLINKS,
    n_uplinks: int = DEFAULT_N_UPLINKS,
) -> CampaignPlan:
    """The per-application single-counter campaign every fig/tab
    experiment runs: ``n_windows`` windows, one measured port each.

    ``port=None`` mirrors the paper's campaign, which measured one
    *random* port per rack (~80 % of windows land on downlinks).  Port
    choice is keyed per ``(seed, app, window index)`` through
    :func:`repro.core.seeding.site_rng`, so it is independent of
    execution order and worker count — the same crc32 site scheme the
    backends use for trace content.
    """
    if n_windows <= 0:
        raise ConfigError("need at least one window")
    if window_duration_ns <= 0:
        raise ConfigError("window duration must be positive")
    port_names = default_port_names(n_downlinks, n_uplinks)
    windows = []
    for index in range(n_windows):
        if port is None:
            rng = site_rng(seed, f"{app}|w{index}|port")
            port_name = port_names[int(rng.integers(len(port_names)))]
        else:
            port_name = port
        windows.append(
            CampaignWindow(
                rack_id=f"{app}-w{index}",
                rack_type=app,
                port_name=port_name,
                hour=index,
                start_ns=0,
                duration_ns=window_duration_ns,
            )
        )
    return CampaignPlan(windows=tuple(windows))


def rack_window_spec(
    app: str,
    duration_ns: int,
    experiment: str = "rack",
    index: int = 0,
    port: str = "down0",
) -> CampaignWindow:
    """One ad-hoc campaign window for whole-rack / histogram sampling.

    The ``(experiment, index)`` pair lands in the window's identity
    (``rack_id`` / ``hour``), so different experiments and different
    spans of the same experiment draw independent site-keyed streams.
    """
    if duration_ns <= 0:
        raise ConfigError("window duration must be positive")
    return CampaignWindow(
        rack_id=f"{app}-{experiment}",
        rack_type=app,
        port_name=port,
        hour=index,
        start_ns=0,
        duration_ns=duration_ns,
    )
