"""The analytical data plane behind the backend protocol.

Wraps :mod:`repro.synth` — the calibrated on/off synthesiser, the
whole-rack synthesizer, and the buffer response model — as a
:class:`~repro.backends.base.MeasurementBackend`.  Byte traces are
produced through :class:`repro.synth.dataset.SyntheticCampaignSource`
unchanged, so a campaign over this backend is byte-identical to the
pre-backend direct path (the parity suite pins this with golden CRCs).

All randomness is derived from ``(seed, window identity)`` via
:mod:`repro.core.seeding`, never from call order: byte/histogram/rack
streams for one window come from
``window_rng(seed, window.rack_id, window.hour)``, so serial, sharded,
and resumed campaigns agree byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.backends.base import DEFAULT_N_DOWNLINKS, DEFAULT_N_UPLINKS, timed_window
from repro.core.campaign import CampaignWindow
from repro.core.samples import CounterTrace, ValueKind
from repro.core.seeding import window_rng
from repro.errors import ConfigError
from repro.synth.buffermodel import BufferResponseModel
from repro.synth.calibration import APP_PROFILES, BASE_TICK_NS, AppProfile
from repro.synth.dataset import SyntheticCampaignSource
from repro.synth.onoff import OnOffGenerator
from repro.synth.rackmodel import (
    RackSynthesizer,
    RackWindow,
    synthesize_size_histogram,
    utilization_to_byte_trace,
)
from repro.units import gbps, ms

#: Fig 10's buffer-watermark cadence: one peak reading per 50 ms window.
BUFFER_WINDOW_NS = ms(50)
#: Hotness for buffer sampling is judged at 300 µs granularity (Fig 10).
HOT_PERIOD_TICKS = 12


def _profile(app: str) -> AppProfile:
    try:
        return APP_PROFILES[app]
    except KeyError:
        raise ConfigError(f"unknown rack type {app!r}") from None


@dataclass(frozen=True, slots=True)
class SynthBackend:
    """Measurement backend over the calibrated synthesiser."""

    name: ClassVar[str] = "synth"

    seed: int = 0
    tick_ns: int = BASE_TICK_NS
    rate_bps: float = gbps(10)
    n_downlinks: int = DEFAULT_N_DOWNLINKS
    n_uplinks: int = DEFAULT_N_UPLINKS

    def _n_ticks(self, window: CampaignWindow) -> int:
        n_ticks = int(window.duration_ns // self.tick_ns)
        if n_ticks <= 0:
            raise ConfigError("window shorter than one synthesiser tick")
        return n_ticks

    def _rng(self, window: CampaignWindow) -> np.random.Generator:
        return window_rng(self.seed, window.rack_id, window.hour)

    # -- protocol ------------------------------------------------------------

    def sample_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        with timed_window(self.name):
            source = SyntheticCampaignSource(
                seed=self.seed, tick_ns=self.tick_ns, rate_bps=self.rate_bps
            )
            return source.sample_window(window)

    def sample_histogram_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        profile = _profile(window.rack_type)
        port_profile = (
            profile.uplink if window.port_name.startswith("up") else profile.downlink
        )
        rng = self._rng(window)
        series = OnOffGenerator(port_profile).generate(self._n_ticks(window), rng)
        byte_trace = utilization_to_byte_trace(
            series.utilization,
            self.rate_bps,
            self.tick_ns,
            name=f"{window.port_name}.tx_bytes",
            start_ns=window.start_ns,
        )
        hist_trace = synthesize_size_histogram(
            series.utilization,
            series.hot,
            profile,
            self.rate_bps,
            self.tick_ns,
            rng,
            name=f"{window.port_name}.tx_size_hist",
            start_ns=window.start_ns,
        )
        return {byte_trace.name: byte_trace, hist_trace.name: hist_trace}

    def sample_rack_window(
        self, window: CampaignWindow, activity: float = 1.0
    ) -> RackWindow:
        synthesizer = RackSynthesizer(
            window.rack_type,
            n_downlinks=self.n_downlinks,
            n_uplinks=self.n_uplinks,
            downlink_rate_bps=self.rate_bps,
            uplink_rate_bps=self.rate_bps,
            tick_ns=self.tick_ns,
        )
        return synthesizer.synthesize(
            self._n_ticks(window), self._rng(window), activity=activity
        )

    def sample_buffer_window(self, window: CampaignWindow) -> CounterTrace:
        """Peak-watermark gauge trace: one normalised reading per 50 ms.

        Synthesizes the rack, counts simultaneously hot ports per 50 ms
        sub-window at 300 µs hotness granularity, and maps counts to peak
        occupancy through the app's calibrated buffer response.  Values
        are normalised occupancy scaled to 2^20 (the model works in
        [0, 1]; the integer scale keeps gauge traces integer-valued like
        the hardware watermark).
        """
        rng = self._rng(window)
        rack = self.sample_rack_window(window)
        util = rack.all_egress_util()
        period = HOT_PERIOD_TICKS
        n_periods = util.shape[0] // period
        if n_periods == 0:
            raise ConfigError("window shorter than one 300us hotness period")
        hot = (
            util[: n_periods * period]
            .reshape(n_periods, period, util.shape[1])
            .mean(axis=1)
            > 0.5
        )
        periods_per_window = max(1, int(BUFFER_WINDOW_NS // (self.tick_ns * period)))
        n_windows = max(1, n_periods // periods_per_window)
        counts = np.array(
            [
                hot[i * periods_per_window : (i + 1) * periods_per_window]
                .any(axis=0)
                .sum()
                for i in range(n_windows)
            ]
        )
        model = BufferResponseModel.for_app(_profile(window.rack_type), n_ports=util.shape[1])
        peaks = model.sample(counts, rng)
        scale = 1 << 20
        timestamps = window.start_ns + (1 + np.arange(n_windows, dtype=np.int64)) * (
            self.tick_ns * period * periods_per_window
        )
        return CounterTrace(
            timestamps_ns=timestamps,
            values=np.round(peaks * scale).astype(np.int64),
            kind=ValueKind.GAUGE,
            name="shared_buffer.peak",
            meta={"normalisation": scale},
        )
