"""The packet-level data plane behind the backend protocol.

Wraps :mod:`repro.netsim` (event engine + ToR switch + application
workloads) as a :class:`~repro.backends.base.MeasurementBackend`: each
campaign window builds a fresh rack, installs the window's application
workload, warms the transports up, and then collects counters through
the *real* :class:`~repro.core.sampler.HighResSampler` polling loop —
misses, true timestamps, and all.

Scale
-----
Packet-level simulation still cannot run the paper's full 3.5 G-sample
campaign, so netsim campaigns run at a documented reduced scale
(:class:`NetsimScale`): a capped per-window duration and a short
warm-up.  After the event-engine performance pass (DESIGN.md §8,
~2.5x events/sec) the default rack is the paper's own 16-down / 4-up
ToR with a 40 ms window cap — roughly 100 ms of simulated rack traffic
per wall-clock second on a commodity core.  The *shape* statistics the
experiments check (burst-duration CDFs, hot fractions, directionality)
are preserved at this scale — that cross-validation is the ext-netsim
experiment.

Determinism
-----------
Every stochastic input — the event engine, the workload arrival
processes, and the sampler's read-latency draws — is seeded from
``(backend seed, window identity)`` via
:func:`repro.core.seeding.stable_site_key`, so any worker of any shard
rebuilds the identical simulation for the same window.  The backend
itself is an immutable dataclass of plain values and pickles cleanly
into ``ProcessPoolExecutor`` workers.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.backends.base import timed_window
from repro.core.campaign import CampaignWindow
from repro.core.counters import bind_peak_buffer, bind_tx_bytes, bind_tx_size_hist
from repro.core.sampler import HighResSampler, SamplerConfig
from repro.core.samples import CounterTrace
from repro.core.seeding import stable_site_key
from repro.errors import ConfigError
from repro.netsim import (
    RackConfig,
    Simulator,
    SwitchCounterSurface,
    TorSwitchConfig,
    build_rack,
)
from repro.synth.calibration import BASE_TICK_NS
from repro.synth.rackmodel import RackWindow
from repro.telemetry.metrics import get_registry
from repro.units import NS_PER_S, ms, us
from repro.workloads import (
    CacheConfig,
    CacheWorkload,
    HadoopConfig,
    HadoopWorkload,
    WebConfig,
    WebWorkload,
)
from repro.workloads.distributions import ParetoSizes

#: Per-application workload recipe at backend scale.  Rates are tuned for
#: the reduced rack (they match ext-netsim's cross-validation settings).
_WORKLOADS = {
    "web": (WebWorkload, WebConfig(request_rate_per_s=60, fanout=12)),
    "cache": (CacheWorkload, CacheConfig(batch_rate_per_s=350)),
    "hadoop": (
        HadoopWorkload,
        HadoopConfig(
            transfer_rate_per_s=20,
            transfer_size=ParetoSizes(min_bytes=300_000, alpha=2.0, max_bytes=2_000_000),
        ),
    ),
}

#: Which config field scales with diurnal activity, per application.
_RATE_FIELD = {
    "web": "request_rate_per_s",
    "cache": "batch_rate_per_s",
    "hadoop": "transfer_rate_per_s",
}


def workload_for(app: str, activity: float = 1.0):
    """(workload class, config) for ``app``, with its offered-load rate
    scaled by ``activity`` (the netsim analogue of the synthesiser's
    diurnal activity knob)."""
    try:
        workload_class, config = _WORKLOADS[app]
    except KeyError:
        raise ConfigError(
            f"unknown rack type {app!r}; netsim backend supports {sorted(_WORKLOADS)}"
        ) from None
    if activity <= 0:
        raise ConfigError("activity must be positive")
    if activity != 1.0:
        rate_field = _RATE_FIELD[app]
        config = dataclasses.replace(
            config, **{rate_field: getattr(config, rate_field) * activity}
        )
    return workload_class, config


@dataclass(frozen=True, slots=True)
class NetsimScale:
    """The documented reduced scale for packet-level campaigns.

    ``max_window_ns`` caps how much of a campaign window is actually
    simulated — a 2 s synth window maps to 40 ms of packet simulation.
    The default rack is now the paper's full 16-down / 4-up ToR (so
    ``map_port`` is the identity for standard plans): the event-engine
    performance pass (DESIGN.md §8) bought back enough headroom that the
    paper-shaped rack with a doubled window cap still simulates faster
    than the old 8-downlink / 20 ms default did.  ``smoke()`` shrinks
    far below this for CI smoke jobs.
    """

    n_downlinks: int = 16
    n_uplinks: int = 4
    n_remote_hosts: int = 24
    warmup_ns: int = ms(10)
    max_window_ns: int = ms(40)
    interval_ns: int = us(25)
    buffer_interval_ns: int = us(50)

    def __post_init__(self) -> None:
        if self.n_downlinks < 1 or self.n_uplinks < 1 or self.n_remote_hosts < 1:
            raise ConfigError("netsim scale needs at least one of each port/host")
        if self.warmup_ns < 0:
            raise ConfigError("warmup cannot be negative")
        if self.max_window_ns < self.interval_ns:
            raise ConfigError("max window must cover at least one sampling interval")

    @classmethod
    def smoke(cls) -> "NetsimScale":
        """CI-sized scale: one window simulates in well under a second."""
        return cls(
            n_downlinks=4,
            n_uplinks=2,
            n_remote_hosts=8,
            warmup_ns=ms(3),
            max_window_ns=ms(6),
        )


@dataclass(frozen=True, slots=True)
class NetsimBackend:
    """Measurement backend over the packet-level simulator."""

    name: ClassVar[str] = "netsim"

    seed: int = 0
    scale: NetsimScale = dataclasses.field(default_factory=NetsimScale)
    tick_ns: int = BASE_TICK_NS

    # -- window setup ----------------------------------------------------------

    def _window_seed(self, window: CampaignWindow, role: str) -> int:
        return stable_site_key(self.seed, window.rack_id, window.hour, role)

    def _duration_ns(self, window: CampaignWindow) -> int:
        return min(window.duration_ns, self.scale.max_window_ns)

    def map_port(self, port_name: str) -> str:
        """Fold a plan's port name onto the simulated rack.

        Plans are written against the paper's 16-down / 4-up rack, which
        the default scale now matches (identity mapping).  Reduced
        scales (e.g. ``smoke()``) keep the port *class* (downlink vs
        uplink) and wrap the index, so ``down13`` measures ``down5`` on
        an 8-downlink rack.
        """
        if port_name.startswith("down"):
            return f"down{int(port_name[4:]) % self.scale.n_downlinks}"
        if port_name.startswith("up"):
            return f"up{int(port_name[2:]) % self.scale.n_uplinks}"
        raise ConfigError(f"unmappable port name {port_name!r}")

    def _build(self, window: CampaignWindow, activity: float = 1.0):
        """Fresh warmed-up simulation for one window: (sim, surface)."""
        sim = Simulator(seed=self._window_seed(window, "engine"))
        rack = build_rack(
            sim,
            RackConfig(
                name=window.rack_type,
                switch=TorSwitchConfig(
                    n_downlinks=self.scale.n_downlinks,
                    n_uplinks=self.scale.n_uplinks,
                ),
                n_remote_hosts=self.scale.n_remote_hosts,
            ),
        )
        workload_class, config = workload_for(window.rack_type, activity)
        workload_class(rack, config, rng=self._window_seed(window, "workload")).install()
        if self.scale.warmup_ns:
            sim.run_for(self.scale.warmup_ns)
        return sim, SwitchCounterSurface(rack.tor)

    @staticmethod
    def _publish_engine_stats(sim: Simulator, elapsed_ns: int) -> None:
        """Mirror one finished window's engine tallies into telemetry.

        Reads existing engine counters *after* the window completes —
        nothing here runs in the per-event hot loop, and nothing feeds
        back into simulation state.
        """
        registry = get_registry()
        registry.counter(
            "netsim.events_processed", "simulation events run across windows"
        ).inc(sim.events_processed)
        registry.gauge(
            "netsim.peak_heap_size", "largest event-heap footprint seen"
        ).set_max(sim.queue.peak_heap_size)
        if elapsed_ns > 0:
            registry.gauge(
                "netsim.events_per_sec", "engine throughput high-water mark"
            ).set_max(sim.events_processed * 1e9 / elapsed_ns)

    def _sample(
        self, window: CampaignWindow, make_bindings
    ) -> dict[str, CounterTrace]:
        """Run the polling loop over ``make_bindings(surface, port)``,
        renaming traces from the reduced rack's port back to the plan's."""
        start_wall = time.monotonic_ns()
        sim, surface = self._build(window)
        measured = self.map_port(window.port_name)
        bindings = make_bindings(surface, measured)
        sampler = HighResSampler(
            SamplerConfig(interval_ns=self.scale.interval_ns),
            bindings,
            rng=self._window_seed(window, "sampler"),
        )
        report = sampler.run_in_sim(sim, self._duration_ns(window))
        self._publish_engine_stats(sim, time.monotonic_ns() - start_wall)
        traces: dict[str, CounterTrace] = {}
        for name, trace in report.traces.items():
            if name.startswith(f"{measured}."):
                trace.name = f"{window.port_name}.{name[len(measured) + 1:]}"
            trace.meta["backend"] = self.name
            trace.meta["measured_port"] = measured
            traces[trace.name] = trace
        return traces

    # -- protocol ------------------------------------------------------------

    def sample_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        with timed_window(self.name):
            return self._sample(
                window, lambda surface, port: [bind_tx_bytes(surface, port)]
            )

    def sample_histogram_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        with timed_window(self.name):
            return self._sample(
                window,
                lambda surface, port: [
                    bind_tx_bytes(surface, port),
                    bind_tx_size_hist(surface, port),
                ],
            )

    def sample_rack_window(
        self, window: CampaignWindow, activity: float = 1.0
    ) -> RackWindow:
        """Whole-rack utilization, measured by stepping the simulation one
        synthesiser tick at a time and differencing every port's byte
        counters — the netsim analogue of the rack synthesiser's output."""
        start_wall = time.monotonic_ns()
        sim, surface = self._build(window, activity)
        n_ticks = self._duration_ns(window) // self.tick_ns
        if n_ticks <= 0:
            raise ConfigError("window shorter than one tick at netsim scale")
        down_ports = [f"down{i}" for i in range(self.scale.n_downlinks)]
        up_ports = [f"up{i}" for i in range(self.scale.n_uplinks)]
        down_rate = surface.port_rate_bps(down_ports[0])
        up_rate = surface.port_rate_bps(up_ports[0])
        down_capacity = down_rate * self.tick_ns / NS_PER_S / 8.0
        up_capacity = up_rate * self.tick_ns / NS_PER_S / 8.0

        def snapshot() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            return (
                np.array([surface.read_tx_bytes(p) for p in down_ports], dtype=np.int64),
                np.array([surface.read_tx_bytes(p) for p in up_ports], dtype=np.int64),
                np.array([surface.read_rx_bytes(p) for p in up_ports], dtype=np.int64),
            )

        down_util = np.empty((n_ticks, len(down_ports)))
        up_egress_util = np.empty((n_ticks, len(up_ports)))
        up_ingress_util = np.empty((n_ticks, len(up_ports)))
        prev_down, prev_up_tx, prev_up_rx = snapshot()
        for tick in range(n_ticks):
            sim.run_for(self.tick_ns)
            down, up_tx, up_rx = snapshot()
            down_util[tick] = (down - prev_down) / down_capacity
            up_egress_util[tick] = (up_tx - prev_up_tx) / up_capacity
            up_ingress_util[tick] = (up_rx - prev_up_rx) / up_capacity
            prev_down, prev_up_tx, prev_up_rx = down, up_tx, up_rx
        self._publish_engine_stats(sim, time.monotonic_ns() - start_wall)
        return RackWindow(
            app=window.rack_type,
            tick_ns=self.tick_ns,
            downlink_rate_bps=down_rate,
            uplink_rate_bps=up_rate,
            downlink_util=np.clip(down_util, 0.0, 1.0),
            uplink_egress_util=np.clip(up_egress_util, 0.0, 1.0),
            uplink_ingress_util=np.clip(up_ingress_util, 0.0, 1.0),
        )

    def sample_buffer_window(self, window: CampaignWindow) -> CounterTrace:
        start_wall = time.monotonic_ns()
        sim, surface = self._build(window)
        sampler = HighResSampler(
            SamplerConfig(interval_ns=self.scale.buffer_interval_ns),
            [bind_peak_buffer(surface)],
            rng=self._window_seed(window, "sampler"),
        )
        report = sampler.run_in_sim(sim, self._duration_ns(window))
        self._publish_engine_stats(sim, time.monotonic_ns() - start_wall)
        trace = report.traces["shared_buffer.peak"]
        trace.meta["backend"] = self.name
        trace.meta["capacity_bytes"] = surface.buffer_capacity_bytes
        return trace
