"""Pluggable measurement backends.

One campaign pipeline, interchangeable data planes: the
:class:`~repro.backends.base.MeasurementBackend` protocol is the seam
between everything that *measures* (campaigns, the parallel runner,
fault injection, analysis) and whatever *produces the traffic* — the
calibrated synthesiser (:class:`SynthBackend`) or the packet-level
simulator (:class:`NetsimBackend`).  ``resolve_backend`` is the single
entry point the CLI and experiments use to turn ``--backend synth`` /
``--backend netsim`` into a seeded instance.
"""

from __future__ import annotations

from repro.backends.base import (
    DEFAULT_N_DOWNLINKS,
    DEFAULT_N_UPLINKS,
    MeasurementBackend,
    default_port_names,
    rack_window_spec,
    single_port_plan,
)
from repro.backends.netsim import NetsimBackend, NetsimScale
from repro.backends.synth import SynthBackend
from repro.errors import ConfigError
from repro.synth.calibration import BASE_TICK_NS

#: Registered backend factories, keyed by CLI name.
BACKENDS = {
    "synth": SynthBackend,
    "netsim": NetsimBackend,
}


def resolve_backend(
    backend: MeasurementBackend | str | None,
    seed: int = 0,
    tick_ns: int = BASE_TICK_NS,
) -> MeasurementBackend:
    """Turn a backend name (or ``None``, or an instance) into a backend.

    ``None`` resolves to the synth backend — the historical default every
    experiment ran on.  Instances pass through untouched (their own seed
    wins), so callers can hand a pre-scaled ``NetsimBackend`` to any
    experiment.
    """
    if backend is None:
        return SynthBackend(seed=seed, tick_ns=tick_ns)
    if isinstance(backend, str):
        try:
            factory = BACKENDS[backend]
        except KeyError:
            raise ConfigError(
                f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
            ) from None
        if factory is SynthBackend:
            return SynthBackend(seed=seed, tick_ns=tick_ns)
        return factory(seed=seed)
    return backend


__all__ = [
    "BACKENDS",
    "DEFAULT_N_DOWNLINKS",
    "DEFAULT_N_UPLINKS",
    "MeasurementBackend",
    "NetsimBackend",
    "NetsimScale",
    "SynthBackend",
    "default_port_names",
    "rack_window_spec",
    "resolve_backend",
    "single_port_plan",
]
