"""Observability: the package-wide logging setup.

Results belong on stdout; everything else — progress, timing, file
writes, degraded-window warnings — goes through a stdlib logger rooted at
``repro`` so library users can route or silence it with ordinary
``logging`` configuration.  The CLI calls :func:`setup_logging` once per
invocation with the verbosity derived from ``--verbose`` / ``-q``.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """The package logger, or a child of it (``get_logger("cli")``)."""
    if name is None:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def setup_logging(verbosity: int = 0, stream: IO[str] | None = None) -> logging.Logger:
    """Configure the ``repro`` logger for a CLI invocation.

    ``verbosity`` maps ``-q`` → -1 (warnings only), default → 0 (info),
    ``-v`` → 1+ (debug).  Handlers are replaced, not appended, so
    repeated calls (tests, embedding) never duplicate output, and the
    stream is resolved at call time so pytest's capture sees it.
    """
    logger = logging.getLogger(LOGGER_NAME)
    if verbosity < 0:
        level = logging.WARNING
    elif verbosity == 0:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logger.setLevel(level)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    return logger
