"""Per-application packet-size mixtures.

Sec 5.3: Hadoop sees mostly full-MTU packets; Web and Cache see a wider
range.  The mixtures below shape the data-packet sizes each workload
hands its transport; ACKs are minimum-size and emerge from the transport
itself, so the ASIC histograms show the full production-like mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.units import MIN_PACKET, MTU


@dataclass(frozen=True)
class PacketMix:
    """A discrete mixture over data-packet sizes."""

    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ConfigError("sizes/weights length mismatch")
        if any(not MIN_PACKET <= s <= MTU for s in self.sizes):
            raise ConfigError("packet size outside frame limits")
        total = sum(self.weights)
        if total <= 0:
            raise ConfigError("weights must sum > 0")


#: Data-packet mixtures per application, loosely following the
#: distributions reported for this data center in Roy et al. (SIGCOMM'15)
#: and Fig 5 of the paper.
APP_PACKET_MIX: dict[str, PacketMix] = {
    "web": PacketMix(
        sizes=(90, 200, 400, 800, 1200, MTU),
        weights=(0.25, 0.20, 0.15, 0.12, 0.08, 0.20),
    ),
    "cache": PacketMix(
        sizes=(90, 200, 400, 800, MTU),
        weights=(0.30, 0.22, 0.15, 0.08, 0.25),
    ),
    "hadoop": PacketMix(
        sizes=(200, 1000, MTU),
        weights=(0.04, 0.04, 0.92),
    ),
}


class PacketSizeModel:
    """Samples data-packet sizes from an application mixture."""

    def __init__(self, mix: PacketMix) -> None:
        self.mix = mix
        total = sum(mix.weights)
        self._probs = np.asarray(mix.weights, dtype=np.float64) / total
        self._sizes = np.asarray(mix.sizes, dtype=np.int64)

    def data_packet_size(self, rng: np.random.Generator) -> int:
        """One data-packet size draw."""
        return int(rng.choice(self._sizes, p=self._probs))

    def mean_size(self) -> float:
        return float((self._sizes * self._probs).sum())
