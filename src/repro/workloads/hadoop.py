"""Hadoop rack workload.

Hadoop servers "are used for offline analysis and data mining" (Sec 4.2):
long shuffle flows of full-MTU packets, sustained high utilization, and
the heaviest shared-buffer pressure of the three rack types (Sec 6.4).
Transfers go to both rack-local peers and remote reducers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.netsim.topology import Rack
from repro.workloads.base import Workload
from repro.workloads.distributions import ParetoSizes, SizeDistribution
from repro.workloads.flows import OnOffArrivals
from repro.workloads.packetsize import PacketSizeModel, APP_PACKET_MIX


@dataclass(frozen=True, slots=True)
class HadoopConfig:
    """Knobs for the Hadoop workload.

    Each server alternates shuffle phases (ON: transfers fire back to
    back) with idle/compute phases (OFF, heavy-tailed).  ``local_fraction``
    of transfers target rack-local peers — those create the many-to-one
    downlink congestion the paper observes.
    """

    transfer_rate_per_s: float = 12.0
    mean_on_s: float = 0.4
    median_off_s: float = 0.8
    off_sigma: float = 1.2
    transfer_size: SizeDistribution = field(
        default_factory=lambda: ParetoSizes(min_bytes=2_000_000, alpha=1.6)
    )
    local_fraction: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 <= self.local_fraction <= 1.0:
            raise ConfigError("local_fraction must be in [0, 1]")
        if self.transfer_rate_per_s <= 0:
            raise ConfigError("transfer rate must be positive")


class HadoopWorkload(Workload):
    """Shuffle-phase bulk transfers in ON/OFF phases."""

    def __init__(
        self,
        rack: Rack,
        config: HadoopConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(rack, rng)
        self.config = config or HadoopConfig()
        self.packet_mix = PacketSizeModel(APP_PACKET_MIX["hadoop"])
        if len(rack.servers) < 2 and not rack.remote_hosts:
            raise ConfigError("hadoop workload needs peers to shuffle with")

    def _install(self, until_ns: int | None) -> None:
        for server in self.rack.servers:
            arrivals = OnOffArrivals(
                sim=self.rack.sim,
                on_rate_per_s=self.config.transfer_rate_per_s,
                mean_on_s=self.config.mean_on_s,
                median_off_s=self.config.median_off_s,
                off_sigma=self.config.off_sigma,
                fire=lambda srv=server: self._start_transfer(srv),
                rng=np.random.default_rng(self.rng.integers(0, 2**63 - 1)),
                until_ns=until_ns,
            )
            arrivals.start()

    def _start_transfer(self, server) -> None:
        """One shuffle transfer from ``server`` to a random peer."""
        self.stats.requests_issued += 1
        size = self.config.transfer_size.sample(self.rng)
        self.stats.bytes_requested += size
        go_local = (
            self.rng.random() < self.config.local_fraction
            and len(self.rack.servers) > 1
        )
        if go_local:
            peers = [s for s in self.rack.servers if s.name != server.name]
            dst = peers[int(self.rng.integers(len(peers)))]
        else:
            dst = self.rack.remote_hosts[
                int(self.rng.integers(len(self.rack.remote_hosts)))
            ]
        server.send_flow(
            dst.name,
            size,
            packet_size=self.packet_mix.data_packet_size(self.rng),
            on_complete=lambda _flow: self._count_done(),
        )
        # Remote reducers also pull map output from this rack's peers,
        # keeping ingress busy as well.
        if not go_local and self.rack.remote_hosts:
            remote = self.rack.remote_hosts[
                int(self.rng.integers(len(self.rack.remote_hosts)))
            ]
            pull_size = self.config.transfer_size.sample(self.rng)
            target = self.rack.servers[int(self.rng.integers(len(self.rack.servers)))]
            remote.send_flow(
                target.name,
                pull_size,
                packet_size=self.packet_mix.data_packet_size(self.rng),
            )

    def _count_done(self) -> None:
        self.stats.requests_completed += 1
