"""Web rack workload.

Web servers "receive web requests and assemble a dynamic web page using
data from many remote sources" (Sec 4.2).  Per user request, a web server
fans out small RPCs to many remote sources; the responses converge on the
server's downlink (high fan-in — Sec 6.3 attributes Web/Hadoop bursts to
many senders hitting one destination), and the assembled page leaves via
the uplinks.  Servers are stateless and user-driven, so their activity is
mutually uncorrelated (Sec 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.netsim.topology import Rack
from repro.workloads.base import Workload
from repro.workloads.distributions import LogNormalSizes, SizeDistribution
from repro.workloads.flows import PoissonArrivals
from repro.workloads.packetsize import PacketSizeModel, APP_PACKET_MIX


@dataclass(frozen=True, slots=True)
class WebConfig:
    """Knobs for the Web workload.

    ``request_rate_per_s`` is per web server.  ``fanout`` controls how
    many remote sources each page assembly touches; responses arrive
    near-simultaneously, which is what creates downlink µbursts.
    """

    request_rate_per_s: float = 120.0
    fanout: int = 24
    rpc_request_bytes: int = 1_000
    rpc_response: SizeDistribution = field(
        default_factory=lambda: LogNormalSizes(median_bytes=12_000, sigma=1.0)
    )
    page_response: SizeDistribution = field(
        default_factory=lambda: LogNormalSizes(median_bytes=60_000, sigma=0.8)
    )

    def __post_init__(self) -> None:
        if self.request_rate_per_s <= 0 or self.fanout <= 0:
            raise ConfigError("web workload needs positive rate and fanout")


class WebWorkload(Workload):
    """User-request-driven page assembly with remote fan-in."""

    def __init__(
        self,
        rack: Rack,
        config: WebConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(rack, rng)
        self.config = config or WebConfig()
        self.packet_mix = PacketSizeModel(APP_PACKET_MIX["web"])
        if not rack.remote_hosts:
            raise ConfigError("web workload needs remote hosts as data sources")

    def _install(self, until_ns: int | None) -> None:
        for server in self.rack.servers:
            arrivals = PoissonArrivals(
                sim=self.rack.sim,
                rate_per_s=self.config.request_rate_per_s,
                fire=lambda srv=server: self._handle_user_request(srv),
                rng=np.random.default_rng(self.rng.integers(0, 2**63 - 1)),
                until_ns=until_ns,
            )
            arrivals.start()

    def _handle_user_request(self, server) -> None:
        """One user request hits ``server``: fan out, gather, respond."""
        self.stats.requests_issued += 1
        remotes = self.rng.choice(
            len(self.rack.remote_hosts),
            size=min(self.config.fanout, len(self.rack.remote_hosts)),
            replace=False,
        )
        pending = {"count": len(remotes)}
        user = self.rack.remote_hosts[int(self.rng.integers(len(self.rack.remote_hosts)))]

        def on_rpc_done(_flow) -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                # All sources answered: ship the assembled page to the user.
                page = self.config.page_response.sample(self.rng)
                server.send_flow(
                    user.name, page, packet_size=self.packet_mix.data_packet_size(self.rng)
                )
                self.stats.responses_sent += 1
                self.stats.requests_completed += 1

        for index in remotes:
            remote = self.rack.remote_hosts[int(index)]
            response_size = self.config.rpc_response.sample(self.rng)
            self.stats.bytes_requested += response_size
            # Request is small; model it as the response being triggered
            # after a one-way delay (request serialization is negligible).
            remote.send_flow(
                server.name,
                response_size,
                packet_size=self.packet_mix.data_packet_size(self.rng),
                on_complete=on_rpc_done,
            )
