"""Seeded size distributions for flows and messages."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


class SizeDistribution(ABC):
    """Draws positive integer byte sizes."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """One draw."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.array([self.sample(rng) for _ in range(n)], dtype=np.int64)


@dataclass(frozen=True, slots=True)
class FixedSizes(SizeDistribution):
    """Degenerate distribution (control-message sizes)."""

    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("size must be positive")

    def sample(self, rng: np.random.Generator) -> int:
        return self.size_bytes


@dataclass(frozen=True, slots=True)
class LogNormalSizes(SizeDistribution):
    """Lognormal sizes clipped to a sane range.

    ``median_bytes`` is the distribution median; ``sigma`` the log-space
    standard deviation.  Typical RPC responses are well modelled this way.
    """

    median_bytes: int
    sigma: float
    min_bytes: int = 64
    max_bytes: int = 1 << 30

    def __post_init__(self) -> None:
        if self.median_bytes <= 0 or self.sigma < 0:
            raise ConfigError("bad lognormal parameters")
        if self.min_bytes > self.max_bytes:
            raise ConfigError("min_bytes exceeds max_bytes")

    def sample(self, rng: np.random.Generator) -> int:
        value = rng.lognormal(np.log(self.median_bytes), self.sigma)
        return int(np.clip(value, self.min_bytes, self.max_bytes))


@dataclass(frozen=True, slots=True)
class ParetoSizes(SizeDistribution):
    """Bounded Pareto: heavy-tailed flow sizes (Hadoop shuffle outputs)."""

    min_bytes: int
    alpha: float
    max_bytes: int = 1 << 30

    def __post_init__(self) -> None:
        if self.min_bytes <= 0 or self.alpha <= 0:
            raise ConfigError("bad Pareto parameters")
        if self.min_bytes > self.max_bytes:
            raise ConfigError("min_bytes exceeds max_bytes")

    def sample(self, rng: np.random.Generator) -> int:
        value = self.min_bytes * (1.0 + rng.pareto(self.alpha))
        return int(min(value, self.max_bytes))


@dataclass(frozen=True)
class EmpiricalSizes(SizeDistribution):
    """Draws from an explicit (sizes, weights) table."""

    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ConfigError("sizes/weights mismatch")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ConfigError("weights must be non-negative and sum > 0")

    def sample(self, rng: np.random.Generator) -> int:
        probs = np.asarray(self.weights) / sum(self.weights)
        return int(rng.choice(self.sizes, p=probs))
