"""Cache rack workload.

Cache servers "serve as an in-memory cache of data used by the web
servers", with leaders handling coherency and followers serving reads
(Sec 4.2, citing the memcache deployment).  Requests "are initiated in
groups from web servers", so subsets of cache servers see strongly
correlated load (Sec 6.2), and because responses are much larger than
requests the racks are uplink-bound under 1:4 oversubscription (Sec 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.netsim.topology import Rack
from repro.workloads.base import Workload
from repro.workloads.distributions import LogNormalSizes, SizeDistribution
from repro.workloads.flows import PoissonArrivals
from repro.workloads.packetsize import PacketSizeModel, APP_PACKET_MIX


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Knobs for the Cache workload.

    ``group_size`` cache servers are hit together by each scatter-gather
    batch (they hold shards of the same keyspace region); ``n_groups``
    fixed groups partition the rack.  Leaders (one per group) additionally
    exchange small coherency traffic.
    """

    batch_rate_per_s: float = 400.0
    group_size: int = 4
    request_bytes: int = 256
    response: SizeDistribution = field(
        default_factory=lambda: LogNormalSizes(median_bytes=40_000, sigma=1.1)
    )
    coherency_bytes: int = 2_000
    coherency_rate_per_s: float = 50.0

    def __post_init__(self) -> None:
        if self.batch_rate_per_s <= 0 or self.group_size <= 0:
            raise ConfigError("cache workload needs positive rate and group size")


class CacheWorkload(Workload):
    """Scatter-gather reads against fixed server groups."""

    def __init__(
        self,
        rack: Rack,
        config: CacheConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(rack, rng)
        self.config = config or CacheConfig()
        self.packet_mix = PacketSizeModel(APP_PACKET_MIX["cache"])
        if not rack.remote_hosts:
            raise ConfigError("cache workload needs remote web frontends")
        n_servers = len(rack.servers)
        size = min(self.config.group_size, n_servers)
        self.groups: list[list[int]] = [
            list(range(start, min(start + size, n_servers)))
            for start in range(0, n_servers, size)
        ]
        #: group index -> leader server index (first member).
        self.leaders = [group[0] for group in self.groups]

    def _install(self, until_ns: int | None) -> None:
        arrivals = PoissonArrivals(
            sim=self.rack.sim,
            rate_per_s=self.config.batch_rate_per_s,
            fire=self._scatter_gather,
            rng=np.random.default_rng(self.rng.integers(0, 2**63 - 1)),
            until_ns=until_ns,
        )
        arrivals.start()
        coherency = PoissonArrivals(
            sim=self.rack.sim,
            rate_per_s=self.config.coherency_rate_per_s,
            fire=self._coherency_round,
            rng=np.random.default_rng(self.rng.integers(0, 2**63 - 1)),
            until_ns=until_ns,
        )
        coherency.start()

    def _scatter_gather(self) -> None:
        """One web-frontend batch hits every member of one group at once."""
        self.stats.requests_issued += 1
        group = self.groups[int(self.rng.integers(len(self.groups)))]
        frontend = self.rack.remote_hosts[
            int(self.rng.integers(len(self.rack.remote_hosts)))
        ]
        for server_index in group:
            server = self.rack.servers[server_index]
            response_size = self.config.response.sample(self.rng)
            self.stats.bytes_requested += response_size
            server.send_flow(
                frontend.name,
                response_size,
                packet_size=self.packet_mix.data_packet_size(self.rng),
            )
            self.stats.responses_sent += 1
        self.stats.requests_completed += 1

    def _coherency_round(self) -> None:
        """A leader pushes small invalidations to its followers."""
        group_index = int(self.rng.integers(len(self.groups)))
        group = self.groups[group_index]
        leader = self.rack.servers[self.leaders[group_index]]
        for follower_index in group[1:]:
            follower = self.rack.servers[follower_index]
            leader.send_flow(
                follower.name,
                self.config.coherency_bytes,
                packet_size=256,
            )
