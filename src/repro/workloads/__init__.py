"""Application traffic generators.

The measured data center dedicates whole racks to single roles (Sec 4.2);
these generators reproduce the three application behaviours the paper
studies on top of the packet-level simulator:

* :class:`WebWorkload` — request-driven, stateless, user-facing; fan-in
  toward single servers dominates (Sec 6.3).
* :class:`CacheWorkload` — scatter-gather request groups with responses
  much larger than requests; uplink-bound (Sec 6.3) with correlated
  server subsets (Sec 6.2).
* :class:`HadoopWorkload` — offline shuffle of long, full-MTU flows;
  highest utilization and buffer pressure (Sec 5.4, 6.4).
"""

from repro.workloads.base import Workload, WorkloadStats
from repro.workloads.distributions import (
    EmpiricalSizes,
    LogNormalSizes,
    ParetoSizes,
    SizeDistribution,
    FixedSizes,
)
from repro.workloads.flows import PoissonArrivals, OnOffArrivals
from repro.workloads.web import WebWorkload, WebConfig
from repro.workloads.cache import CacheWorkload, CacheConfig
from repro.workloads.hadoop import HadoopWorkload, HadoopConfig
from repro.workloads.packetsize import PacketSizeModel, APP_PACKET_MIX

__all__ = [
    "Workload",
    "WorkloadStats",
    "SizeDistribution",
    "FixedSizes",
    "LogNormalSizes",
    "ParetoSizes",
    "EmpiricalSizes",
    "PoissonArrivals",
    "OnOffArrivals",
    "WebWorkload",
    "WebConfig",
    "CacheWorkload",
    "CacheConfig",
    "HadoopWorkload",
    "HadoopConfig",
    "PacketSizeModel",
    "APP_PACKET_MIX",
]
