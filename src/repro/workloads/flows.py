"""Arrival processes driving application events."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.netsim.engine import Simulator
from repro.units import NS_PER_S


@dataclass(slots=True)
class PoissonArrivals:
    """Homogeneous Poisson event process.

    Schedules ``fire`` at exponential inter-arrival times until the
    simulator passes ``until_ns`` (or forever when None).
    """

    sim: Simulator
    rate_per_s: float
    fire: Callable[[], None]
    rng: np.random.Generator
    until_ns: int | None = None

    def start(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigError("arrival rate must be positive")
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap_s = self.rng.exponential(1.0 / self.rate_per_s)
        when = self.sim.now + max(1, round(gap_s * NS_PER_S))
        if self.until_ns is not None and when >= self.until_ns:
            return
        self.sim.schedule_at(when, self._fire_and_reschedule)

    def _fire_and_reschedule(self) -> None:
        self.fire()
        self._schedule_next()


@dataclass(slots=True)
class OnOffArrivals:
    """Bursty arrivals: Poisson bursts of work separated by idle periods.

    During an ON period (exponential duration), events fire at
    ``on_rate_per_s``; OFF periods (heavy-tailed lognormal) fire nothing.
    This is the application-level burstiness the paper traces bursts to.
    """

    sim: Simulator
    on_rate_per_s: float
    mean_on_s: float
    median_off_s: float
    off_sigma: float
    fire: Callable[[], None]
    rng: np.random.Generator
    until_ns: int | None = None

    def start(self) -> None:
        if min(self.on_rate_per_s, self.mean_on_s, self.median_off_s) <= 0:
            raise ConfigError("on/off parameters must be positive")
        self._begin_on()

    def _begin_on(self) -> None:
        duration_s = self.rng.exponential(self.mean_on_s)
        end = self.sim.now + max(1, round(duration_s * NS_PER_S))
        self._tick(end)

    def _tick(self, on_end_ns: int) -> None:
        gap_s = self.rng.exponential(1.0 / self.on_rate_per_s)
        when = self.sim.now + max(1, round(gap_s * NS_PER_S))
        if self.until_ns is not None and when >= self.until_ns:
            return
        if when >= on_end_ns:
            self._begin_off()
            return
        def fire_and_continue() -> None:
            self.fire()
            self._tick(on_end_ns)
        self.sim.schedule_at(when, fire_and_continue)

    def _begin_off(self) -> None:
        duration_s = self.rng.lognormal(np.log(self.median_off_s), self.off_sigma)
        when = self.sim.now + max(1, round(duration_s * NS_PER_S))
        if self.until_ns is not None and when >= self.until_ns:
            return
        self.sim.schedule_at(when, self._begin_on)
