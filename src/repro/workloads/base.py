"""Workload base class."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.topology import Rack


@dataclass(slots=True)
class WorkloadStats:
    """Application-level accounting, independent of switch counters."""

    requests_issued: int = 0
    requests_completed: int = 0
    responses_sent: int = 0
    bytes_requested: int = 0
    extra: dict = field(default_factory=dict)


class Workload(ABC):
    """A traffic pattern installed onto a rack.

    Workloads schedule application events (requests, shuffles) on the
    rack's servers and remote hosts; the transport and switch take it
    from there.  ``install`` must be called before the simulation runs.
    """

    def __init__(self, rack: Rack, rng: np.random.Generator | int | None = None) -> None:
        self.rack = rack
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self.stats = WorkloadStats()
        self._installed = False

    def install(self, until_ns: int | None = None) -> None:
        """Arm the workload's event sources (idempotent guard)."""
        if self._installed:
            return
        self._installed = True
        self._install(until_ns)

    @abstractmethod
    def _install(self, until_ns: int | None) -> None:
        """Subclass hook: schedule the first events."""
