"""Command-line interface: ``repro <experiment> [options]``.

Examples
--------
    repro list
    repro fig3 --seed 1
    repro fig3 --backend netsim
    repro all --seed 0 --series

Results go to stdout; progress and timing diagnostics go through the
``repro`` logger (stderr by default) — ``-v`` for debug detail, ``-q``
for warnings only.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import get_logger, setup_logging

_log = get_logger("cli")


class _VersionAction(argparse.Action):
    """``--version``: package version + git describe, computed lazily so
    ordinary runs never pay the ``git describe`` subprocess."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.telemetry.export import git_describe, package_version

        print(f"repro {package_version()} ({git_describe()})")
        parser.exit()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures from 'High-Resolution Measurement of "
            "Data Center Microbursts' (IMC 2017) on the simulated substrate."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (fig1..fig10, tab1, tab2, ext-*), 'all', 'list', "
            "'validate' (calibration scorecard vs the paper), "
            "'export' (write release-format distributions), or "
            "'compare' (diff a directory of distributions against us)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--backend",
        choices=("synth", "netsim"),
        default=None,
        metavar="NAME",
        help=(
            "measurement backend: 'synth' (default; calibrated vectorised "
            "synthesiser) or 'netsim' (packet-level simulator at a "
            "documented reduced scale)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more diagnostics on stderr (repeatable)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="warnings only on stderr",
    )
    parser.add_argument(
        "--series",
        action="store_true",
        help="also print the raw (x, y) series behind each figure",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "full"),
        default="small",
        help="'full' uses campaign-scale data volumes (slow)",
    )
    parser.add_argument(
        "--dir",
        default="distributions",
        help="directory for 'export' output / 'compare' input",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "shard campaign collection across N worker processes "
            "(results are byte-identical to a serial run; experiments "
            "without a campaign to shard run serially)"
        ),
    )
    parser.add_argument(
        "--chaos",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "inject faults at this window-failure rate (ext-chaos only; "
            "e.g. 0.05 for the paper-scale 5%% chaos run)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="checkpoint directory for resumable chaos campaigns (ext-chaos)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the ext-chaos campaign from --checkpoint instead of restarting",
    )
    parser.add_argument(
        "--version",
        action=_VersionAction,
        help="print package version and git describe, then exit",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write a telemetry snapshot on exit: Prometheus text exposition "
            "when PATH ends in .prom/.txt, JSON (with build-info header) "
            "otherwise"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record pipeline spans and write them as JSON lines on exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-stage CPU time and peak RSS gauges (see --metrics-out)",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable metric collection entirely (used by overhead benchmarks)",
    )
    return parser


def _scale_kwargs(experiment_id: str, scale: str) -> dict:
    if scale == "small":
        return {}
    full = {
        "fig3": dict(n_windows=240, window_s=10.0),
        "tab2": dict(n_windows=240, window_s=10.0),
        "fig4": dict(n_windows=240, window_s=10.0),
        "fig6": dict(n_windows=240, window_s=10.0),
        "fig5": dict(duration_s=120.0),
        "fig7": dict(duration_s=60.0),
        "fig8": dict(duration_s=60.0),
        "fig9": dict(duration_s=60.0),
        "fig10": dict(duration_s=120.0),
        "fig1": dict(n_links=20000),
        "tab1": dict(duration_s=10.0),
    }
    return full.get(experiment_id, {})


def _netsim_kwargs(experiment_id: str) -> dict:
    """Reduced data volumes for the packet-level backend: each window is a
    real simulation (capped at ~40 ms of simulated time), so the campaign
    shrinks to keep a CLI run interactive."""
    reduced = {
        "fig3": dict(n_windows=4),
        "fig4": dict(n_windows=4),
        "fig6": dict(n_windows=4),
        "tab2": dict(n_windows=4),
        "ext-cc": dict(n_windows=2),
        "ext-lb": dict(n_windows=2),
        "fig10": dict(n_activity_windows=4),
        "ext-chaos": dict(campaign_racks_per_app=1, campaign_hours=2),
    }
    return reduced.get(experiment_id, {})


def _finish_telemetry(args, tracer) -> None:
    """Export metrics/spans and log the one-line summary (at ``-v``)."""
    from repro.telemetry import (
        get_registry,
        install_tracer,
        write_metrics_json,
        write_metrics_prometheus,
    )

    registry = get_registry()
    if args.verbose > 0 and not args.quiet:
        _log.info("%s", registry.summary_line())
    if args.metrics_out:
        if args.metrics_out.endswith((".prom", ".txt")):
            path = write_metrics_prometheus(args.metrics_out, registry)
        else:
            path = write_metrics_json(
                args.metrics_out, registry, extra={"argv": sys.argv[1:]}
            )
        _log.info("wrote metrics to %s", path)
    if tracer is not None:
        install_tracer(None)
        if args.trace_out:
            _log.info("wrote spans to %s", tracer.export_jsonl(args.trace_out))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(-1 if args.quiet else args.verbose)
    from repro.telemetry import Tracer, install_tracer, set_enabled, set_profiling

    if args.no_telemetry:
        set_enabled(False)
    if args.profile:
        set_profiling(True)
    tracer = None
    if args.trace_out:
        tracer = Tracer()
        install_tracer(tracer)
    try:
        return _dispatch(args)
    finally:
        _finish_telemetry(args, tracer)


def _dispatch(args) -> int:
    if args.experiment == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.experiment == "export":
        from repro.data.export import export_distributions

        n_windows = 240 if args.scale == "full" else 24
        paths = export_distributions(args.dir, seed=args.seed, n_windows=n_windows)
        for path in paths:
            print(f"wrote {path}")
        return 0
    if args.experiment == "validate":
        from repro.synth.validation import calibration_scorecard, render_scorecard

        n_ticks = 8_000_000 if args.scale == "full" else 2_000_000
        results = calibration_scorecard(seed=args.seed, n_ticks=n_ticks)
        print(render_scorecard(results))
        return 0 if all(check.passed for check in results) else 1
    if args.experiment == "compare":
        from repro.data.export import compare_directory

        for report in compare_directory(args.dir, seed=args.seed):
            print(
                f"{report['file']:>18}: p50 {report['reference_p50']:.4g} vs "
                f"{report['ours_p50']:.4g}  p90 {report['reference_p90']:.4g} vs "
                f"{report['ours_p90']:.4g}  KS {report['ks_distance']:.3f}"
            )
        return 0
    if args.resume and not args.checkpoint:
        _log.error("--resume requires --checkpoint DIR")
        return 2
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    json_payload = []
    if args.workers < 1:
        _log.error("--workers must be at least 1")
        return 2
    for experiment_id in targets:
        start = time.time()
        kwargs = _scale_kwargs(experiment_id, args.scale)
        if args.backend is not None:
            kwargs["backend"] = args.backend
            if args.backend == "netsim":
                kwargs.update(_netsim_kwargs(experiment_id))
        if args.workers != 1:
            kwargs["workers"] = args.workers
        if experiment_id == "ext-chaos":
            if args.chaos is not None:
                kwargs["fault_rate"] = args.chaos
            if args.checkpoint is not None:
                kwargs["checkpoint_dir"] = args.checkpoint
                kwargs["resume"] = args.resume
        _log.debug("running %s with %s", experiment_id, kwargs or "defaults")
        from repro.telemetry import profile_stage, span

        with span("experiment", id=experiment_id), profile_stage(experiment_id):
            result = run_experiment(experiment_id, seed=args.seed, **kwargs)
        if args.json:
            payload = result.to_dict(include_series=args.series)
            payload["seconds"] = round(time.time() - start, 2)
            json_payload.append(payload)
        else:
            print(result.render(include_series=args.series))
            print()
        _log.info("%s completed in %.1fs", experiment_id, time.time() - start)
    if args.json:
        import json

        print(json.dumps(json_payload, indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
