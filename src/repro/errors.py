"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or after the horizon."""


class CounterError(ReproError):
    """A counter was read or updated incorrectly."""


class SamplingError(ReproError):
    """The high-resolution sampler was misconfigured or misused."""


class CollectionError(ReproError):
    """A measurement window could not be collected (read failure, window
    timeout, collector overflow with an ``error`` drop policy, ...).

    Collection errors are *transient by contract*: the resilient campaign
    runner retries them with backoff before declaring the window failed.
    """


class FaultInjectionError(ReproError):
    """A fault plan is invalid or an injector was misused."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class TelemetryError(ReproError):
    """A telemetry metric, span, or snapshot was misused (name registered
    under two different types, mismatched histogram buckets on merge,
    malformed snapshot, ...)."""


class DataFormatError(ReproError):
    """A distribution data file does not match the expected schema."""


class CorruptTraceError(DataFormatError):
    """A trace archive failed its integrity check (truncation, bit
    corruption, or a length/CRC mismatch)."""
