"""Counter-trace persistence.

Campaigns produce large numbers of traces; this module stores them as
compressed ``.npz`` archives (one archive per campaign window or ad-hoc
collection) with enough metadata to reconstruct full
:class:`~repro.core.samples.CounterTrace` objects — name, semantics, and
line rate included.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.samples import CounterTrace, ValueKind
from repro.errors import DataFormatError

_FORMAT_KEY = "__repro_trace_archive__"
_FORMAT_VERSION = 1


def save_traces(path: str | Path, traces: dict[str, CounterTrace]) -> None:
    """Write a named collection of traces to one compressed archive."""
    if not traces:
        raise DataFormatError("refusing to write an empty trace archive")
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        _FORMAT_KEY: np.array([_FORMAT_VERSION], dtype=np.int64)
    }
    names: list[str] = []
    for index, (name, trace) in enumerate(traces.items()):
        if name != trace.name:
            raise DataFormatError(
                f"archive key {name!r} does not match trace name {trace.name!r}"
            )
        prefix = f"t{index}"
        payload[f"{prefix}.timestamps"] = trace.timestamps_ns
        payload[f"{prefix}.values"] = trace.values
        payload[f"{prefix}.meta"] = np.array(
            [trace.name, trace.kind.value, repr(float(trace.rate_bps))]
        )
        names.append(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)


def load_traces(path: str | Path) -> dict[str, CounterTrace]:
    """Load a trace archive written by :func:`save_traces`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if _FORMAT_KEY not in archive:
            raise DataFormatError(f"{path} is not a repro trace archive")
        version = int(archive[_FORMAT_KEY][0])
        if version != _FORMAT_VERSION:
            raise DataFormatError(f"{path}: unsupported archive version {version}")
        traces: dict[str, CounterTrace] = {}
        index = 0
        while f"t{index}.meta" in archive:
            name, kind_value, rate_repr = archive[f"t{index}.meta"]
            trace = CounterTrace(
                timestamps_ns=archive[f"t{index}.timestamps"],
                values=archive[f"t{index}.values"],
                kind=ValueKind(str(kind_value)),
                name=str(name),
                rate_bps=float(str(rate_repr)),
            )
            traces[trace.name] = trace
            index += 1
    if not traces:
        raise DataFormatError(f"{path}: archive holds no traces")
    return traces
