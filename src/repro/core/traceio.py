"""Counter-trace persistence.

Campaigns produce large numbers of traces; this module stores them as
compressed ``.npz`` archives (one archive per campaign window or ad-hoc
collection) with enough metadata to reconstruct full
:class:`~repro.core.samples.CounterTrace` objects — name, semantics, and
line rate included.

Archives are written atomically (write to a temporary file, then rename)
and carry per-trace length/CRC32 integrity records, so a truncated or
corrupted file is detected as :class:`~repro.errors.CorruptTraceError`
instead of being silently parsed as a shorter trace.  Version-1 archives
(no integrity records) still load.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

import numpy as np

from repro.core.samples import CounterTrace, ValueKind
from repro.errors import CorruptTraceError, DataFormatError
from repro.telemetry.metrics import get_registry

_FORMAT_KEY = "__repro_trace_archive__"
_FORMAT_VERSION = 2
_COUNT_KEY = "__n_traces__"


def _crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def _normalized(path: Path) -> Path:
    """The final on-disk name (numpy appends .npz when absent)."""
    return path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")


def save_traces(path: str | Path, traces: dict[str, CounterTrace]) -> None:
    """Write a named collection of traces to one compressed archive.

    The archive appears atomically: readers either see the previous file
    or the complete new one, never a half-written archive.
    """
    if not traces:
        raise DataFormatError("refusing to write an empty trace archive")
    path = _normalized(Path(path))
    payload: dict[str, np.ndarray] = {
        _FORMAT_KEY: np.array([_FORMAT_VERSION], dtype=np.int64),
        _COUNT_KEY: np.array([len(traces)], dtype=np.int64),
    }
    for index, (name, trace) in enumerate(traces.items()):
        if name != trace.name:
            raise DataFormatError(
                f"archive key {name!r} does not match trace name {trace.name!r}"
            )
        prefix = f"t{index}"
        payload[f"{prefix}.timestamps"] = trace.timestamps_ns
        payload[f"{prefix}.values"] = trace.values
        payload[f"{prefix}.meta"] = np.array(
            [trace.name, trace.kind.value, repr(float(trace.rate_bps))]
        )
        payload[f"{prefix}.integrity"] = np.array(
            [len(trace), _crc(trace.timestamps_ns), _crc(trace.values)],
            dtype=np.int64,
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}.npz")
    try:
        np.savez_compressed(tmp, **payload)
        size = tmp.stat().st_size
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    registry = get_registry()
    registry.counter("traceio.archives_written", "trace archives persisted").inc()
    registry.counter(
        "traceio.bytes_written", "compressed bytes written to trace archives"
    ).inc(size)


def _verify(prefix: str, archive, trace: CounterTrace, path: Path) -> None:
    key = f"{prefix}.integrity"
    if key not in archive:
        raise CorruptTraceError(f"{path}: trace {trace.name!r} missing integrity record")
    n_samples, ts_crc, val_crc = (int(x) for x in archive[key])
    if n_samples != len(trace):
        raise CorruptTraceError(
            f"{path}: trace {trace.name!r} has {len(trace)} samples, header says "
            f"{n_samples} — truncated or corrupted archive"
        )
    if _crc(trace.timestamps_ns) != ts_crc or _crc(trace.values) != val_crc:
        get_registry().counter(
            "traceio.crc_failures", "trace loads rejected on CRC mismatch"
        ).inc()
        raise CorruptTraceError(f"{path}: CRC mismatch in trace {trace.name!r}")
    get_registry().counter(
        "traceio.crc_verified", "per-trace CRC integrity checks passed"
    ).inc()


def load_traces(path: str | Path) -> dict[str, CounterTrace]:
    """Load a trace archive written by :func:`save_traces`."""
    path = Path(path)
    try:
        archive_cm = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise CorruptTraceError(f"{path}: unreadable archive ({exc})") from exc
    with archive_cm as archive:
        try:
            if _FORMAT_KEY not in archive:
                raise DataFormatError(f"{path} is not a repro trace archive")
            version = int(archive[_FORMAT_KEY][0])
            if version not in (1, _FORMAT_VERSION):
                raise DataFormatError(f"{path}: unsupported archive version {version}")
            traces: dict[str, CounterTrace] = {}
            index = 0
            while f"t{index}.meta" in archive:
                name, kind_value, rate_repr = archive[f"t{index}.meta"]
                trace = CounterTrace(
                    timestamps_ns=archive[f"t{index}.timestamps"],
                    values=archive[f"t{index}.values"],
                    kind=ValueKind(str(kind_value)),
                    name=str(name),
                    rate_bps=float(str(rate_repr)),
                )
                if version >= 2:
                    _verify(f"t{index}", archive, trace, path)
                traces[trace.name] = trace
                index += 1
            if version >= 2:
                expected = int(archive[_COUNT_KEY][0]) if _COUNT_KEY in archive else None
                if expected is not None and expected != len(traces):
                    raise CorruptTraceError(
                        f"{path}: archive holds {len(traces)} traces, header says "
                        f"{expected} — truncated archive"
                    )
        except (DataFormatError, FileNotFoundError):
            raise
        except Exception as exc:
            raise CorruptTraceError(f"{path}: damaged archive member ({exc})") from exc
    if not traces:
        raise DataFormatError(f"{path}: archive holds no traces")
    return traces
