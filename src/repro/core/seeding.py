"""Deterministic seed derivation shared by every parallelizable component.

Serial and parallel campaign runs must produce byte-identical traces, so
*nothing* stochastic may depend on call order, worker count, or shard
assignment.  The rule, enforced here as the single source of truth, is:

    every random stream is keyed by (root seed, stable site identity)

where the site identity names the affected window / counter / file as a
string (``"web-rack3|7|down0"``).  The synthetic campaign source derives
its per-window generator from ``(campaign_seed, rack_id, window_idx)``
and the fault injector derives its per-site generator from
``(plan_seed, site)`` — both through the helpers below — so a window
collected by shard 5 of a 4-worker run sees exactly the randomness it
would in a sequential run, a retry, or a checkpointed resume.
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_site_key(*parts: object) -> int:
    """CRC32 of ``"part0|part1|..."`` — a stable, process-independent key.

    Python's built-in ``hash`` is salted per process, so it can never be
    used for seeding; this digest is identical across processes, runs,
    and platforms.
    """
    return zlib.crc32("|".join(str(part) for part in parts).encode())


def window_rng(campaign_seed: int, rack_id: str, window_idx: int) -> np.random.Generator:
    """Generator for one campaign window, independent of execution order.

    Keyed by ``(campaign_seed, rack_id, window_idx)`` so any shard of any
    worker reproduces the same stream for the same window.
    """
    return np.random.default_rng(stable_site_key(campaign_seed, rack_id, window_idx))


def site_rng(seed: int, site: str) -> np.random.Generator:
    """Generator for one named injection/collection site.

    Seeds with the ``[seed, crc32(site)]`` entropy sequence so streams
    for different sites are independent but each is fully determined by
    ``(seed, site)``.
    """
    return np.random.default_rng([seed, zlib.crc32(site.encode())])
