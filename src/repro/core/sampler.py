"""The high-resolution sampler.

This is the heart of the paper's framework (Sec 4.1): a polling loop on
the switch CPU that reads a group of counters at a target interval.
Timing is best-effort:

* A read whose latency exceeds the interval marks that scheduled instant
  *missed*, and the instants it overruns are skipped entirely.
* Every read that does happen is recorded with its true completion
  timestamp and the exact cumulative counter value, so byte counts stay
  exact across misses (Table 1's note).

``HighResSampler`` runs in two modes: attached to a live simulator
(polling real switch counters event-by-event) or timing-only (a fast
vectorised walk used for Table 1's interval-vs-miss-rate sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.asic import AsicTimingModel
from repro.core.collector import CollectorService
from repro.core.counters import CounterBinding, validate_group
from repro.core.samples import CounterTrace
from repro.errors import ConfigError, SamplingError
from repro.netsim.engine import Simulator
from repro.telemetry.metrics import get_registry
from repro.units import us


@dataclass(frozen=True, slots=True)
class SamplerConfig:
    """Polling-loop configuration.

    Parameters
    ----------
    interval_ns:
        Target sampling interval (the paper uses 25 us for single byte
        counters, up to 300 us for multi-counter campaigns).
    dedicated_core:
        Whether the loop owns a CPU core.  Giving it up trades timing
        precision for lower switch-CPU utilization (Sec 4.1).
    timing:
        The ASIC read-latency model.
    """

    interval_ns: int = us(25)
    dedicated_core: bool = True
    timing: AsicTimingModel = field(default_factory=AsicTimingModel)

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ConfigError("sampling interval must be positive")


def overrun_covered_instants(
    latency_ns: int, interval_ns: int, instants_remaining: int
) -> int:
    """Scheduled instants consumed by a read whose latency overruns the
    interval, clamped to the window boundary.

    ``instants_remaining`` counts grid instants from the current one to
    the end of the window (the current instant counts as one).  Both
    sampling modes share this clamp so live and timing-only runs agree
    exactly on scheduled/missed accounting for identical latency streams.
    """
    overrun = -(-latency_ns // interval_ns)  # ceil division
    return min(overrun, max(1, instants_remaining))


@dataclass(slots=True)
class TimingStats:
    """Outcome of a polling run, in Table 1's terms."""

    scheduled: int = 0
    taken: int = 0
    missed: int = 0
    #: reads whose latency exceeded the interval (each such read covers
    #: one or more missed instants — ``missed`` counts the instants,
    #: ``overruns`` counts the slow reads themselves)
    overruns: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of scheduled sampling instants not met on time."""
        if self.scheduled == 0:
            return 0.0
        return self.missed / self.scheduled

    def publish(self) -> None:
        """Mirror this run's tallies into the telemetry registry."""
        registry = get_registry()
        registry.counter(
            "sampler.instants_scheduled", "sampling instants on the target grid"
        ).inc(self.scheduled)
        registry.counter("sampler.reads_taken", "counter reads issued").inc(self.taken)
        registry.counter(
            "sampler.instants_missed", "scheduled instants not met on time"
        ).inc(self.missed)
        registry.counter(
            "sampler.read_overruns",
            "reads whose latency overran the interval, covering instants",
        ).inc(self.overruns)


@dataclass(slots=True)
class SamplerReport:
    """Traces plus timing behaviour for one measurement run."""

    traces: dict[str, CounterTrace]
    timing: TimingStats
    cpu_utilization: float


class HighResSampler:
    """Polls a group of counter bindings at microsecond granularity."""

    def __init__(
        self,
        config: SamplerConfig,
        bindings: list[CounterBinding],
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not bindings:
            raise SamplingError("sampler needs at least one counter binding")
        validate_group(bindings)
        self.config = config
        self.bindings = bindings
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self._specs = [binding.spec for binding in bindings]

    # -- live mode ---------------------------------------------------------------

    def run_in_sim(
        self,
        sim: Simulator,
        duration_ns: int,
        collector: CollectorService | None = None,
    ) -> SamplerReport:
        """Attach to a running simulation and poll for ``duration_ns``.

        The caller is responsible for driving ``sim`` afterwards (this
        method schedules events and then runs the simulator to the end of
        the window, interleaving polls with traffic).
        """
        if duration_ns <= 0:
            raise ConfigError("duration must be positive")
        collector = collector or CollectorService()
        for spec in self._specs:
            # reattach=True: a long-lived collector reused across windows
            # gets fresh sample buffers while keeping its lifetime drop
            # tally intact.
            collector.register(spec, reattach=True)
        stats = TimingStats()
        interval = self.config.interval_ns
        n_instants = duration_ns // interval
        if n_instants == 0:
            raise SamplingError("duration shorter than one sampling interval")
        start = sim.now
        end = start + duration_ns

        def complete() -> None:
            # Recorded with the true completion timestamp and exact
            # cumulative value — bytes survive misses (Table 1).
            for binding in self.bindings:
                collector.record(binding.spec.name, sim.now, binding.read())

        def poll(index: int) -> None:
            if index >= n_instants:
                return
            tick_ns = start + index * interval
            latency = self.config.timing.group_read_latency_ns(
                self._specs, self.rng, dedicated_core=self.config.dedicated_core
            )
            # Timing accounting happens at read initiation (it depends only
            # on the latency), so live and timing-only modes agree even when
            # the final read completes past the window end.
            stats.taken += 1
            if latency <= interval:
                stats.scheduled += 1
                next_index = index + 1
            else:
                covered = overrun_covered_instants(latency, interval, n_instants - index)
                stats.scheduled += covered
                stats.missed += covered
                stats.overruns += 1
                next_index = index + -(-latency // interval)

            sim.schedule_at(tick_ns + latency, complete)
            if next_index < n_instants:
                sim.schedule_at(start + next_index * interval, poll, next_index)

        sim.schedule_at(start, poll, 0)
        sim.run_until(end)
        stats.publish()
        return SamplerReport(
            traces=collector.finalize(),
            timing=stats,
            cpu_utilization=self.config.timing.expected_cpu_utilization(
                self._specs, interval
            ),
        )

    # -- timing-only mode ------------------------------------------------------------

    def simulate_timing(self, duration_ns: int) -> TimingStats:
        """Walk the polling loop without reading counters (Table 1).

        Miss semantics: a scheduled instant is satisfied only when a read
        completes within one interval of it; a read of latency L > interval
        marks ceil(L / interval) instants missed and the loop resumes on
        the next grid point after completion.
        """
        if duration_ns <= 0:
            raise ConfigError("duration must be positive")
        interval = self.config.interval_ns
        n_ticks = duration_ns // interval
        if n_ticks == 0:
            raise SamplingError("duration shorter than one sampling interval")
        # Draw latencies in chunks; the walk consumes at most one per read.
        stats = TimingStats()
        tick = 0
        chunk = max(1024, int(n_ticks // 4) + 1)
        latencies = self.config.timing.group_read_latencies_ns(
            self._specs, chunk, self.rng, dedicated_core=self.config.dedicated_core
        )
        cursor = 0
        while tick < n_ticks:
            if cursor >= len(latencies):
                latencies = self.config.timing.group_read_latencies_ns(
                    self._specs,
                    chunk,
                    self.rng,
                    dedicated_core=self.config.dedicated_core,
                )
                cursor = 0
            latency = int(latencies[cursor])
            cursor += 1
            stats.taken += 1
            if latency <= interval:
                stats.scheduled += 1
                tick += 1
            else:
                covered = overrun_covered_instants(latency, interval, n_ticks - tick)
                stats.scheduled += covered
                stats.missed += covered
                stats.overruns += 1
                tick += -(-latency // interval)
        stats.publish()
        return stats
