"""Adaptive-rate sampling.

Sec 5.1 notes the polling rate is "fundamentally limited by latency
between the CPU and the ASIC" and Sec 4.1 that precision can be traded
for CPU utilization.  A natural refinement the paper's design points to
is *adaptive* polling: idle links are sampled slowly (cheap), and the
first hot sample switches the loop to the fast interval for a hold
period, capturing burst interiors at full resolution while spending far
less CPU than always-fast polling.

:class:`AdaptiveSampler` implements that policy on the same counter
bindings and timing model as :class:`~repro.core.sampler.HighResSampler`,
so the two are directly comparable (see
``benchmarks/bench_adaptive.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.asic import AsicTimingModel
from repro.core.collector import CollectorService
from repro.core.counters import CounterBinding, validate_group
from repro.core.sampler import SamplerReport, TimingStats
from repro.errors import ConfigError, SamplingError
from repro.netsim.engine import Simulator
from repro.units import NS_PER_S, us


@dataclass(frozen=True, slots=True)
class AdaptiveConfig:
    """Two-rate polling policy.

    The loop polls at ``slow_interval_ns``; when the primary byte
    counter's last interval exceeded ``trigger_utilization`` it polls at
    ``fast_interval_ns`` until ``hold_ns`` passes without a hot sample.
    """

    fast_interval_ns: int = us(25)
    slow_interval_ns: int = us(250)
    trigger_utilization: float = 0.4
    hold_ns: int = us(500)
    dedicated_core: bool = True
    timing: AsicTimingModel = field(default_factory=AsicTimingModel)

    def __post_init__(self) -> None:
        if self.fast_interval_ns <= 0 or self.slow_interval_ns <= 0:
            raise ConfigError("intervals must be positive")
        if self.fast_interval_ns >= self.slow_interval_ns:
            raise ConfigError("fast interval must be below the slow interval")
        if not 0.0 < self.trigger_utilization < 1.0:
            raise ConfigError("trigger utilization must be in (0, 1)")
        if self.hold_ns < self.fast_interval_ns:
            raise ConfigError("hold must cover at least one fast interval")


@dataclass(slots=True)
class AdaptiveStats:
    """Behaviour of one adaptive run."""

    fast_polls: int = 0
    slow_polls: int = 0
    escalations: int = 0

    @property
    def total_polls(self) -> int:
        return self.fast_polls + self.slow_polls

    def duty_cycle(self, config: AdaptiveConfig) -> float:
        """CPU cost relative to always-fast polling (1.0 = no saving)."""
        always_fast_polls = (
            self.fast_polls
            + self.slow_polls * config.slow_interval_ns / config.fast_interval_ns
        )
        if always_fast_polls == 0:
            return 0.0
        return self.total_polls / always_fast_polls


class AdaptiveSampler:
    """Two-rate sampler driven by the first binding's byte counter."""

    def __init__(
        self,
        config: AdaptiveConfig,
        bindings: list[CounterBinding],
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not bindings:
            raise SamplingError("adaptive sampler needs at least one binding")
        validate_group(bindings)
        primary = bindings[0]
        if primary.spec.rate_bps <= 0:
            raise SamplingError(
                "the first binding must be a byte counter with a line rate "
                "(it drives the escalation trigger)"
            )
        self.config = config
        self.bindings = bindings
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self._specs = [binding.spec for binding in bindings]

    def run_in_sim(
        self,
        sim: Simulator,
        duration_ns: int,
        collector: CollectorService | None = None,
    ) -> tuple[SamplerReport, AdaptiveStats]:
        if duration_ns <= 0:
            raise ConfigError("duration must be positive")
        collector = collector or CollectorService()
        for spec in self._specs:
            collector.register(spec)
        timing = TimingStats()
        adaptive = AdaptiveStats()
        config = self.config
        primary = self.bindings[0]
        end = sim.now + duration_ns
        state = {
            "fast_until": -1,
            "last_value": None,
            "last_time": None,
        }

        def current_interval() -> int:
            if sim.now < state["fast_until"]:
                return config.fast_interval_ns
            return config.slow_interval_ns

        def poll() -> None:
            if sim.now >= end:
                return
            interval = current_interval()
            latency = config.timing.group_read_latency_ns(
                self._specs, self.rng, dedicated_core=config.dedicated_core
            )

            def complete() -> None:
                value = None
                for binding in self.bindings:
                    read_value = binding.read()
                    collector.record(binding.spec.name, sim.now, read_value)
                    if binding is primary:
                        value = read_value
                timing.taken += 1
                timing.scheduled += 1
                if latency > interval:
                    timing.missed += 1
                if sim.now < state["fast_until"]:
                    adaptive.fast_polls += 1
                else:
                    adaptive.slow_polls += 1
                # escalation check on the primary byte counter
                if state["last_value"] is not None and sim.now > state["last_time"]:
                    delta = value - state["last_value"]
                    dt = sim.now - state["last_time"]
                    utilization = delta * 8.0 * NS_PER_S / dt / primary.spec.rate_bps
                    if utilization > config.trigger_utilization:
                        if sim.now >= state["fast_until"]:
                            adaptive.escalations += 1
                        state["fast_until"] = sim.now + config.hold_ns
                state["last_value"] = value
                state["last_time"] = sim.now
                next_time = sim.now + max(current_interval(), latency)
                if next_time < end:
                    sim.schedule_at(next_time, poll)

            sim.schedule_at(sim.now + latency, complete)

        sim.schedule_at(sim.now, poll)
        sim.run_until(end)
        report = SamplerReport(
            traces=collector.finalize(),
            timing=timing,
            cpu_utilization=config.timing.expected_cpu_utilization(
                self._specs, config.slow_interval_ns
            ),
        )
        return report, adaptive
