"""ASIC read-latency model.

The polling rate of the paper's framework is "fundamentally limited by
latency between the CPU and the ASIC" (Sec 5.1), differs per counter
("some counters are implemented in registers versus memory", Sec 4.1),
and is perturbed by "kernel interrupts and competing resource requests".
This module models that timing: a lognormal body per cost class plus a
rare heavy "interrupt" tail, with sublinear batching for multi-counter
reads.

The default parameters are calibrated so a single byte counter reproduces
Table 1:  miss rate ~100 % at 1 us, ~10 % at 10 us, ~1 % at 25 us — see
``tests/core/test_asic.py`` and the tab1 benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.counters import CostClass, CounterSpec
from repro.errors import ConfigError
from repro.units import us


@dataclass(frozen=True, slots=True)
class ReadCost:
    """Lognormal latency parameters for one cost class."""

    median_ns: float
    sigma: float

    @property
    def mu(self) -> float:
        return math.log(self.median_ns)


@dataclass(frozen=True, slots=True)
class AsicTimingModel:
    """Latency model for CPU reads of ASIC counters.

    Parameters
    ----------
    register_cost / memory_cost:
        Lognormal body of a single-counter read for each cost class.
        Registers: median ~5.5 us (so a 25 us budget is met ~99 % of the
        time); memory: median ~40 us (the buffer watermark polls at
        ~50 us, Sec 4.1).
    interrupt_probability:
        Chance that a read is hit by a kernel interrupt / competing
        request, adding ``interrupt_extra_ns`` uniform extra latency.
    batch_factor:
        Sublinear group-read scaling: reading k counters together costs
        ``max(singles) + batch_factor * sum(rest)`` (Sec 4.1: "Multiple
        counters can be polled together with a sublinear increase").
    shared_core_penalty:
        Multiplier on interrupt probability when the sampler does not own
        a dedicated core (Sec 4.1's precision/utilization tradeoff).
    """

    register_cost: ReadCost = ReadCost(median_ns=us(5.0), sigma=0.42)
    memory_cost: ReadCost = ReadCost(median_ns=us(32.0), sigma=0.25)
    interrupt_probability: float = 0.004
    interrupt_extra_min_ns: int = us(15)
    interrupt_extra_max_ns: int = us(60)
    batch_factor: float = 0.30
    shared_core_penalty: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.interrupt_probability <= 1.0:
            raise ConfigError("interrupt probability must be in [0, 1]")
        if not 0.0 <= self.batch_factor <= 1.0:
            raise ConfigError("batch factor must be in [0, 1]")
        if self.interrupt_extra_min_ns > self.interrupt_extra_max_ns:
            raise ConfigError("interrupt extra range inverted")

    def _cost(self, cost_class: CostClass) -> ReadCost:
        if cost_class is CostClass.MEMORY:
            return self.memory_cost
        return self.register_cost

    # -- sampling ---------------------------------------------------------------

    def single_read_latency_ns(
        self,
        spec: CounterSpec,
        rng: np.random.Generator,
        dedicated_core: bool = True,
    ) -> int:
        """Latency of one read of one counter."""
        return self.group_read_latency_ns([spec], rng, dedicated_core=dedicated_core)

    def group_read_latency_ns(
        self,
        specs: list[CounterSpec],
        rng: np.random.Generator,
        dedicated_core: bool = True,
    ) -> int:
        """Latency of reading a counter group back-to-back in one poll."""
        if not specs:
            raise ConfigError("empty counter group")
        bodies = [
            rng.lognormal(self._cost(spec.cost_class).mu, self._cost(spec.cost_class).sigma)
            for spec in specs
        ]
        bodies.sort(reverse=True)
        latency = bodies[0] + self.batch_factor * sum(bodies[1:])
        p_interrupt = self.interrupt_probability
        if not dedicated_core:
            p_interrupt = min(1.0, p_interrupt * self.shared_core_penalty)
        if rng.random() < p_interrupt:
            latency += rng.uniform(self.interrupt_extra_min_ns, self.interrupt_extra_max_ns)
        return max(1, round(latency))

    def group_read_latencies_ns(
        self,
        specs: list[CounterSpec],
        n: int,
        rng: np.random.Generator,
        dedicated_core: bool = True,
    ) -> np.ndarray:
        """Vectorised draw of ``n`` group-read latencies (for Table 1 sweeps)."""
        if not specs:
            raise ConfigError("empty counter group")
        if n <= 0:
            return np.zeros(0, dtype=np.int64)
        bodies = np.stack(
            [
                rng.lognormal(
                    self._cost(spec.cost_class).mu,
                    self._cost(spec.cost_class).sigma,
                    size=n,
                )
                for spec in specs
            ]
        )
        bodies_sorted = np.sort(bodies, axis=0)[::-1]
        latency = bodies_sorted[0] + self.batch_factor * bodies_sorted[1:].sum(axis=0)
        p_interrupt = self.interrupt_probability
        if not dedicated_core:
            p_interrupt = min(1.0, p_interrupt * self.shared_core_penalty)
        hit = rng.random(n) < p_interrupt
        latency = latency + hit * rng.uniform(
            self.interrupt_extra_min_ns, self.interrupt_extra_max_ns, size=n
        )
        return np.maximum(1, np.round(latency)).astype(np.int64)

    def expected_cpu_utilization(self, specs: list[CounterSpec], interval_ns: int) -> float:
        """Approximate fraction of a core the polling loop consumes.

        Used to reason about the Sec 4.1 claim that precision can be
        traded to keep utilization at or under ~20 %.
        """
        if interval_ns <= 0:
            raise ConfigError("interval must be positive")
        medians = sorted(
            (self._cost(spec.cost_class).median_ns for spec in specs), reverse=True
        )
        # lognormal mean = median * exp(sigma^2 / 2); sigma per class
        means = []
        for spec in specs:
            cost = self._cost(spec.cost_class)
            means.append(cost.median_ns * math.exp(cost.sigma**2 / 2.0))
        means.sort(reverse=True)
        expected = means[0] + self.batch_factor * sum(means[1:])
        del medians
        return min(1.0, expected / interval_ns)
