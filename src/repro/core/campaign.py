"""Measurement campaigns.

Implements the paper's data-collection discipline (Sec 4.2): 30 racks (10
per application), and for each rack one randomly chosen port sampled over
one random 2-minute window in every hour of a day, capturing diurnal
variation while respecting data-retention limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol

import numpy as np

from repro.core.samples import CounterTrace
from repro.errors import ConfigError
from repro.units import NS_PER_S, seconds


@dataclass(frozen=True, slots=True)
class CampaignWindow:
    """One (rack, hour) measurement window."""

    rack_id: str
    rack_type: str
    port_name: str
    hour: int
    start_ns: int
    duration_ns: int

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


class WindowSource(Protocol):
    """Anything that can produce counter traces for a campaign window."""

    def sample_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        """Collect traces covering ``window``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class CampaignPlan:
    """The full schedule of windows for a campaign."""

    windows: tuple[CampaignWindow, ...]

    @staticmethod
    def generate(
        racks: Iterable[tuple[str, str]],
        port_chooser: Callable[[str, np.random.Generator], str],
        rng: np.random.Generator,
        hours: int = 24,
        window_duration_ns: int = seconds(120),
    ) -> "CampaignPlan":
        """Random-port / random-window-per-hour schedule.

        Parameters
        ----------
        racks:
            ``(rack_id, rack_type)`` pairs, e.g. 10 each of web / cache /
            hadoop.
        port_chooser:
            Picks the one measured port for a rack (the paper samples a
            single random port per rack).
        """
        if hours <= 0:
            raise ConfigError("campaign needs at least one hour")
        hour_ns = seconds(3600)
        if window_duration_ns <= 0 or window_duration_ns > hour_ns:
            raise ConfigError("window must fit within an hour")
        windows: list[CampaignWindow] = []
        for rack_id, rack_type in racks:
            port = port_chooser(rack_id, rng)
            for hour in range(hours):
                offset = int(rng.integers(0, hour_ns - window_duration_ns + 1))
                windows.append(
                    CampaignWindow(
                        rack_id=rack_id,
                        rack_type=rack_type,
                        port_name=port,
                        hour=hour,
                        start_ns=hour * hour_ns + offset,
                        duration_ns=window_duration_ns,
                    )
                )
        return CampaignPlan(windows=tuple(windows))

    def windows_for_type(self, rack_type: str) -> list[CampaignWindow]:
        return [w for w in self.windows if w.rack_type == rack_type]

    @property
    def total_measured_seconds(self) -> float:
        return sum(w.duration_ns for w in self.windows) / NS_PER_S


@dataclass(slots=True)
class CampaignResult:
    """Collected traces keyed by window."""

    plan: CampaignPlan
    traces: list[dict[str, CounterTrace]]

    def by_type(self, rack_type: str) -> list[dict[str, CounterTrace]]:
        return [
            traces
            for window, traces in zip(self.plan.windows, self.traces)
            if window.rack_type == rack_type
        ]

    def iter_windows(self):
        return zip(self.plan.windows, self.traces)


class MeasurementCampaign:
    """Executes a plan against a window source."""

    def __init__(self, plan: CampaignPlan, source: WindowSource) -> None:
        self.plan = plan
        self.source = source

    def run(self) -> CampaignResult:
        traces = [self.source.sample_window(window) for window in self.plan.windows]
        return CampaignResult(plan=self.plan, traces=traces)
