"""Measurement campaigns.

Implements the paper's data-collection discipline (Sec 4.2): 30 racks (10
per application), and for each rack one randomly chosen port sampled over
one random 2-minute window in every hour of a day, capturing diurnal
variation while respecting data-retention limits.

Collection is *resilient*: the measurement plane is best-effort by design
(Table 1), so :class:`MeasurementCampaign` treats window failures as
first-class — bounded retry with backoff, optional per-window timeouts,
partial results with per-window status, and JSON-lines checkpointing so
an interrupted 24-hour campaign resumes at the last completed window
instead of being discarded.
"""

from __future__ import annotations

import enum
import hashlib
import json
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol

import numpy as np

from repro.core.samples import CounterTrace
from repro.core.traceio import load_traces, save_traces
from repro.errors import AnalysisError, CollectionError, ConfigError, ReproError
from repro.obs import get_logger
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import span
from repro.units import NS_PER_S, seconds

_log = get_logger("campaign")


@dataclass(frozen=True, slots=True)
class CampaignWindow:
    """One (rack, hour) measurement window."""

    rack_id: str
    rack_type: str
    port_name: str
    hour: int
    start_ns: int
    duration_ns: int

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


class WindowSource(Protocol):
    """Anything that can produce counter traces for a campaign window.

    This is the minimal capability a campaign needs; full measurement
    backends (:class:`repro.backends.MeasurementBackend`) are structural
    supersets, so every backend is a valid window source.
    """

    def sample_window(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        """Collect traces covering ``window``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class CampaignPlan:
    """The full schedule of windows for a campaign."""

    windows: tuple[CampaignWindow, ...]

    @staticmethod
    def generate(
        racks: Iterable[tuple[str, str]],
        port_chooser: Callable[[str, np.random.Generator], str],
        rng: np.random.Generator,
        hours: int = 24,
        window_duration_ns: int = seconds(120),
    ) -> "CampaignPlan":
        """Random-port / random-window-per-hour schedule.

        Parameters
        ----------
        racks:
            ``(rack_id, rack_type)`` pairs, e.g. 10 each of web / cache /
            hadoop.
        port_chooser:
            Picks the one measured port for a rack (the paper samples a
            single random port per rack).
        """
        if hours <= 0:
            raise ConfigError("campaign needs at least one hour")
        hour_ns = seconds(3600)
        if window_duration_ns <= 0 or window_duration_ns > hour_ns:
            raise ConfigError("window must fit within an hour")
        windows: list[CampaignWindow] = []
        for rack_id, rack_type in racks:
            port = port_chooser(rack_id, rng)
            for hour in range(hours):
                offset = int(rng.integers(0, hour_ns - window_duration_ns + 1))
                windows.append(
                    CampaignWindow(
                        rack_id=rack_id,
                        rack_type=rack_type,
                        port_name=port,
                        hour=hour,
                        start_ns=hour * hour_ns + offset,
                        duration_ns=window_duration_ns,
                    )
                )
        return CampaignPlan(windows=tuple(windows))

    def windows_for_type(self, rack_type: str) -> list[CampaignWindow]:
        return [w for w in self.windows if w.rack_type == rack_type]

    @property
    def total_measured_seconds(self) -> float:
        return sum(w.duration_ns for w in self.windows) / NS_PER_S

    def digest(self) -> str:
        """Stable fingerprint of the schedule (guards checkpoint resume)."""
        blob = json.dumps(
            [
                [w.rack_id, w.rack_type, w.port_name, w.hour, w.start_ns, w.duration_ns]
                for w in self.windows
            ]
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


class WindowStatus(enum.Enum):
    """Terminal state of one window's collection."""

    OK = "ok"  # collected on the first attempt, no degradation markers
    DEGRADED = "degraded"  # collected, but retried or with sample loss
    FAILED = "failed"  # retry budget exhausted; no traces

    @property
    def has_traces(self) -> bool:
        return self is not WindowStatus.FAILED


@dataclass(slots=True)
class WindowOutcome:
    """What happened when one window was collected."""

    index: int
    window: CampaignWindow
    status: WindowStatus
    attempts: int = 1
    error: str = ""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for window collection.

    Only :class:`~repro.errors.ReproError` failures are retried —
    anything else is a programming error and propagates.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    window_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigError("max_attempts must be positive")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ConfigError("backoff must be non-negative and non-shrinking")
        if self.window_timeout_s is not None and self.window_timeout_s <= 0:
            raise ConfigError("window timeout must be positive")


@dataclass(slots=True)
class CampaignResult:
    """Collected traces keyed by window, with per-window outcomes.

    ``traces`` stays parallel to ``plan.windows`` — failed windows hold an
    empty dict — so positional pairing is always valid.  ``outcomes`` is
    present for runs executed by the resilient runner (``None`` for
    results assembled by hand).
    """

    plan: CampaignPlan
    traces: list[dict[str, CounterTrace]]
    outcomes: list[WindowOutcome] | None = None

    def _check_aligned(self) -> None:
        if len(self.traces) != len(self.plan.windows):
            raise AnalysisError(
                f"campaign result misaligned: {len(self.traces)} trace sets for "
                f"{len(self.plan.windows)} planned windows — partial results must "
                "keep one (possibly empty) entry per window"
            )

    def by_type(self, rack_type: str) -> list[dict[str, CounterTrace]]:
        self._check_aligned()
        return [
            traces
            for window, traces in zip(self.plan.windows, self.traces)
            if window.rack_type == rack_type
        ]

    def iter_windows(self) -> Iterator[tuple[CampaignWindow, dict[str, CounterTrace]]]:
        self._check_aligned()
        return zip(self.plan.windows, self.traces)

    def completed(
        self, rack_type: str | None = None
    ) -> Iterator[tuple[CampaignWindow, dict[str, CounterTrace]]]:
        """(window, traces) pairs that actually hold data, optionally
        filtered by rack type — the gap-tolerant way to feed analysis."""
        for window, traces in self.iter_windows():
            if not traces:
                continue
            if rack_type is not None and window.rack_type != rack_type:
                continue
            yield window, traces

    def status_counts(self) -> dict[str, int]:
        counts = {status.value: 0 for status in WindowStatus}
        if self.outcomes is None:
            counts[WindowStatus.OK.value] = sum(1 for t in self.traces if t)
            counts[WindowStatus.FAILED.value] = sum(1 for t in self.traces if not t)
        else:
            for outcome in self.outcomes:
                counts[outcome.status.value] += 1
        return counts

    @property
    def n_failed(self) -> int:
        return self.status_counts()[WindowStatus.FAILED.value]

    @property
    def completion_fraction(self) -> float:
        if not self.plan.windows:
            return 1.0
        return 1.0 - self.n_failed / len(self.plan.windows)


#: Checkpoint manifest schema version.
_MANIFEST_VERSION = 1


class MeasurementCampaign:
    """Executes a plan against a measurement backend, resiliently.

    Parameters
    ----------
    plan / backend:
        The schedule and the data plane to collect from — anything
        satisfying :class:`WindowSource` (a full
        :class:`repro.backends.MeasurementBackend`, a bare synthetic
        source, or a fault-injecting wrapper around either).
    retry:
        Retry policy for failed windows.  ``None`` keeps the historical
        fail-fast behaviour (one attempt, errors propagate).
    checkpoint_dir:
        When set, every completed window is persisted there (a JSON-lines
        manifest plus one trace archive per window) and
        ``run(resume=True)`` restarts after the last completed window.
    sleep:
        Injectable backoff sleep (tests pass a no-op).
    """

    def __init__(
        self,
        plan: CampaignPlan,
        backend: WindowSource,
        retry: RetryPolicy | None = None,
        checkpoint_dir: str | Path | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self.backend = backend
        self.retry = retry
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self._sleep = sleep

    @property
    def source(self) -> WindowSource:
        """Backward-compatible alias for :attr:`backend`."""
        return self.backend

    # -- checkpointing -----------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / "manifest.jsonl"

    def _trace_path(self, index: int) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / f"window_{index:05d}.npz"

    def _load_checkpoint(self) -> dict[int, WindowOutcome]:
        """Replay the manifest; corrupt entries are re-collected."""
        done: dict[int, WindowOutcome] = {}
        if self.checkpoint_dir is None or not self._manifest_path.exists():
            return done
        digest = self.plan.digest()
        with self._manifest_path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("kind") == "header":
                    if record.get("plan_digest") != digest:
                        raise CollectionError(
                            f"checkpoint at {self.checkpoint_dir} belongs to a "
                            "different campaign plan "
                            f"({record.get('plan_digest')} != {digest})"
                        )
                    continue
                index = int(record["index"])
                if not 0 <= index < len(self.plan.windows):
                    raise CollectionError(
                        f"checkpoint references window {index} outside the plan"
                    )
                done[index] = WindowOutcome(
                    index=index,
                    window=self.plan.windows[index],
                    status=WindowStatus(record["status"]),
                    attempts=int(record.get("attempts", 1)),
                    error=record.get("error", ""),
                )
        return done

    def _append_manifest(self, record: dict) -> None:
        with self._manifest_path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")

    def _checkpoint_window(
        self, outcome: WindowOutcome, traces: dict[str, CounterTrace]
    ) -> None:
        if self.checkpoint_dir is None:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        if not self._manifest_path.exists():
            self._append_manifest(
                {
                    "kind": "header",
                    "version": _MANIFEST_VERSION,
                    "plan_digest": self.plan.digest(),
                    "n_windows": len(self.plan.windows),
                }
            )
        trace_file = None
        if traces:
            archive = self._trace_path(outcome.index)
            save_traces(archive, traces)
            trace_file = archive.name
            get_registry().counter(
                "campaign.checkpoint_bytes", "bytes persisted to window checkpoints"
            ).inc(archive.stat().st_size)
        self._append_manifest(
            {
                "index": outcome.index,
                "status": outcome.status.value,
                "attempts": outcome.attempts,
                "error": outcome.error,
                "trace_file": trace_file,
            }
        )

    # -- collection --------------------------------------------------------------

    def _collect_once(self, window: CampaignWindow) -> dict[str, CounterTrace]:
        timeout = self.retry.window_timeout_s if self.retry else None
        if timeout is None:
            return self.backend.sample_window(window)
        # One worker per attempt: a hung collection must not poison later
        # windows.  The abandoned worker is left to finish on its own.
        pool = ThreadPoolExecutor(max_workers=1)
        future = pool.submit(self.backend.sample_window, window)
        finished, _ = wait([future], timeout=timeout, return_when=FIRST_COMPLETED)
        if not finished:
            pool.shutdown(wait=False, cancel_futures=True)
            raise CollectionError(
                f"window {window.rack_id}/h{window.hour} timed out after {timeout}s"
            )
        pool.shutdown(wait=False)
        return future.result()

    @staticmethod
    def _is_degraded(traces: dict[str, CounterTrace]) -> bool:
        return any(trace.meta.get("samples_dropped", 0) > 0 for trace in traces.values())

    def _run_window(
        self, index: int, window: CampaignWindow
    ) -> tuple[WindowOutcome, dict[str, CounterTrace]]:
        registry = get_registry()
        retry = self.retry or RetryPolicy(max_attempts=1)
        delay = retry.backoff_s
        last_error = ""
        for attempt in range(1, retry.max_attempts + 1):
            try:
                traces = self._collect_once(window)
            except ReproError as exc:
                last_error = str(exc)
                if self.retry is None:
                    raise
                _log.debug(
                    "window %s/h%d attempt %d failed: %s",
                    window.rack_id, window.hour, attempt, exc,
                )
                if attempt < retry.max_attempts:
                    registry.counter(
                        "campaign.window_retries", "window collection attempts retried"
                    ).inc()
                    if delay > 0:
                        self._sleep(delay)
                    delay *= retry.backoff_factor
                continue
            status = WindowStatus.OK
            if attempt > 1 or self._is_degraded(traces):
                status = WindowStatus.DEGRADED
            outcome = WindowOutcome(
                index=index,
                window=window,
                status=status,
                attempts=attempt,
                error=last_error,
            )
            return outcome, traces
        _log.warning(
            "window %s/h%d failed after %d attempts: %s",
            window.rack_id, window.hour, retry.max_attempts, last_error,
        )
        outcome = WindowOutcome(
            index=index,
            window=window,
            status=WindowStatus.FAILED,
            attempts=retry.max_attempts,
            error=last_error,
        )
        return outcome, {}

    def run(self, resume: bool = False) -> CampaignResult:
        """Collect every window, tolerating per-window failures.

        With ``resume=True`` (and a checkpoint directory) previously
        completed windows are loaded from the checkpoint instead of being
        re-collected; because sources and fault injectors are keyed by
        window identity, a resumed run reproduces the traces an
        uninterrupted run would have produced.
        """
        registry = get_registry()
        done = self._load_checkpoint() if resume else {}
        traces_by_index: dict[int, dict[str, CounterTrace]] = {}
        outcomes: list[WindowOutcome] = []
        for index, outcome in list(done.items()):
            if outcome.status.has_traces:
                try:
                    traces_by_index[index] = load_traces(self._trace_path(index))
                except ReproError:
                    # Damaged checkpoint entry: forget it and re-collect.
                    del done[index]
            else:
                traces_by_index[index] = {}
        registry.counter(
            "campaign.windows_resumed", "windows restored from checkpoint"
        ).inc(len(done))
        with span("campaign.run", n_windows=len(self.plan.windows), resumed=len(done)):
            for index, window in enumerate(self.plan.windows):
                if index in done:
                    outcomes.append(done[index])
                    continue
                with span(
                    "campaign.window", rack=window.rack_id, hour=window.hour
                ) as window_span:
                    outcome, window_traces = self._run_window(index, window)
                    window_span.set_attr("status", outcome.status.value)
                registry.counter(
                    f"campaign.windows_{outcome.status.value}",
                    "window collections by terminal status",
                ).inc()
                traces_by_index[index] = window_traces
                outcomes.append(outcome)
                self._checkpoint_window(outcome, window_traces)
        outcomes.sort(key=lambda o: o.index)
        return CampaignResult(
            plan=self.plan,
            traces=[traces_by_index[i] for i in range(len(self.plan.windows))],
            outcomes=outcomes,
        )
