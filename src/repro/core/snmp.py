"""Coarse-grained (SNMP-style) counter views.

The motivation study (Sec 3) uses production-granularity measurements:
utilization and discard counters over 4-minute SNMP intervals (Fig 1) and
1-minute drop time series (Fig 2).  This module turns fine-grained traces
into those coarse views, and is also how we demonstrate that coarse
counters hide microbursts (the ablation benchmark re-runs burst detection
at widening granularities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.samples import CounterTrace, ValueKind
from repro.errors import AnalysisError
from repro.units import NS_PER_S


@dataclass(frozen=True, slots=True)
class CoarseSample:
    """Per-bin aggregates over a coarse polling interval."""

    bin_starts_ns: np.ndarray
    bin_ns: int
    utilization: np.ndarray | None = None
    drops: np.ndarray | None = None


def _bin_deltas(trace: CounterTrace, bin_ns: int) -> tuple[np.ndarray, np.ndarray]:
    """Sum per-interval deltas of a cumulative trace into coarse bins.

    Each fine interval is attributed to the bin containing its end
    timestamp; with fine intervals orders of magnitude smaller than the
    coarse bin the attribution error is negligible.
    """
    if trace.kind is not ValueKind.CUMULATIVE:
        raise AnalysisError("coarse resampling needs a cumulative trace")
    if bin_ns <= 0:
        raise AnalysisError("bin width must be positive")
    if len(trace) < 2:
        raise AnalysisError(f"trace {trace.name!r} too short to resample")
    deltas = trace.deltas()
    ends = trace.timestamps_ns[1:]
    start = int(trace.timestamps_ns[0])
    bin_index = (ends - start) // bin_ns
    n_bins = int(bin_index[-1]) + 1
    sums = np.bincount(bin_index, weights=deltas.astype(np.float64), minlength=n_bins)
    bin_starts = start + bin_ns * np.arange(n_bins, dtype=np.int64)
    return bin_starts, sums


def coarse_resample(
    byte_trace: CounterTrace,
    bin_ns: int,
    drop_trace: CounterTrace | None = None,
) -> CoarseSample:
    """Aggregate a fine byte (and optional drop) trace into coarse bins.

    Returns per-bin utilization (fraction of line rate) and, when a drop
    counter is supplied, per-bin discard counts — the two series the
    Sec 3 motivation plots combine.
    """
    bin_starts, byte_sums = _bin_deltas(byte_trace, bin_ns)
    if byte_trace.rate_bps <= 0:
        raise AnalysisError(f"trace {byte_trace.name!r} has no line rate")
    capacity_bytes = byte_trace.rate_bps * bin_ns / NS_PER_S / 8.0
    utilization = byte_sums / capacity_bytes
    drops = None
    if drop_trace is not None:
        drop_starts, drop_sums = _bin_deltas(drop_trace, bin_ns)
        n = min(len(byte_sums), len(drop_sums))
        bin_starts = bin_starts[:n]
        utilization = utilization[:n]
        drops = drop_sums[:n]
    return CoarseSample(
        bin_starts_ns=bin_starts,
        bin_ns=bin_ns,
        utilization=utilization,
        drops=drops,
    )
