"""High-resolution counter collection framework.

This is the paper's primary contribution: a polling framework that reads
switch ASIC counters every 10s-to-100s of microseconds from the switch
CPU, tolerating best-effort timing (missed intervals keep correct
timestamps and cumulative values), batching samples to a collector.

The framework is hardware-agnostic: it polls anything exposing the
counter-surface protocol — the packet-level simulator's
:class:`repro.netsim.tracing.SwitchCounterSurface` or the synthetic
campaign generator.
"""

from repro.core.samples import CounterTrace, ValueKind
from repro.core.counters import CounterBinding, CounterKind, CostClass, CounterSpec
from repro.core.asic import AsicTimingModel, ReadCost
from repro.core.sampler import HighResSampler, SamplerConfig, SamplerReport, TimingStats
from repro.core.collector import CollectorService
from repro.core.campaign import (
    CampaignPlan,
    CampaignResult,
    CampaignWindow,
    MeasurementCampaign,
    RetryPolicy,
    WindowOutcome,
    WindowStatus,
)
from repro.core.parallel import ParallelCampaign, Shard, shard_plan
from repro.core.seeding import site_rng, stable_site_key, window_rng
from repro.core.snmp import CoarseSample, coarse_resample
from repro.core.adaptive import AdaptiveConfig, AdaptiveSampler, AdaptiveStats
from repro.core.streaming import ReservoirSampler, StreamingBurstStats

__all__ = [
    "CounterTrace",
    "ValueKind",
    "CounterBinding",
    "CounterKind",
    "CostClass",
    "CounterSpec",
    "AsicTimingModel",
    "ReadCost",
    "HighResSampler",
    "SamplerConfig",
    "SamplerReport",
    "TimingStats",
    "CollectorService",
    "CampaignPlan",
    "CampaignResult",
    "CampaignWindow",
    "MeasurementCampaign",
    "RetryPolicy",
    "WindowOutcome",
    "WindowStatus",
    "ParallelCampaign",
    "Shard",
    "shard_plan",
    "site_rng",
    "stable_site_key",
    "window_rng",
    "CoarseSample",
    "coarse_resample",
    "AdaptiveConfig",
    "AdaptiveSampler",
    "AdaptiveStats",
    "ReservoirSampler",
    "StreamingBurstStats",
]
