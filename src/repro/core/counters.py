"""Counter specifications and bindings.

A :class:`CounterSpec` describes *what* is polled (identity, semantics,
hardware cost class); a :class:`CounterBinding` attaches the spec to a
concrete read function on a counter surface.  The sampler only sees
bindings, so it can poll the packet simulator, the synthetic generator,
or (in the original system) real ASIC registers through one interface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.core.samples import ValueKind
from repro.errors import CounterError
from repro.netsim.tracing import SwitchCounterSurface


class CounterKind(enum.Enum):
    """The three counter families the paper collects (Sec 4.1), plus the
    drop counter used by the coarse-grained motivation study (Sec 3)."""

    BYTE = "byte"
    PACKET_SIZE_HIST = "packet_size_hist"
    PEAK_BUFFER = "peak_buffer"
    DROP = "drop"


class CostClass(enum.Enum):
    """Where the counter lives on the ASIC.

    Register-backed counters are cheap to read; memory-backed ones (the
    shared-buffer watermark) "take much longer to poll" (Sec 4.1 gives
    50 us for the buffer counter vs 25 us for byte counters).
    """

    REGISTER = "register"
    MEMORY = "memory"


_KIND_COST: dict[CounterKind, CostClass] = {
    CounterKind.BYTE: CostClass.REGISTER,
    CounterKind.PACKET_SIZE_HIST: CostClass.REGISTER,
    CounterKind.PEAK_BUFFER: CostClass.MEMORY,
    CounterKind.DROP: CostClass.REGISTER,
}

_KIND_VALUE: dict[CounterKind, ValueKind] = {
    CounterKind.BYTE: ValueKind.CUMULATIVE,
    CounterKind.PACKET_SIZE_HIST: ValueKind.CUMULATIVE,
    CounterKind.PEAK_BUFFER: ValueKind.GAUGE,
    CounterKind.DROP: ValueKind.CUMULATIVE,
}


@dataclass(frozen=True, slots=True)
class CounterSpec:
    """Identity and semantics of one pollable counter instance."""

    name: str
    kind: CounterKind
    rate_bps: float = 0.0

    @property
    def cost_class(self) -> CostClass:
        return _KIND_COST[self.kind]

    @property
    def value_kind(self) -> ValueKind:
        return _KIND_VALUE[self.kind]


@dataclass(frozen=True, slots=True)
class CounterBinding:
    """A spec attached to a concrete read operation."""

    spec: CounterSpec
    read: Callable[[], int | tuple[int, ...]]


# -- binding factories for the simulator's counter surface -------------------


def bind_tx_bytes(surface: SwitchCounterSurface, port: str) -> CounterBinding:
    """Egress byte counter of ``port`` (the paper's workhorse counter)."""
    spec = CounterSpec(
        name=f"{port}.tx_bytes",
        kind=CounterKind.BYTE,
        rate_bps=surface.port_rate_bps(port),
    )
    return CounterBinding(spec=spec, read=lambda: surface.read_tx_bytes(port))


def bind_rx_bytes(surface: SwitchCounterSurface, port: str) -> CounterBinding:
    spec = CounterSpec(
        name=f"{port}.rx_bytes",
        kind=CounterKind.BYTE,
        rate_bps=surface.port_rate_bps(port),
    )
    return CounterBinding(spec=spec, read=lambda: surface.read_rx_bytes(port))


def bind_tx_drops(surface: SwitchCounterSurface, port: str) -> CounterBinding:
    spec = CounterSpec(name=f"{port}.tx_drops", kind=CounterKind.DROP)
    return CounterBinding(spec=spec, read=lambda: surface.read_tx_drops(port))


def bind_tx_size_hist(surface: SwitchCounterSurface, port: str) -> CounterBinding:
    spec = CounterSpec(
        name=f"{port}.tx_size_hist",
        kind=CounterKind.PACKET_SIZE_HIST,
        rate_bps=surface.port_rate_bps(port),
    )
    return CounterBinding(spec=spec, read=lambda: surface.read_tx_size_histogram(port))


def bind_peak_buffer(surface: SwitchCounterSurface) -> CounterBinding:
    spec = CounterSpec(name="shared_buffer.peak", kind=CounterKind.PEAK_BUFFER)
    return CounterBinding(spec=spec, read=surface.read_peak_buffer_and_reset)


def bind_all_tx_bytes(surface: SwitchCounterSurface) -> list[CounterBinding]:
    """One egress byte-counter binding per switch port."""
    return [bind_tx_bytes(surface, port) for port in surface.port_names]


def validate_group(bindings: list[CounterBinding]) -> None:
    """Reject duplicate counter names within one measurement campaign."""
    names = [binding.spec.name for binding in bindings]
    if len(set(names)) != len(names):
        raise CounterError(f"duplicate counters in group: {sorted(names)}")
