"""Parallel sharded campaign execution.

The paper's measurement plane polls 30 ToR switches *concurrently* for 24
hours; this module gives the campaign runner the same shape.  A
:class:`~repro.core.campaign.CampaignPlan` is sharded by (rack, window
range) — a deterministic layout that depends only on the plan, never on
the worker count — and each shard is executed by a full
:class:`~repro.core.campaign.MeasurementCampaign` (the PR-1 retry,
timeout, and JSONL-checkpoint machinery, unchanged) inside a
``ProcessPoolExecutor`` worker.  Shard results are merged back in plan
order.

Determinism contract
--------------------
Serial and parallel runs produce **byte-identical** traces because no
randomness depends on execution order: window sources derive their
per-window stream from ``(campaign_seed, rack_id, window_idx)`` and
fault injectors from ``(plan_seed, site)`` (see
:mod:`repro.core.seeding`).  Sources are pickled to workers, so any
mutable source state is shard-local; a conforming source must therefore
key *all* randomness by window identity.  The golden test
``tests/integration/test_parallel_determinism.py`` holds this contract
at 1, 2, and 4 workers, under fault injection, and across
checkpoint/resume.

Checkpoint layout
-----------------
``checkpoint_dir/shards.json`` records the sharding layout and plan
digest; ``checkpoint_dir/shard_NNN/`` holds each shard's ordinary
campaign checkpoint (manifest + per-window archives).  Because the
layout is worker-count-invariant, a campaign checkpointed at one worker
count resumes correctly at any other.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path

from repro.core.campaign import (
    CampaignPlan,
    CampaignResult,
    CampaignWindow,
    MeasurementCampaign,
    RetryPolicy,
    WindowOutcome,
    WindowSource,
)
from repro.core.samples import CounterTrace
from repro.errors import CollectionError, ConfigError
from repro.obs import get_logger
from repro.telemetry.metrics import get_registry, scoped_registry
from repro.telemetry.spans import span

_log = get_logger("parallel")

#: Version of the ``shards.json`` layout header.
_LAYOUT_VERSION = 1


@dataclass(frozen=True, slots=True)
class Shard:
    """One unit of parallel work: a slice of the plan's windows.

    ``indices`` are global window indices into ``plan.windows``,
    ascending, so the merge step is a plain scatter.
    """

    shard_id: int
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def shard_plan(
    plan: CampaignPlan, max_windows_per_shard: int | None = None
) -> tuple[Shard, ...]:
    """Deterministic (rack, window-range) sharding of a campaign plan.

    Windows are grouped by rack (racks in order of first appearance, each
    rack's windows in plan order — the paper's one-poller-per-ToR
    discipline), then optionally split into chunks of at most
    ``max_windows_per_shard`` windows so a single giant rack can still
    fan out.  The layout depends only on ``(plan, max_windows_per_shard)``
    — never on worker count — which is what makes checkpoints portable
    across worker counts.
    """
    if max_windows_per_shard is not None and max_windows_per_shard <= 0:
        raise ConfigError("max_windows_per_shard must be positive")
    by_rack: dict[str, list[int]] = {}
    for index, window in enumerate(plan.windows):
        by_rack.setdefault(window.rack_id, []).append(index)
    shards: list[Shard] = []
    for indices in by_rack.values():
        step = max_windows_per_shard or len(indices) or 1
        for start in range(0, len(indices), step):
            chunk = indices[start : start + step]
            shards.append(Shard(shard_id=len(shards), indices=tuple(chunk)))
    return tuple(shards)


def _source_fault_stats(source: WindowSource) -> dict[str, int] | None:
    """Fault-injection tally of a source, when it carries an injector."""
    stats = getattr(getattr(source, "injector", None), "stats", None)
    as_dict = getattr(stats, "as_dict", None)
    return as_dict() if callable(as_dict) else None


def _collect_shard(
    windows: tuple[CampaignWindow, ...],
    backend: WindowSource,
    retry: RetryPolicy | None,
    checkpoint_dir: str | None,
    resume: bool,
) -> tuple[
    list[WindowOutcome], list[dict[str, CounterTrace]], dict[str, int] | None, dict
]:
    """Run one shard as an ordinary resilient campaign (worker entry point).

    Module-level so it pickles; the ``backend`` argument arrives as a
    process-local copy in pool workers, which is exactly what keeps
    mutable backend state (retry attempt counters, fault tallies)
    shard-local and order-independent.

    Telemetry runs inside :func:`~repro.telemetry.scoped_registry`, so
    the returned snapshot holds exactly this shard's increments —
    nothing inherited from a forked parent — and the caller merges
    snapshots at join.  Serial (in-process) shards take the same path,
    which is what makes serial and ``--workers N`` aggregates agree.
    """
    subplan = CampaignPlan(windows=windows)
    campaign = MeasurementCampaign(
        subplan, backend, retry=retry, checkpoint_dir=checkpoint_dir
    )
    with scoped_registry() as registry:
        result = campaign.run(resume=resume)
        snapshot = registry.snapshot()
    return result.outcomes or [], result.traces, _source_fault_stats(backend), snapshot


class ParallelCampaign:
    """Executes a campaign plan across process workers, deterministically.

    Parameters
    ----------
    plan / backend:
        As for :class:`~repro.core.campaign.MeasurementCampaign`.  With
        ``workers > 1`` the backend must be picklable and must derive all
        randomness from window identity (see module docstring).
    retry:
        Per-window retry policy, applied inside every shard.
    checkpoint_dir:
        Root of the sharded checkpoint layout (see module docstring).
    workers:
        Process count.  ``1`` runs the shards sequentially in-process
        (no pickling requirement) but keeps the identical shard/merge
        path and checkpoint layout, so results and checkpoints match the
        multi-worker run byte for byte.
    max_windows_per_shard:
        Optional cap splitting one rack's windows across several shards.

    After :meth:`run`, :attr:`fault_stats` holds the aggregated fault
    tally across shards when the source carries a
    :class:`~repro.faults.FaultInjector` (``None`` otherwise).
    """

    def __init__(
        self,
        plan: CampaignPlan,
        backend: WindowSource,
        retry: RetryPolicy | None = None,
        checkpoint_dir: str | Path | None = None,
        workers: int = 1,
        max_windows_per_shard: int | None = None,
    ) -> None:
        if workers <= 0:
            raise ConfigError(f"workers must be positive, got {workers}")
        self.plan = plan
        self.backend = backend
        self.retry = retry
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.workers = workers
        self.shards = shard_plan(plan, max_windows_per_shard)
        self.fault_stats: dict[str, int] | None = None

    @property
    def source(self) -> WindowSource:
        """Backward-compatible alias for :attr:`backend`."""
        return self.backend

    # -- checkpoint layout -------------------------------------------------------

    @property
    def _layout_path(self) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / "shards.json"

    def _shard_dir(self, shard: Shard) -> str | None:
        if self.checkpoint_dir is None:
            return None
        return str(self.checkpoint_dir / f"shard_{shard.shard_id:03d}")

    def _layout_record(self) -> dict:
        return {
            "version": _LAYOUT_VERSION,
            "plan_digest": self.plan.digest(),
            "n_shards": len(self.shards),
            "shard_sizes": [len(shard) for shard in self.shards],
        }

    def _prepare_checkpoint(self, resume: bool) -> None:
        if self.checkpoint_dir is None:
            return
        record = self._layout_record()
        if resume and self._layout_path.exists():
            existing = json.loads(self._layout_path.read_text())
            for key in ("plan_digest", "n_shards", "shard_sizes"):
                if existing.get(key) != record[key]:
                    raise CollectionError(
                        f"checkpoint at {self.checkpoint_dir} was written with a "
                        f"different {key} ({existing.get(key)} != {record[key]}); "
                        "refusing to resume across a sharding-layout change"
                    )
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._layout_path.write_text(json.dumps(record, indent=2) + "\n")

    # -- execution ---------------------------------------------------------------

    def _shard_args(self, shard: Shard, resume: bool) -> tuple:
        windows = tuple(self.plan.windows[i] for i in shard.indices)
        return (windows, self.backend, self.retry, self._shard_dir(shard), resume)

    def run(self, resume: bool = False) -> CampaignResult:
        """Collect every shard and merge results back into plan order.

        The merged :class:`CampaignResult` is indistinguishable from a
        serial :meth:`MeasurementCampaign.run` of the same plan — same
        traces, same per-window outcomes — for any conforming source.
        """
        self._prepare_checkpoint(resume)
        _log.debug(
            "collecting %d windows in %d shards across %d workers",
            len(self.plan.windows), len(self.shards), self.workers,
        )
        results: dict[int, tuple] = {}
        with span(
            "parallel.run",
            n_windows=len(self.plan.windows),
            n_shards=len(self.shards),
            workers=self.workers,
        ):
            if self.workers == 1 or len(self.shards) <= 1:
                for shard in self.shards:
                    results[shard.shard_id] = _collect_shard(
                        *self._shard_args(shard, resume)
                    )
                # In-process shards share one source instance, so per-shard
                # tallies are cumulative snapshots: keep only the final one.
                self.fault_stats = _source_fault_stats(self.backend)
            else:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(self.shards))
                ) as pool:
                    futures = {
                        pool.submit(
                            _collect_shard, *self._shard_args(shard, resume)
                        ): shard
                        for shard in self.shards
                    }
                    for future in as_completed(futures):
                        results[futures[future].shard_id] = future.result()
                self._aggregate_fault_stats(results)
            self._merge_telemetry(results)
        return self._merge(results)

    def _aggregate_fault_stats(self, results: dict[int, tuple]) -> None:
        totals: dict[str, int] = {}
        seen = False
        for _, _, stats, _ in results.values():
            if stats is None:
                continue
            seen = True
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        self.fault_stats = totals if seen else None

    def _merge_telemetry(self, results: dict[int, tuple]) -> None:
        """Fold every shard's telemetry snapshot into the ambient registry.

        Merging is commutative, but shards fold in shard-id order anyway
        so any future order-sensitive consumer sees a stable sequence.
        """
        registry = get_registry()
        registry.counter("parallel.shards_completed", "campaign shards merged").inc(
            len(results)
        )
        for shard_id in sorted(results):
            registry.merge_snapshot(results[shard_id][3])

    def _merge(self, results: dict[int, tuple]) -> CampaignResult:
        n = len(self.plan.windows)
        outcomes: list[WindowOutcome | None] = [None] * n
        traces: list[dict[str, CounterTrace] | None] = [None] * n
        for shard in self.shards:
            shard_outcomes, shard_traces, _, _ = results[shard.shard_id]
            for local, global_index in enumerate(shard.indices):
                outcome = shard_outcomes[local]
                outcomes[global_index] = WindowOutcome(
                    index=global_index,
                    window=outcome.window,
                    status=outcome.status,
                    attempts=outcome.attempts,
                    error=outcome.error,
                )
                traces[global_index] = shard_traces[local]
        missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise CollectionError(
                f"shard merge left {len(missing)} windows uncovered "
                f"(first: {missing[:5]}) — sharding must partition the plan"
            )
        return CampaignResult(plan=self.plan, traces=traces, outcomes=outcomes)
