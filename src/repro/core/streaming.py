"""Streaming on-switch analysis.

Sec 4.2: "Due to data retention limitations, storing all samples of all
counters over 24 hours was not feasible" — the full dataset would have
been hundreds of terabytes.  An alternative the paper's design points to
is reducing data *on the switch CPU*: classify samples hot/cold as they
are read and keep only O(1)-size burst statistics.  This module provides
that: an online burst detector with a logarithmic duration histogram and
streaming transition counts, so the Table 2 / Fig 3 statistics of an
arbitrarily long run fit in a few hundred bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.markov import TransitionMatrix
from repro.errors import AnalysisError, ConfigError


@dataclass(slots=True)
class StreamingBurstStats:
    """O(1)-memory burst statistics maintained sample by sample."""

    interval_ns: int
    threshold: float = 0.5
    #: log2 histogram of burst durations in sampling periods:
    #: bucket k counts bursts of length in [2^k, 2^(k+1))
    duration_buckets: list = field(default_factory=lambda: [0] * 24)
    n_samples: int = 0
    n_hot: int = 0
    n_bursts: int = 0
    transitions: list = field(default_factory=lambda: [[0, 0], [0, 0]])
    _current_run: int = 0
    _previous_hot: int = -1  # -1 = no sample yet

    def update(self, utilization: float) -> None:
        """Feed one sample's utilization."""
        hot = utilization > self.threshold
        self.n_samples += 1
        if hot:
            self.n_hot += 1
            self._current_run += 1
        elif self._current_run:
            self._close_burst()
        if self._previous_hot >= 0:
            self.transitions[self._previous_hot][int(hot)] += 1
        self._previous_hot = int(hot)

    def update_many(self, utilization: np.ndarray) -> None:
        for value in np.asarray(utilization, dtype=np.float64):
            self.update(float(value))

    def _close_burst(self) -> None:
        bucket = min(len(self.duration_buckets) - 1, self._current_run.bit_length() - 1)
        self.duration_buckets[bucket] += 1
        self.n_bursts += 1
        self._current_run = 0

    def finalize(self) -> None:
        """Close an open burst at the end of the measurement window."""
        if self._current_run:
            self._close_burst()

    def merge(self, other: "StreamingBurstStats") -> None:
        """Fold another window's *finalized* statistics into this one.

        This is the shard-join operation: per-window stats collected by
        independent shards combine into campaign totals (buckets,
        sample/burst counts, and transition counts all sum).  The windows
        are treated as independent streams — no transition is synthesised
        across the seam, and a burst touching a window edge counts with
        the length observed inside its own window, which is exactly how
        separate measurement windows already behave.  Both sides must be
        finalized (no open run) so no burst is silently dropped.
        """
        if self.interval_ns != other.interval_ns or self.threshold != other.threshold:
            raise AnalysisError(
                "cannot merge burst stats with different interval/threshold "
                f"({self.interval_ns}ns/{self.threshold} vs "
                f"{other.interval_ns}ns/{other.threshold})"
            )
        if len(self.duration_buckets) != len(other.duration_buckets):
            raise AnalysisError("cannot merge burst stats with different bucket counts")
        if self._current_run or other._current_run:
            raise AnalysisError("finalize() both stats before merging")
        for bucket, count in enumerate(other.duration_buckets):
            self.duration_buckets[bucket] += count
        self.n_samples += other.n_samples
        self.n_hot += other.n_hot
        self.n_bursts += other.n_bursts
        for row in range(2):
            for col in range(2):
                self.transitions[row][col] += other.transitions[row][col]

    # -- derived statistics -----------------------------------------------------

    @property
    def hot_fraction(self) -> float:
        if self.n_samples == 0:
            return 0.0
        return self.n_hot / self.n_samples

    def duration_quantile_ns(self, q: float) -> float:
        """Approximate burst-duration quantile from the log2 histogram.

        Resolution is one octave — enough to place p90 on Fig 3's log
        axis, at a millionth of the storage of raw samples.
        """
        if not 0.0 < q <= 1.0:
            raise AnalysisError("quantile must be in (0, 1]")
        if self.n_bursts == 0:
            raise AnalysisError("no bursts observed")
        target = q * self.n_bursts
        seen = 0
        for bucket, count in enumerate(self.duration_buckets):
            seen += count
            if seen >= target:
                # upper edge of the bucket, in time units
                return float((2 ** (bucket + 1) - 1) * self.interval_ns)
        return float((2 ** len(self.duration_buckets)) * self.interval_ns)

    def transition_matrix(self) -> TransitionMatrix:
        """The same MLE Table 2 computes, from streaming counts."""
        (c00, c01), (c10, c11) = self.transitions
        from0 = c00 + c01
        from1 = c10 + c11
        return TransitionMatrix(
            p00=c00 / from0 if from0 else float("nan"),
            p01=c01 / from0 if from0 else float("nan"),
            p10=c10 / from1 if from1 else float("nan"),
            p11=c11 / from1 if from1 else float("nan"),
            counts=((c00, c01), (c10, c11)),
        )

    def memory_bytes(self) -> int:
        """Upper bound on the state size shipped to the collector."""
        return 8 * (len(self.duration_buckets) + 8)


class ReservoirSampler:
    """Uniform reservoir of raw samples for spot-check distributions.

    Complements :class:`StreamingBurstStats`: keeps an unbiased
    fixed-size sample of per-interval utilization so the collector can
    still draw Fig 6-style CDFs without storing the full stream.
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity <= 0:
            raise ConfigError("reservoir capacity must be positive")
        self.capacity = capacity
        self.rng = rng
        self._reservoir: list[float] = []
        self.n_seen = 0

    def offer(self, value: float) -> None:
        self.n_seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(value)
            return
        index = int(self.rng.integers(0, self.n_seen))
        if index < self.capacity:
            self._reservoir[index] = value

    def offer_many(self, values: np.ndarray) -> None:
        for value in np.asarray(values, dtype=np.float64):
            self.offer(float(value))

    @property
    def sample(self) -> np.ndarray:
        return np.asarray(self._reservoir)
