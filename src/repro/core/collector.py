"""Collector service.

The switch CPU "batches the samples before sending them to a distributed
collector service that is both fine-grained and scalable" (Sec 4.1).  We
model the collector as an in-process sink with explicit batching, so the
tests can assert on batching behaviour and the campaign code can account
for data volume (the paper's 720 windows totalled 250 GB).

The pending queue is optionally *bounded*: production collectors see
backpressure, and a bounded queue with an explicit drop policy turns
"collector fell behind" into counted, analyzable sample loss (gaps with
true timestamps) instead of unbounded memory growth.

Telemetry: drops, shipped batches/bytes, and the pending-queue
high-water mark are mirrored into :mod:`repro.telemetry` —
``collector.samples_dropped`` / ``.batches_shipped`` / ``.bytes_shipped``
counters and the ``collector.queue_depth_high_water`` gauge — so
"collector fell behind" is a scrapeable number, not just trace metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.counters import CounterSpec
from repro.core.samples import CounterTrace
from repro.errors import CollectionError, ConfigError, CounterError
from repro.telemetry.metrics import get_registry

#: Rough wire size of one sample record: 8-byte timestamp + 8-byte value
#: per scalar (histogram counters count one value per bin).
_BYTES_PER_SCALAR = 16

#: What to do when a bounded pending queue overflows.
DROP_POLICIES = ("drop_newest", "drop_oldest", "error")


@dataclass(slots=True)
class _Stream:
    spec: CounterSpec
    timestamps: list[int] = field(default_factory=list)
    values: list = field(default_factory=list)
    pending: int = 0
    #: drops since the stream was last (re)attached — feeds the trace's
    #: per-window ``samples_dropped`` meta
    dropped: int = 0
    #: lifetime drops across reattaches — feeds ``dropped_count`` and the
    #: telemetry counter, and must never reset (the PR-1 drop tally was
    #: silently zeroed when a stream was reattached for a new window)
    dropped_total: int = 0
    pending_high_water: int = 0


class CollectorService:
    """Accumulates samples per counter, flushing in batches.

    Parameters
    ----------
    batch_size:
        Number of samples the switch CPU buffers per counter before
        shipping a batch to the collector.
    queue_capacity:
        Bound on unshipped samples per counter.  ``None`` (default) keeps
        the historical unbounded behaviour.
    drop_policy:
        On overflow: ``"drop_newest"`` discards the incoming sample,
        ``"drop_oldest"`` evicts the oldest unshipped sample, ``"error"``
        raises :class:`~repro.errors.CollectionError`.  Dropped samples
        leave gaps with true timestamps, which the gap-aware analysis
        handles downstream.
    ship_should_fail:
        Optional fault hook ``(counter_name, batch_index) -> bool``; a
        True return makes that batch ship fail (samples stay pending, so
        sustained failures exercise the bounded queue).
    """

    def __init__(
        self,
        batch_size: int = 512,
        queue_capacity: int | None = None,
        drop_policy: str = "drop_newest",
        ship_should_fail: Callable[[str, int], bool] | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ConfigError("batch size must be positive")
        if queue_capacity is not None and queue_capacity <= 0:
            raise ConfigError("queue capacity must be positive")
        if drop_policy not in DROP_POLICIES:
            raise ConfigError(f"drop policy {drop_policy!r} not in {DROP_POLICIES}")
        self.batch_size = batch_size
        self.queue_capacity = queue_capacity
        self.drop_policy = drop_policy
        self.ship_should_fail = ship_should_fail
        self._streams: dict[str, _Stream] = {}
        self.batches_shipped = 0
        self.bytes_shipped = 0
        self.samples_dropped = 0
        self.ship_failures = 0

    def register(self, spec: CounterSpec, reattach: bool = False) -> None:
        """Register a counter's stream, or with ``reattach=True`` reset an
        existing stream's sample buffers for a new collection window.

        Reattaching clears buffered samples and the per-window drop
        count but *preserves* the lifetime drop tally
        (:meth:`dropped_count`, ``samples_dropped``, and the telemetry
        counter keep accumulating), so a collector reused across windows
        reports true cumulative loss.
        """
        existing = self._streams.get(spec.name)
        if existing is not None:
            if not reattach:
                raise CounterError(f"counter {spec.name!r} registered twice")
            if existing.spec != spec:
                raise CounterError(
                    f"cannot reattach counter {spec.name!r} with a different spec"
                )
            existing.timestamps.clear()
            existing.values.clear()
            existing.pending = 0
            existing.dropped = 0
            existing.pending_high_water = 0
            return
        self._streams[spec.name] = _Stream(spec=spec)

    def record(self, name: str, timestamp_ns: int, value: int | tuple[int, ...]) -> None:
        """Append one sample to a counter's stream."""
        try:
            stream = self._streams[name]
        except KeyError:
            raise CounterError(f"record for unregistered counter {name!r}") from None
        if self.queue_capacity is not None and stream.pending >= self.queue_capacity:
            if self.drop_policy == "error":
                raise CollectionError(
                    f"collector queue overflow on {name!r} "
                    f"({stream.pending} pending >= capacity {self.queue_capacity})"
                )
            if self.drop_policy == "drop_newest":
                self._count_drop(stream)
                return
            # drop_oldest: evict the oldest unshipped sample to make room.
            oldest = len(stream.timestamps) - stream.pending
            del stream.timestamps[oldest]
            del stream.values[oldest]
            stream.pending -= 1
            self._count_drop(stream)
        stream.timestamps.append(timestamp_ns)
        stream.values.append(value)
        stream.pending += 1
        if stream.pending > stream.pending_high_water:
            stream.pending_high_water = stream.pending
        if stream.pending >= self.batch_size:
            self._ship(stream)

    def _count_drop(self, stream: _Stream) -> None:
        stream.dropped += 1
        stream.dropped_total += 1
        self.samples_dropped += 1
        get_registry().counter(
            "collector.samples_dropped",
            "samples lost to bounded-queue overflow, lifetime",
        ).inc()

    def _ship(self, stream: _Stream, force: bool = False) -> None:
        if (
            not force
            and self.ship_should_fail is not None
            and self.ship_should_fail(stream.spec.name, self.batches_shipped)
        ):
            self.ship_failures += 1
            get_registry().counter("collector.ship_failures").inc()
            return
        scalars = stream.pending
        value = stream.values[-1] if stream.values else 0
        width = len(value) if isinstance(value, tuple) else 1
        batch_bytes = scalars * width * _BYTES_PER_SCALAR
        self.bytes_shipped += batch_bytes
        self.batches_shipped += 1
        stream.pending = 0
        registry = get_registry()
        registry.counter("collector.batches_shipped").inc()
        registry.counter("collector.bytes_shipped").inc(batch_bytes)

    @property
    def counter_names(self) -> list[str]:
        return list(self._streams)

    def sample_count(self, name: str) -> int:
        return len(self._streams[name].timestamps)

    def dropped_count(self, name: str) -> int:
        """Lifetime samples dropped from one counter's stream by the
        bounded queue (survives :meth:`register` reattaches)."""
        return self._streams[name].dropped_total

    @property
    def queue_depth_high_water(self) -> int:
        """Highest pending-sample depth any stream has reached."""
        if not self._streams:
            return 0
        return max(stream.pending_high_water for stream in self._streams.values())

    def finalize(self) -> dict[str, CounterTrace]:
        """Flush everything and return one trace per counter.

        The final flush bypasses the ship-failure hook: finalize models
        draining on shutdown, so remaining pending samples always land in
        the returned traces (only queue overflow loses data).
        """
        traces: dict[str, CounterTrace] = {}
        for name, stream in self._streams.items():
            if stream.pending:
                self._ship(stream, force=True)
            values = np.asarray(stream.values)
            kind = stream.spec.value_kind
            meta = {"samples_dropped": stream.dropped} if stream.dropped else {}
            traces[name] = CounterTrace(
                timestamps_ns=np.asarray(stream.timestamps, dtype=np.int64),
                values=values,
                kind=kind,
                name=name,
                rate_bps=stream.spec.rate_bps,
                meta=meta,
            )
        get_registry().gauge(
            "collector.queue_depth_high_water",
            "highest pending-sample depth reached by any stream",
        ).set_max(self.queue_depth_high_water)
        return traces
