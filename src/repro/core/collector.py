"""Collector service.

The switch CPU "batches the samples before sending them to a distributed
collector service that is both fine-grained and scalable" (Sec 4.1).  We
model the collector as an in-process sink with explicit batching, so the
tests can assert on batching behaviour and the campaign code can account
for data volume (the paper's 720 windows totalled 250 GB).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.counters import CounterSpec
from repro.core.samples import CounterTrace
from repro.errors import ConfigError, CounterError

#: Rough wire size of one sample record: 8-byte timestamp + 8-byte value
#: per scalar (histogram counters count one value per bin).
_BYTES_PER_SCALAR = 16


@dataclass(slots=True)
class _Stream:
    spec: CounterSpec
    timestamps: list[int] = field(default_factory=list)
    values: list = field(default_factory=list)
    pending: int = 0


class CollectorService:
    """Accumulates samples per counter, flushing in batches.

    Parameters
    ----------
    batch_size:
        Number of samples the switch CPU buffers per counter before
        shipping a batch to the collector.
    """

    def __init__(self, batch_size: int = 512) -> None:
        if batch_size <= 0:
            raise ConfigError("batch size must be positive")
        self.batch_size = batch_size
        self._streams: dict[str, _Stream] = {}
        self.batches_shipped = 0
        self.bytes_shipped = 0

    def register(self, spec: CounterSpec) -> None:
        if spec.name in self._streams:
            raise CounterError(f"counter {spec.name!r} registered twice")
        self._streams[spec.name] = _Stream(spec=spec)

    def record(self, name: str, timestamp_ns: int, value: int | tuple[int, ...]) -> None:
        """Append one sample to a counter's stream."""
        try:
            stream = self._streams[name]
        except KeyError:
            raise CounterError(f"record for unregistered counter {name!r}") from None
        stream.timestamps.append(timestamp_ns)
        stream.values.append(value)
        stream.pending += 1
        if stream.pending >= self.batch_size:
            self._ship(stream)

    def _ship(self, stream: _Stream) -> None:
        scalars = stream.pending
        value = stream.values[-1] if stream.values else 0
        width = len(value) if isinstance(value, tuple) else 1
        self.bytes_shipped += scalars * width * _BYTES_PER_SCALAR
        self.batches_shipped += 1
        stream.pending = 0

    @property
    def counter_names(self) -> list[str]:
        return list(self._streams)

    def sample_count(self, name: str) -> int:
        return len(self._streams[name].timestamps)

    def finalize(self) -> dict[str, CounterTrace]:
        """Flush everything and return one trace per counter."""
        traces: dict[str, CounterTrace] = {}
        for name, stream in self._streams.items():
            if stream.pending:
                self._ship(stream)
            values = np.asarray(stream.values)
            kind = stream.spec.value_kind
            traces[name] = CounterTrace(
                timestamps_ns=np.asarray(stream.timestamps, dtype=np.int64),
                values=values,
                kind=kind,
                name=name,
                rate_bps=stream.spec.rate_bps,
            )
        return traces
