"""Scalar reference kernels for the vectorized analysis hot paths.

The production analysis pipeline runs on numpy kernels (wrap-corrected
deltas, gap masks, run-length extraction, ECDF construction/evaluation).
This module holds the *scalar oracles*: deliberately naive pure-Python
loop implementations of the same kernels, kept as executable
specifications.  The equivalence suite
(``tests/property/test_kernel_equivalence.py``) asserts the vectorized
kernels match these oracles exactly — dtype and all — on arbitrary
inputs, so the fast paths can be optimized freely without silently
changing results.

Setting ``REPRO_SCALAR=1`` in the environment routes every dispatching
call site through the oracles instead, which is the escape hatch for
bisecting a suspected vectorization bug in a full pipeline run (and the
baseline for the throughput benchmarks in ``benchmarks/bench_parallel.py``).
"""

from __future__ import annotations

import os

import numpy as np

#: Environment variable selecting the scalar reference kernels.
SCALAR_ENV = "REPRO_SCALAR"


def scalar_enabled() -> bool:
    """Whether the ``REPRO_SCALAR=1`` escape hatch is active.

    Read per call (not cached at import) so tests and bisection sessions
    can toggle it without reloading modules.
    """
    return os.environ.get(SCALAR_ENV, "") == "1"


# -- cumulative-counter deltas ---------------------------------------------------


def scalar_deltas(values: np.ndarray, wrap_bits: int | None = None) -> np.ndarray:
    """Reference per-interval increments with wraparound correction.

    Matches ``np.diff(values, axis=0)`` plus the ``+2**wrap_bits`` fixup
    of negative diffs, element by element.
    """
    values = np.asarray(values)
    n = len(values)
    n_out = max(n - 1, 0)
    # One subtraction fixes the output dtype to numpy's promotion rule,
    # exactly as np.diff would choose it.
    if n >= 2:
        dtype = (values[1:2] - values[0:1]).dtype
    else:
        dtype = values.dtype
    out = np.zeros((n_out,) + values.shape[1:], dtype=dtype)
    if n_out == 0:
        return out
    period = None if wrap_bits is None else dtype.type(1 << int(wrap_bits))
    flat_values = values.reshape(n, -1)
    flat_out = out.reshape(n_out, -1)
    for i in range(n_out):
        for j in range(flat_values.shape[1]):
            delta = flat_values[i + 1, j] - flat_values[i, j]
            if period is not None and delta < 0:
                delta = delta + period
            flat_out[i, j] = delta
    return out


# -- gap masks -------------------------------------------------------------------


def scalar_missing_interval_mask(
    interval_durations_ns: np.ndarray, nominal_interval_ns: int, tolerance: float
) -> np.ndarray:
    """Reference gap mask: interval longer than ``tolerance`` nominals."""
    intervals = np.asarray(interval_durations_ns)
    out = np.zeros(len(intervals), dtype=bool)
    cutoff = tolerance * nominal_interval_ns
    for i in range(len(intervals)):
        out[i] = intervals[i] > cutoff
    return out


# -- run-length extraction -------------------------------------------------------


def scalar_run_lengths(mask: np.ndarray, value: bool) -> np.ndarray:
    """Reference lengths of maximal runs equal to ``value``, in order."""
    mask = np.asarray(mask, dtype=bool)
    lengths: list[int] = []
    current = 0
    for bit in mask.tolist():
        if bit == value:
            current += 1
        elif current:
            lengths.append(current)
            current = 0
    if current:
        lengths.append(current)
    return np.asarray(lengths, dtype=np.int64)


def scalar_interior_run_lengths(mask: np.ndarray, value: bool) -> np.ndarray:
    """Reference run lengths excluding runs touching either boundary."""
    mask = np.asarray(mask, dtype=bool)
    lengths = scalar_run_lengths(mask, value)
    if len(lengths) == 0:
        return lengths
    start = 1 if bool(mask[0]) == value else 0
    stop = len(lengths) - 1 if bool(mask[-1]) == value else len(lengths)
    if stop <= start:
        return np.zeros(0, dtype=np.int64)
    return lengths[start:stop]


def scalar_hot_mask(utilization: np.ndarray, threshold: float) -> np.ndarray:
    """Reference hot/not-hot classification."""
    utilization = np.asarray(utilization, dtype=np.float64)
    out = np.zeros(len(utilization), dtype=bool)
    for i in range(len(utilization)):
        out[i] = utilization[i] > threshold
    return out


# -- empirical CDF ---------------------------------------------------------------


def scalar_sorted(samples: np.ndarray) -> np.ndarray:
    """Reference CDF construction: the sorted sample."""
    samples = np.asarray(samples, dtype=np.float64)
    return np.asarray(sorted(samples.tolist()), dtype=np.float64)


def scalar_ecdf_probs(sorted_samples: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Reference right-continuous ECDF evaluation: P(X <= x) per query.

    Matches ``np.searchsorted(sorted, xs, side="right") / n``.
    """
    sorted_samples = np.asarray(sorted_samples, dtype=np.float64)
    xs = np.asarray(xs, dtype=np.float64)
    n = len(sorted_samples)
    values = sorted_samples.tolist()
    probs = []
    for x in xs.reshape(-1).tolist():
        count = 0
        for value in values:
            if value <= x:
                count += 1
            else:
                break
        probs.append(count / n)
    return np.asarray(probs, dtype=np.float64).reshape(xs.shape)
