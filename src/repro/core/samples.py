"""Sample containers.

A :class:`CounterTrace` is the unit of data everything downstream
consumes: a timestamped series of counter readings for one counter
instance.  Cumulative counters (bytes, per-bin packet counts) are
differenced into per-interval deltas; gauge counters (peak buffer
occupancy) are used as-is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import (
    scalar_deltas,
    scalar_enabled,
    scalar_missing_interval_mask,
)
from repro.errors import AnalysisError
from repro.units import NS_PER_S


class ValueKind(enum.Enum):
    """How successive readings relate."""

    CUMULATIVE = "cumulative"  # monotone counter; diff to get per-interval
    GAUGE = "gauge"  # instantaneous / watermark value per interval


@dataclass(slots=True)
class CounterTrace:
    """One counter's sampled time series.

    Parameters
    ----------
    timestamps_ns:
        Sample times (int64 nanoseconds, strictly increasing).
    values:
        Counter readings.  For ``CUMULATIVE`` kind these are monotone
        non-decreasing raw counter values; for ``GAUGE`` they are the
        per-interval reading (e.g. peak buffer bytes since last read).
        2-D values (n_samples x n_bins) hold histogram counters.
    kind:
        Cumulative or gauge semantics.
    name:
        Counter identity, e.g. ``"down3.tx_bytes"``.
    rate_bps:
        Line rate of the port the counter belongs to; needed to turn byte
        deltas into utilization.  Zero when not applicable.
    """

    timestamps_ns: np.ndarray
    values: np.ndarray
    kind: ValueKind
    name: str = ""
    rate_bps: float = 0.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.timestamps_ns = np.asarray(self.timestamps_ns, dtype=np.int64)
        self.values = np.asarray(self.values)
        if self.timestamps_ns.ndim != 1:
            raise AnalysisError("timestamps must be one-dimensional")
        if len(self.timestamps_ns) != len(self.values):
            raise AnalysisError(
                f"{len(self.timestamps_ns)} timestamps vs {len(self.values)} values"
            )
        if len(self.timestamps_ns) > 1:
            if np.any(np.diff(self.timestamps_ns) <= 0):
                raise AnalysisError("timestamps must be strictly increasing")

    # -- basic shape ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps_ns)

    @property
    def n_intervals(self) -> int:
        """Number of between-sample intervals."""
        return max(0, len(self) - 1) if self.kind is ValueKind.CUMULATIVE else len(self)

    @property
    def duration_ns(self) -> int:
        if len(self) < 2:
            return 0
        return int(self.timestamps_ns[-1] - self.timestamps_ns[0])

    # -- derived series ---------------------------------------------------------

    def interval_durations_ns(self) -> np.ndarray:
        """Length of each between-sample interval (cumulative kind)."""
        return np.diff(self.timestamps_ns)

    def deltas(self, wrap_bits: int | None = None) -> np.ndarray:
        """Per-interval increments of a cumulative counter.

        ``wrap_bits`` (or a ``counter_bits`` entry in :attr:`meta`, set by
        whatever produced the raw readings) declares the hardware counter
        width: real ASIC byte counters are 32-bit registers, so the raw
        value wraps every ~4 GB.  Wraparound is corrected *exactly* by
        adding ``2**wrap_bits`` to each negative diff — exact as long as
        no single interval moves the counter by a full period, which at
        line rate takes seconds against microsecond intervals.
        """
        if self.kind is not ValueKind.CUMULATIVE:
            raise AnalysisError(f"deltas undefined for {self.kind} trace {self.name!r}")
        if wrap_bits is None:
            wrap_bits = self.meta.get("counter_bits")
        if wrap_bits is not None and not 1 <= int(wrap_bits) <= 62:
            raise AnalysisError(
                f"counter width {wrap_bits} not correctable in int64 arithmetic"
            )
        if scalar_enabled():
            deltas = scalar_deltas(self.values, wrap_bits)
        else:
            deltas = np.diff(self.values, axis=0)
            if wrap_bits is not None:
                period = np.int64(1) << int(wrap_bits)
                deltas = np.where(deltas < 0, deltas + period, deltas)
        if np.any(deltas < 0):
            raise AnalysisError(f"cumulative counter {self.name!r} went backwards")
        return deltas

    # -- gap awareness ------------------------------------------------------------

    def nominal_interval_ns(self) -> int:
        """The trace's target sampling interval (median observed gap)."""
        intervals = self.interval_durations_ns()
        if len(intervals) == 0:
            raise AnalysisError(f"trace {self.name!r} too short to infer an interval")
        return int(np.median(intervals))

    def missing_interval_mask(
        self, nominal_interval_ns: int | None = None, tolerance: float = 1.5
    ) -> np.ndarray:
        """Boolean mask over between-sample intervals: True where the
        interval spans one or more missed sampling instants.

        An interval longer than ``tolerance`` times the nominal interval
        is a gap — the sampler missed instants there, so per-interval
        statistics derived from it describe an average over the gap, not
        one sampling period.
        """
        if tolerance < 1.0:
            raise AnalysisError(f"tolerance {tolerance} must be >= 1")
        nominal = nominal_interval_ns or self.nominal_interval_ns()
        if nominal <= 0:
            raise AnalysisError("nominal interval must be positive")
        if scalar_enabled():
            return scalar_missing_interval_mask(
                self.interval_durations_ns(), nominal, tolerance
            )
        return self.interval_durations_ns() > tolerance * nominal

    def n_missing_instants(self, nominal_interval_ns: int | None = None) -> int:
        """Estimated count of sampling instants lost to gaps."""
        intervals = self.interval_durations_ns()
        if len(intervals) == 0:
            return 0
        nominal = nominal_interval_ns or self.nominal_interval_ns()
        per_gap = np.rint(intervals / nominal).astype(np.int64) - 1
        return int(np.clip(per_gap, 0, None).sum())

    def coverage_fraction(self, nominal_interval_ns: int | None = None) -> float:
        """Fraction of scheduled sampling instants actually observed."""
        intervals = self.interval_durations_ns()
        if len(intervals) == 0:
            return 1.0
        missing = self.n_missing_instants(nominal_interval_ns)
        return len(intervals) / (len(intervals) + missing)

    def split_at_gaps(
        self, nominal_interval_ns: int | None = None, tolerance: float = 1.5
    ) -> list["CounterTrace"]:
        """Contiguous sub-traces separated by missing intervals.

        Gap-tolerant analyses work segment by segment so a gap can never
        fuse two bursts (or fabricate one long one) across missing data.
        A trace with no gaps comes back whole.
        """
        mask = self.missing_interval_mask(nominal_interval_ns, tolerance)
        if not mask.any():
            return [self]
        boundaries = np.flatnonzero(mask) + 1  # first sample of each new segment
        segments: list[CounterTrace] = []
        start = 0
        for stop in [*boundaries.tolist(), len(self)]:
            if stop - start >= 2 or (self.kind is not ValueKind.CUMULATIVE and stop > start):
                segments.append(
                    CounterTrace(
                        timestamps_ns=self.timestamps_ns[start:stop],
                        values=self.values[start:stop],
                        kind=self.kind,
                        name=self.name,
                        rate_bps=self.rate_bps,
                        meta=dict(self.meta),
                    )
                )
            start = stop
        return segments

    def rates_bps(self) -> np.ndarray:
        """Per-interval average throughput in bits/s (byte counters)."""
        deltas = self.deltas()
        if deltas.ndim != 1:
            raise AnalysisError("rates_bps needs a scalar byte counter")
        dt = self.interval_durations_ns()
        return deltas * 8.0 * NS_PER_S / dt

    def utilization(self) -> np.ndarray:
        """Per-interval utilization in [0, ~1] (byte counters).

        Values can marginally exceed 1.0 when a sample lands mid-packet;
        callers that need a hard bound should clip.
        """
        if self.rate_bps <= 0:
            raise AnalysisError(f"trace {self.name!r} has no line rate set")
        return self.rates_bps() / self.rate_bps

    def gauge_values(self) -> np.ndarray:
        if self.kind is not ValueKind.GAUGE:
            raise AnalysisError(f"gauge_values undefined for {self.kind}")
        return self.values

    # -- slicing -----------------------------------------------------------------

    def slice_time(self, start_ns: int, end_ns: int) -> "CounterTrace":
        """Samples with start_ns <= t < end_ns (a campaign window)."""
        mask = (self.timestamps_ns >= start_ns) & (self.timestamps_ns < end_ns)
        return CounterTrace(
            timestamps_ns=self.timestamps_ns[mask],
            values=self.values[mask],
            kind=self.kind,
            name=self.name,
            rate_bps=self.rate_bps,
            meta=dict(self.meta),
        )

    def decimate(self, factor: int) -> "CounterTrace":
        """Keep every ``factor``-th sample.

        For cumulative counters this is exactly what polling at a
        ``factor``-times-coarser interval would have recorded (counter
        values are lossless across skipped reads), so it is the honest
        way to produce e.g. a 100 µs view from a 25 µs trace.
        """
        if factor <= 0:
            raise AnalysisError("decimation factor must be positive")
        return CounterTrace(
            timestamps_ns=self.timestamps_ns[::factor],
            values=self.values[::factor],
            kind=self.kind,
            name=self.name,
            rate_bps=self.rate_bps,
            meta=dict(self.meta),
        )

    @staticmethod
    def regular(
        interval_ns: int,
        values: np.ndarray,
        kind: ValueKind,
        name: str = "",
        rate_bps: float = 0.0,
        start_ns: int = 0,
    ) -> "CounterTrace":
        """Build a trace on a perfectly regular sampling grid."""
        n = len(values)
        timestamps = start_ns + interval_ns * np.arange(n, dtype=np.int64)
        return CounterTrace(
            timestamps_ns=timestamps,
            values=values,
            kind=kind,
            name=name,
            rate_bps=rate_bps,
        )
