"""Unit helpers and constants.

The simulator keeps time as integer nanoseconds to avoid floating-point
drift when accumulating microsecond-scale polling intervals over minutes
of simulated time.  Data sizes are bytes and rates are bits per second.
These helpers make call sites read like the paper: ``us(25)``,
``gbps(10)``, ``MTU``.
"""

from __future__ import annotations

# --- time (integer nanoseconds) ------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds, rounded to the nearest integer tick."""
    return round(value)


def us(value: float) -> int:
    """Microseconds expressed as integer nanoseconds."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Milliseconds expressed as integer nanoseconds."""
    return round(value * NS_PER_MS)


def seconds(value: float) -> int:
    """Seconds expressed as integer nanoseconds."""
    return round(value * NS_PER_S)


def to_seconds(time_ns: int) -> float:
    """Integer nanoseconds back to float seconds (analysis boundary)."""
    return time_ns / NS_PER_S


def to_us(time_ns: int) -> float:
    """Integer nanoseconds back to float microseconds."""
    return time_ns / NS_PER_US


# --- data rates (bits per second) -----------------------------------------


def kbps(value: float) -> float:
    return value * 1e3


def mbps(value: float) -> float:
    return value * 1e6


def gbps(value: float) -> float:
    return value * 1e9


def bytes_per_interval(rate_bps: float, interval_ns: int) -> float:
    """How many bytes a link at ``rate_bps`` carries in ``interval_ns``."""
    return rate_bps * interval_ns / NS_PER_S / 8.0


def utilization(bytes_sent: float, rate_bps: float, interval_ns: int) -> float:
    """Fraction of link capacity used over an interval (may exceed 1.0
    transiently when a counter batches reads across a miss)."""
    capacity = bytes_per_interval(rate_bps, interval_ns)
    if capacity <= 0:
        raise ValueError(f"non-positive capacity for rate={rate_bps}, interval={interval_ns}")
    return bytes_sent / capacity


def serialization_time_ns(size_bytes: int, rate_bps: float) -> int:
    """Time to put ``size_bytes`` on the wire at ``rate_bps``."""
    return round(size_bytes * 8 * NS_PER_S / rate_bps)


# --- packet sizes ----------------------------------------------------------

MTU = 1500
"""Ethernet MTU in bytes (payload + headers as counted by switch ASICs)."""

MIN_PACKET = 64
"""Minimum Ethernet frame size in bytes."""

MAX_FRAME = 1518
"""Largest countable Ethernet frame in bytes (1500 B MTU + 18 B of
header/FCS) — the upper edge of the largest ASIC RMON histogram bin.
Rack MTUs above this cannot be binned by the switch counters and are
rejected at configuration time."""

TCP_HEADER_OVERHEAD = 66
"""Ethernet + IP + TCP header bytes for a typical data-center packet."""
