"""Span-based tracing for the measurement pipeline.

A span is one timed stage — an experiment, a campaign run, one window's
collection — recorded with ``time.monotonic_ns`` start/duration and its
parent span, so a campaign's wall time decomposes the same way the
paper's Table 1 decomposes read cost.  Spans nest through an explicit
per-thread stack; the finished records export as JSON lines with a
header stamping the package version and git describe.

Tracing is opt-in: the module-level :func:`span` helper is a no-op until
a :class:`Tracer` is installed (the CLI installs one for
``--trace-out``), so instrumented code needs no conditionals and pays
one function call when tracing is off.

Tracers are process-local by design.  Campaign shards running in pool
workers do not trace (their wall time is visible in the parent's shard
spans and in the merged ``backend.*`` latency histograms); this keeps
span ids single-writer and the JSONL export append-only.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.errors import TelemetryError

#: Trace export schema version.
TRACE_VERSION = 1


class Span:
    """One in-flight (then finished) timed stage."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start_ns", "duration_ns")

    def __init__(
        self, span_id: int, parent_id: int | None, name: str, attrs: dict
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_ns = time.monotonic_ns()
        self.duration_ns: int | None = None

    def set_attr(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute while the span is open."""
        self.attrs[key] = value

    def as_record(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared stand-in yielded when no tracer is installed."""

    __slots__ = ()

    def set_attr(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; exports them as JSON lines.

    Span ids are unique per tracer; parent/child nesting follows the
    per-thread context stack, so concurrent threads (e.g. the campaign's
    window-timeout workers) produce interleaved but correctly-parented
    spans.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self.finished: list[dict] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = stack[-1].span_id if stack else None
        record = Span(span_id, parent, name, dict(attrs))
        stack.append(record)
        try:
            yield record
        except BaseException as exc:
            record.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            stack.pop()
            record.duration_ns = time.monotonic_ns() - record.start_ns
            with self._lock:
                self.finished.append(record.as_record())

    def export_jsonl(self, path: str | Path, header_extra: dict | None = None) -> Path:
        """Write a header line plus one JSON line per finished span.

        The header stamps the trace format version and whatever build
        info the caller passes (the CLI passes version + git describe).
        """
        from repro.telemetry.export import build_info

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {"kind": "header", "version": TRACE_VERSION, **build_info()}
        if header_extra:
            header.update(header_extra)
        with self._lock:
            records = list(self.finished)
        lines = [json.dumps(header)]
        lines.extend(json.dumps(record) for record in records)
        path.write_text("\n".join(lines) + "\n")
        return path


# -- the process-global tracer -----------------------------------------------------

_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    return _TRACER


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or with ``None`` remove) the ambient tracer; returns the
    previous one so tests can restore it."""
    global _TRACER
    if tracer is not None and not isinstance(tracer, Tracer):
        raise TelemetryError(f"expected a Tracer or None, got {type(tracer).__name__}")
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Span | _NullSpan]:
    """Time a stage under the ambient tracer; no-op when none installed."""
    tracer = _TRACER
    if tracer is None:
        yield _NULL_SPAN
        return
    with tracer.span(name, **attrs) as record:
        yield record
