"""Lightweight per-stage profiling hooks.

Sec 4.1 reports the framework's own CPU cost alongside its precision;
these hooks give the pipeline the same self-accounting: wrap a stage in
:func:`profile_stage` and its CPU time (user+system, via ``resource``),
wall time, and peak RSS land in the metrics registry as gauges —
``profile.<stage>.cpu_ns`` / ``.wall_ns`` / ``.peak_rss_bytes`` — plus
``.py_heap_peak_bytes`` when tracemalloc profiling is requested.

Profiling is opt-in (``set_profiling(True)``, the CLI's ``--profile``,
or ``REPRO_PROFILE=1``): when off, :func:`profile_stage` yields
immediately and touches neither ``resource`` nor the clock.  tracemalloc
is a further opt-in on top because its allocation hooks slow Python by
an order of magnitude — exactly the precision/cost trade the paper makes
explicit.
"""

from __future__ import annotations

import os
import sys
import time
from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.metrics import get_registry

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

_PROFILING = os.environ.get("REPRO_PROFILE", "") not in ("", "0")


def profiling_enabled() -> bool:
    return _PROFILING


def set_profiling(flag: bool) -> None:
    global _PROFILING
    _PROFILING = bool(flag)


def _cpu_ns() -> int:
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return time.process_time_ns()
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return int((usage.ru_utime + usage.ru_stime) * 1e9)


def _peak_rss_bytes() -> int:
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak if sys.platform == "darwin" else peak * 1024


@contextmanager
def profile_stage(stage: str, trace_malloc: bool = False) -> Iterator[None]:
    """Record one stage's CPU/wall/RSS cost into the metrics registry.

    ``trace_malloc=True`` additionally snapshots the Python heap's
    traced peak via :mod:`tracemalloc` (started/stopped around the stage
    when not already running).
    """
    if not _PROFILING:
        yield
        return
    registry = get_registry()
    started_tracemalloc = False
    tracemalloc = None
    if trace_malloc:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracemalloc = True
        else:
            tracemalloc.reset_peak()
    cpu_before = _cpu_ns()
    wall_before = time.monotonic_ns()
    try:
        yield
    finally:
        registry.gauge(f"profile.{stage}.wall_ns").set_max(
            time.monotonic_ns() - wall_before
        )
        registry.gauge(f"profile.{stage}.cpu_ns").set_max(_cpu_ns() - cpu_before)
        registry.gauge(f"profile.{stage}.peak_rss_bytes").set_max(_peak_rss_bytes())
        if trace_malloc and tracemalloc is not None:
            _current, peak = tracemalloc.get_traced_memory()
            registry.gauge(f"profile.{stage}.py_heap_peak_bytes").set_max(peak)
            if started_tracemalloc:
                tracemalloc.stop()
