"""repro.telemetry: metrics, spans, and profiling for the pipeline.

The paper's headline result is a measurement of the measurement system
itself — polling miss rates, read latencies, CPU cost (Sec 4.1,
Table 1).  This package applies that discipline to the reproduction
pipeline:

* :mod:`~repro.telemetry.metrics` — a process-local registry of
  monotonic counters, high-water gauges, and fixed-bucket ns-latency
  histograms, with snapshots that merge across
  ``ProcessPoolExecutor`` shards (counters sum, gauges max, histogram
  buckets sum), so serial and ``--workers N`` campaigns report the same
  aggregate numbers.
* :mod:`~repro.telemetry.spans` — context-manager spans with
  monotonic-ns timing and parent/child nesting, exported as JSONL.
* :mod:`~repro.telemetry.profiling` — opt-in per-stage CPU time and
  peak RSS (``resource``), plus tracemalloc heap peaks on request.
* :mod:`~repro.telemetry.export` — Prometheus text exposition and JSON
  snapshots, headers stamped with the package version + git describe.

The hard rule, enforced by ``tests/test_determinism_lint.py`` and the
backend-parity golden CRCs: telemetry may *read* wall clocks but never
feeds simulation state — traces are byte-identical with telemetry on,
off, serial, or sharded.
"""

from repro.telemetry.export import (
    build_info,
    git_describe,
    package_version,
    snapshot_with_header,
    to_prometheus,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.telemetry.metrics import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    enabled,
    get_registry,
    scoped_registry,
    set_enabled,
)
from repro.telemetry.profiling import profile_stage, profiling_enabled, set_profiling
from repro.telemetry.spans import Tracer, get_tracer, install_tracer, span

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_NS_BUCKETS",
    "get_registry",
    "scoped_registry",
    "set_enabled",
    "enabled",
    # spans
    "Tracer",
    "span",
    "get_tracer",
    "install_tracer",
    # profiling
    "profile_stage",
    "profiling_enabled",
    "set_profiling",
    # export
    "build_info",
    "package_version",
    "git_describe",
    "to_prometheus",
    "snapshot_with_header",
    "write_metrics_json",
    "write_metrics_prometheus",
]
