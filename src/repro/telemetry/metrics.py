"""Process-local metrics: counters, gauges, and ns-latency histograms.

The paper measures its own measurement plane — polling-loop miss rates,
read latencies, and CPU cost are first-class results (Sec 4.1, Table 1)
— so this pipeline carries the same discipline: every layer increments
metrics in a process-local :class:`MetricsRegistry`, and the registry's
:meth:`~MetricsRegistry.snapshot` / :meth:`~MetricsRegistry.merge_snapshot`
pair makes those metrics *mergeable across process shards* the same way
campaign traces already are.

Design rules
------------
* **Telemetry never feeds simulation state.**  Metrics may read wall
  clocks, but nothing in the data path reads a metric back, so traces
  stay byte-identical with telemetry on or off (the backend-parity
  golden CRCs hold either way).
* **Cheap when off, cheap when on.**  Instrumentation sites call
  :func:`get_registry` at use time; :func:`set_enabled` swaps in a
  null registry whose metric objects are shared no-op singletons.
  Even when enabled, nothing in a per-event hot loop touches the
  registry — engine/event costs are read off existing engine counters
  after a window completes.
* **Merge semantics.**  Counters are monotonic and *sum*; gauges are
  high-water marks and merge by *max*; histograms sum their fixed
  bucket counts.  Under that rule a serial campaign and a
  ``--workers N`` campaign report identical aggregate counters for the
  same plan (held by ``tests/telemetry/test_instrumentation.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

from repro.errors import TelemetryError

#: Snapshot schema version (bumped when the merge format changes).
SNAPSHOT_VERSION = 1

#: Default histogram buckets for nanosecond latencies: 1 us .. 100 s in
#: decades, wide enough for a 25 us ASIC read and a multi-second netsim
#: window alike.  Bucket ``i`` counts observations ``<= bounds[i]``;
#: anything larger lands in the implicit +Inf bucket.
DEFAULT_NS_BUCKETS: tuple[int, ...] = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
)


class Counter:
    """A monotonic counter.  Merges across shards by summation."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A high-water-mark gauge.  Merges across shards by max."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (cumulative-bucket exposition).

    Buckets are upper bounds in ascending order; an observation lands in
    the first bucket whose bound is >= the value, or in the implicit
    +Inf bucket.  ``sum``/``count`` track exact totals so the mean
    survives the bucketing.
    """

    __slots__ = ("name", "help", "bounds", "counts", "inf_count", "sum", "count")

    def __init__(
        self, name: str, help: str = "", bounds: tuple[int, ...] = DEFAULT_NS_BUCKETS
    ) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise TelemetryError(
                f"histogram {name!r} needs strictly increasing bucket bounds"
            )
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self.inf_count += 1
        else:
            self.counts[index] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Shared no-op registry installed when telemetry is disabled.

    Every accessor returns a shared do-nothing metric, so instrumented
    code pays one function call and nothing else.
    """

    def counter(self, name: str, help: str = "") -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "") -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, help: str = "", bounds: tuple[int, ...] = DEFAULT_NS_BUCKETS
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"version": SNAPSHOT_VERSION, "counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass

    def reset(self) -> None:
        pass

    def summary_line(self) -> str:
        return "telemetry disabled"


class MetricsRegistry:
    """Names -> metric objects, with mergeable snapshots.

    Metric names are dotted (``campaign.windows_ok``); the Prometheus
    exporter sanitises them to ``repro_campaign_windows_ok``.  A name is
    permanently bound to its first-registered type — re-registering
    under a different type raises :class:`~repro.errors.TelemetryError`
    instead of silently shadowing.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration ------------------------------------------------------------

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise TelemetryError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot re-register as a {kind}"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_unique(name, "counter")
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unique(name, "gauge")
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(
        self, name: str, help: str = "", bounds: tuple[int, ...] = DEFAULT_NS_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unique(name, "histogram")
            metric = self._histograms[name] = Histogram(name, help, bounds)
        elif metric.bounds != tuple(bounds):
            raise TelemetryError(
                f"histogram {name!r} re-registered with different buckets "
                f"({metric.bounds} != {tuple(bounds)})"
            )
        return metric

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-data copy of every metric, safe to pickle across
        process boundaries and feed to :meth:`merge_snapshot`."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "inf_count": h.inf_count,
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold one shard's snapshot into this registry.

        Counters sum, gauges take the max, histograms sum bucket counts.
        Merging is commutative and associative, so shard join order
        (``as_completed`` is nondeterministic) cannot change the result.
        """
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise TelemetryError(
                f"cannot merge telemetry snapshot version {version!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(float(value))
        for name, record in snapshot.get("histograms", {}).items():
            bounds = tuple(record["bounds"])
            histogram = self.histogram(name, bounds=bounds)
            counts = record["counts"]
            if len(counts) != len(histogram.counts):
                raise TelemetryError(
                    f"histogram {name!r} snapshot has {len(counts)} buckets, "
                    f"registry has {len(histogram.counts)}"
                )
            for index, count in enumerate(counts):
                histogram.counts[index] += int(count)
            histogram.inf_count += int(record["inf_count"])
            histogram.sum += record["sum"]
            histogram.count += int(record["count"])

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- reporting ---------------------------------------------------------------

    def summary_line(self) -> str:
        """One line for the CLI's ``-v`` diagnostics: headline pipeline
        counters when present, sizes otherwise."""
        parts = [
            f"{len(self._counters)} counters, {len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms"
        ]
        windows = [
            self._counters[key].value
            for key in (
                "campaign.windows_ok",
                "campaign.windows_degraded",
                "campaign.windows_failed",
            )
            if key in self._counters
        ]
        if len(windows) == 3:
            parts.append(
                "windows ok/degraded/failed {}/{}/{}".format(*windows)
            )
        for key, label in (
            ("sampler.instants_missed", "sampler misses"),
            ("collector.samples_dropped", "collector drops"),
            ("netsim.events_processed", "netsim events"),
            ("traceio.bytes_written", "trace bytes"),
        ):
            if key in self._counters:
                parts.append(f"{label} {self._counters[key].value}")
        return "telemetry: " + " | ".join(parts)


# -- the process-global registry ---------------------------------------------------

_NULL_REGISTRY = NullRegistry()
_REGISTRY: MetricsRegistry | NullRegistry = MetricsRegistry()
_ENABLED = True


def get_registry() -> MetricsRegistry | NullRegistry:
    """The ambient registry instrumentation sites write to.

    Resolved at call time (never cached by callers) so
    :func:`set_enabled` and :func:`scoped_registry` take effect
    everywhere at once.
    """
    return _REGISTRY


def enabled() -> bool:
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Enable or disable metric collection process-wide.

    Disabling swaps the ambient registry for a shared no-op registry;
    re-enabling restores a fresh real one (previous contents are kept
    only across enable -> enable transitions).
    """
    global _REGISTRY, _ENABLED
    if flag and not _ENABLED:
        _REGISTRY = MetricsRegistry()
    elif not flag and _ENABLED:
        _REGISTRY = _NULL_REGISTRY
    _ENABLED = flag


@contextmanager
def scoped_registry() -> Iterator["MetricsRegistry | NullRegistry"]:
    """Run a block against a fresh registry, restoring the previous one.

    This is the shard boundary: ``repro.core.parallel._collect_shard``
    wraps each shard's campaign in a scope so the returned snapshot
    holds exactly that shard's increments — nothing inherited from a
    forked parent, nothing leaked between shards that share a worker
    process — and the parent merges the snapshots at join.
    """
    global _REGISTRY
    if not _ENABLED:
        # Disabled means disabled everywhere: the shard collects nothing
        # and its (empty) snapshot merges into the null registry upstream.
        yield _NULL_REGISTRY
        return
    previous = _REGISTRY
    fresh = MetricsRegistry()
    _REGISTRY = fresh
    try:
        yield fresh
    finally:
        _REGISTRY = previous
