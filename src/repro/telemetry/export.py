"""Metric exporters: Prometheus text exposition and JSON snapshots.

Both formats carry a build-info header (package version + git describe)
so any scraped or archived metrics can be traced back to the exact tree
that produced them — the telemetry analogue of the golden-CRC
discipline on traces.
"""

from __future__ import annotations

import json
import subprocess
import time
from functools import lru_cache
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry, NullRegistry, get_registry


def package_version() -> str:
    """The installed package version, falling back to the source tree's
    ``repro.__version__`` when not pip-installed."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        # Not installed (PYTHONPATH=src usage) — read the source tree.
        pass
    try:
        import repro

        return repro.__version__
    except Exception:  # pragma: no cover - defensive
        return "unknown"


@lru_cache(maxsize=1)
def git_describe() -> str:
    """``git describe`` of the source checkout, or ``"unknown"`` outside
    a git tree (e.g. an installed wheel).  Cached: one subprocess per
    process at most."""
    root = Path(__file__).resolve().parents[3]
    try:
        result = subprocess.run(
            ["git", "describe", "--tags", "--always", "--dirty"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


def build_info() -> dict:
    """The header stamped into every metrics/trace export."""
    return {"repro_version": package_version(), "git_describe": git_describe()}


def _prometheus_name(name: str) -> str:
    sanitized = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{sanitized}"


def to_prometheus(registry: MetricsRegistry | NullRegistry | None = None) -> str:
    """Prometheus text exposition (version 0.0.4) of a registry snapshot.

    Counters export with a ``_total`` suffix, gauges as-is, histograms
    with cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``
    — the shapes promtool and a scraping Prometheus expect.
    """
    snapshot = (registry or get_registry()).snapshot()
    info = build_info()
    lines = [
        f"# repro telemetry — version {info['repro_version']}, "
        f"git {info['git_describe']}"
    ]
    for name, value in snapshot["counters"].items():
        metric = _prometheus_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot["gauges"].items():
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, record in snapshot["histograms"].items():
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(record["bounds"], record["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += record["inf_count"]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {record['sum']}")
        lines.append(f"{metric}_count {record['count']}")
    return "\n".join(lines) + "\n"


def snapshot_with_header(
    registry: MetricsRegistry | NullRegistry | None = None,
    extra: dict | None = None,
) -> dict:
    """A registry snapshot wrapped with the build-info header."""
    payload = {
        "header": {
            **build_info(),
            "created_unix_s": round(time.time(), 3),
        },
        **(registry or get_registry()).snapshot(),
    }
    if extra:
        payload["header"].update(extra)
    return payload


def write_metrics_json(
    path: str | Path,
    registry: MetricsRegistry | NullRegistry | None = None,
    extra: dict | None = None,
) -> Path:
    """Write the JSON snapshot (with header) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snapshot_with_header(registry, extra), indent=2, sort_keys=True)
        + "\n"
    )
    return path


def write_metrics_prometheus(
    path: str | Path, registry: MetricsRegistry | NullRegistry | None = None
) -> Path:
    """Write the Prometheus text exposition to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus(registry))
    return path
