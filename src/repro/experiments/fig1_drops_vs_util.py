"""Fig 1: drop rate vs. utilization across ToR-server links.

The paper samples every ToR-server link once per hour (a random 4-minute
interval) for 24 hours and finds drop rate nearly uncorrelated with
average utilization (r = 0.098) — the motivating observation that
congestion lives below SNMP granularity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import pearson_correlation
from repro.data.published import PAPER
from repro.experiments.common import ExperimentResult
from repro.synth.dropmodel import CoarseLinkPopulation


def run(
    seed: int = 0,
    n_links: int = 2000,
    samples_per_link: int = 24,
    backend=None,
) -> ExperimentResult:
    """Generate the scatter and report the correlation coefficient.

    ``backend`` is accepted for pipeline uniformity but unused: Fig 1 is
    an analytic population model (SNMP-granularity drop statistics), not
    a counter-sampling experiment.
    """
    rng = np.random.default_rng(seed)
    population = CoarseLinkPopulation()
    n = n_links * samples_per_link
    utilization, drops = population.sample_links(n, rng)
    corr = pearson_correlation(utilization, drops)

    result = ExperimentResult(
        experiment_id="fig1",
        title="Drop rate vs utilization (4-minute SNMP granularity)",
    )
    result.add("utilization/drop correlation", PAPER.fig1_utilization_drop_correlation, round(corr, 3))
    result.add("link-intervals sampled", "all ToR-server links x 24h", n)
    result.add(
        "links with zero drops",
        "many (drops are episodic)",
        round(float((drops == 0).mean()), 3),
    )
    result.add(
        "utilization range observed",
        "wide (Fig 1 x-axis)",
        f"{utilization.min():.3f}-{utilization.max():.3f}",
    )
    # Export a coarse scatter (decimated) as a series for inspection.
    keep = rng.choice(n, size=min(500, n), replace=False)
    result.add_series(
        "scatter_util_droprate",
        [(float(utilization[i]), float(drops[i])) for i in sorted(keep)],
    )
    result.notes.append(
        "weak correlation arises because drop propensity is driven by an "
        "independent burstiness factor, not by average load"
    )
    if backend is not None:
        result.notes.append("analytic experiment: identical under every backend")
    return result
