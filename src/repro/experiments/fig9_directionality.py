"""Fig 9: uplink vs. downlink share of hot ports at 300 µs sampling.

Paper landmarks: Web and Hadoop bursts are biased toward servers
(high fan-in) — only 18 % of hot Hadoop samples are uplinks, Web even
lower; Cache is the opposite, with most hot samples on uplinks
(response >> request plus 1:4 oversubscription).
"""

from __future__ import annotations

from repro.analysis.hotports import hot_share_by_direction
from repro.analysis.mad import resample_utilization
from repro.data.published import PAPER
from repro.experiments.common import APPS, ExperimentResult, backend_note, rack_window


def run(
    seed: int = 0,
    duration_s: float = 10.0,
    backend=None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig9",
        title="Uplink/downlink share of hot ports @ 300us",
    )
    ticks_per_300us = 12
    shares = {}
    for app in APPS:
        window = rack_window(
            app, seed=seed, duration_s=duration_s, backend=backend, experiment="fig9"
        )
        up = resample_utilization(window.uplink_egress_util, ticks_per_300us)
        down = resample_utilization(window.downlink_util, ticks_per_300us)
        share = hot_share_by_direction(up, down)
        shares[app] = share
        paper_share = PAPER.fig9_uplink_share[app]
        if app == "hadoop":
            expectation = f"~{paper_share:.2f}"
        elif app == "web":
            expectation = "< hadoop's 0.18 (even lower)"
        else:
            expectation = "> 0.5 (uplink-majority)"
        result.add(f"{app}: uplink share of hot samples", expectation, round(share.uplink_share, 3))
        result.add(
            f"{app}: hot samples (up/down)",
            "(counts)",
            f"{share.uplink_hot}/{share.downlink_hot}",
        )
    result.add(
        "web share < hadoop share < cache share ordering",
        "holds (Fig 9)",
        shares["web"].uplink_share
        < shares["hadoop"].uplink_share
        < shares["cache"].uplink_share,
    )
    result.notes.append(
        "web/hadoop bursts come from many-to-one fan-in toward servers; "
        "cache responses exceed requests so the 1:4-oversubscribed uplinks "
        "are the bottleneck (Sec 6.3)"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
