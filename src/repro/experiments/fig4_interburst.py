"""Fig 4: CDF of time between µbursts, and the Poisson test.

Paper landmarks: ~40 % of Web/Cache inter-burst gaps are under 100 µs,
but the tail reaches hundreds of milliseconds — several orders of
magnitude beyond burst durations; a KS test against an exponential fit
rejects homogeneous-Poisson burst arrivals with p ~ 0.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bursts import extract_bursts_from_trace
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.kstest import exponential_ks_test
from repro.analysis.report import cdf_series
from repro.data.published import PAPER
from repro.experiments.common import (
    APPS,
    ExperimentResult,
    app_byte_traces,
    backend_note,
)
from repro.units import to_us


def run(
    seed: int = 0,
    n_windows: int = 24,
    window_s: float = 2.0,
    backend=None,
    workers: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="CDF of inter-burst periods @ 25us + Poisson rejection",
    )
    for app in APPS:
        traces = app_byte_traces(
            app, seed=seed, n_windows=n_windows, window_s=window_s,
            backend=backend, workers=workers,
        )
        gaps = np.concatenate(
            [extract_bursts_from_trace(trace).gaps_ns for trace in traces]
        ).astype(np.float64)
        cdf = EmpiricalCdf(gaps)
        below_100us = float(cdf(100_000.0))
        paper_small = PAPER.fig4_small_gap_fraction.get(app)
        result.add(
            f"{app}: gaps < 100us",
            f"~{paper_small}" if paper_small else "(lower than web/cache)",
            round(below_100us, 3),
        )
        result.add(
            f"{app}: p99 gap (ms)",
            "up to 100s of ms tail",
            round(to_us(int(cdf.p99)) / 1000.0, 2),
        )
        ks = exponential_ks_test(gaps)
        result.add(
            f"{app}: KS p-value vs exponential",
            f"< {PAPER.fig4_poisson_p_value_max} (reject Poisson)",
            f"{ks.p_value:.2g} (stat {ks.statistic:.3f})",
        )
        result.add_series(
            f"{app}_gap_cdf_us", [(x / 1000.0, f) for x, f in cdf_series(cdf)]
        )
    result.notes.append(
        "gap tails several orders of magnitude above burst durations: most "
        "inter-burst periods exceed end-to-end latency (Sec 7 load balancing)"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
