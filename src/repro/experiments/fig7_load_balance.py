"""Fig 7: mean absolute deviation of the four uplinks.

Paper landmarks: at 40 µs, median MAD exceeds 25 % for all rack types;
Hadoop (longer flows) is least balanced with p90 ~ 100 %; at 1 s the
links appear balanced; ingress dispersion is close to egress (the
fabric adds little variance).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.mad import normalized_mad_series, resample_utilization
from repro.analysis.report import cdf_series
from repro.data.published import PAPER
from repro.experiments.common import APPS, ExperimentResult, backend_note, rack_window
from repro.synth.calibration import BASE_TICK_NS
from repro.units import seconds


def run(
    seed: int = 0,
    duration_s: float = 10.0,
    backend=None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="MAD of uplink utilization: egress/ingress, 40us vs 1s",
    )
    ticks_per_40us = 2  # 2 x 25us ~ the paper's 40us sampling period
    ticks_per_1s = int(seconds(1)) // BASE_TICK_NS
    for app in APPS:
        window = rack_window(
            app, seed=seed, duration_s=duration_s, backend=backend, experiment="fig7"
        )
        for direction, util in (
            ("egress", window.uplink_egress_util),
            ("ingress", window.uplink_ingress_util),
        ):
            fine = normalized_mad_series(resample_utilization(util, ticks_per_40us))
            coarse = normalized_mad_series(resample_utilization(util, ticks_per_1s))
            fine_cdf = EmpiricalCdf(fine)
            if direction == "egress":
                result.add(
                    f"{app} egress: median MAD @40us",
                    f"> {PAPER.fig7_median_mad_min}",
                    round(fine_cdf.median, 3),
                )
                if app == "hadoop":
                    result.add(
                        "hadoop egress: p90 MAD @40us",
                        f"~{PAPER.fig7_hadoop_p90_mad}",
                        round(fine_cdf.p90, 3),
                    )
                result.add(
                    f"{app} egress: median MAD @1s",
                    "balanced (small)",
                    round(float(np.median(coarse)) if len(coarse) else 0.0, 3),
                )
            else:
                result.add(
                    f"{app} ingress vs egress median MAD @40us",
                    "similar (fabric adds little variance)",
                    round(fine_cdf.median, 3),
                )
            result.add_series(f"{app}_{direction}_mad40us_cdf", cdf_series(fine_cdf))
    result.notes.append(
        "flow-level consistent-hash ECMP cannot balance unequal flows at "
        "small timescales; see bench_ablations for per-packet spraying"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
