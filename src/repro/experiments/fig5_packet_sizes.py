"""Fig 5: packet-size histograms inside vs. outside bursts (100 µs).

Paper landmarks: Hadoop is nearly all full-MTU in both regimes (small
increase inside bursts); Cache shows ~20 % relative increase of large
packets inside bursts with small packets still dominating counts; Web
shows a ~60 % relative increase of large packets inside bursts.
"""

from __future__ import annotations

from repro.analysis.packetsizes import split_histogram_by_burst
from repro.data.published import PAPER
from repro.experiments.common import APPS, ExperimentResult, backend_note, histogram_window


def run(
    seed: int = 0,
    duration_s: float = 20.0,
    backend=None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5",
        title="Packet sizes inside/outside bursts (100us periods)",
    )
    for app in APPS:
        traces = histogram_window(
            app, seed=seed, duration_s=duration_s, backend=backend, experiment="fig5"
        )
        byte_trace = next(t for name, t in traces.items() if name.endswith(".tx_bytes"))
        hist_trace = next(
            t for name, t in traces.items() if name.endswith(".tx_size_hist")
        )
        # The paper's Fig 5 campaign polls at 100 us: view both counters
        # at that granularity before splitting by regime.
        split = split_histogram_by_burst(byte_trace.decimate(4), hist_trace.decimate(4))
        paper_increase = PAPER.fig5_large_packet_increase[app]
        result.add(
            f"{app}: large-packet share outside bursts",
            "(Fig 5b)",
            round(split.large_fraction_outside, 3),
        )
        result.add(
            f"{app}: large-packet share inside bursts",
            "(Fig 5a)",
            round(split.large_fraction_inside, 3),
        )
        result.add(
            f"{app}: relative large-packet increase",
            f"~{paper_increase:+.0%}",
            f"{split.large_packet_increase:+.1%}",
        )
        if app == "hadoop":
            result.add(
                "hadoop: MTU-bin share (always large)",
                f">= {PAPER.fig5_hadoop_mtu_share_min}",
                round(split.large_fraction_inside, 3),
            )
        if app == "cache":
            small_share = float(split.inside[:3].sum())
            result.add(
                "cache: small packets still dominate inside bursts",
                "> large share",
                round(small_share, 3),
            )
        result.add_series(
            f"{app}_hist_inside",
            [(float(i), float(v)) for i, v in enumerate(split.inside)],
        )
        result.add_series(
            f"{app}_hist_outside",
            [(float(i), float(v)) for i, v in enumerate(split.outside)],
        )
    result.notes.append(
        "bins follow ASIC RMON edges: 64, 65-127, 128-255, 256-511, "
        "512-1023, 1024-1518 bytes"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
