"""Table 1: effect of sampling interval on miss rate for a byte counter.

The paper reports 100 % missed intervals at 1 us, ~10 % at 10 us, and
~1 % at 25 us, which fixed their choice of 25 us for byte counters.  We
run the polling-loop timing model at each interval and report measured
miss rates, plus the buffer counter at its 50 us interval and the
multi-counter batching behaviour.
"""

from __future__ import annotations

from repro.core.asic import AsicTimingModel
from repro.core.counters import CounterBinding, CounterKind, CounterSpec
from repro.core.sampler import HighResSampler, SamplerConfig
from repro.data.published import PAPER
from repro.experiments.common import ExperimentResult
from repro.units import seconds, us


def _byte_binding(name: str = "port.tx_bytes") -> CounterBinding:
    spec = CounterSpec(name=name, kind=CounterKind.BYTE, rate_bps=10e9)
    return CounterBinding(spec=spec, read=lambda: 0)


def _buffer_binding() -> CounterBinding:
    spec = CounterSpec(name="shared_buffer.peak", kind=CounterKind.PEAK_BUFFER)
    return CounterBinding(spec=spec, read=lambda: 0)


def run(seed: int = 0, duration_s: float = 2.0, backend=None) -> ExperimentResult:
    # ``backend`` accepted for pipeline uniformity; Table 1 exercises the
    # polling-loop timing model directly, identical under every backend.
    result = ExperimentResult(
        experiment_id="tab1",
        title="Sampling interval vs missed intervals (byte counter)",
    )
    duration = seconds(duration_s)
    for interval_ns, paper_miss in sorted(PAPER.tab1_miss_rates.items()):
        sampler = HighResSampler(
            SamplerConfig(interval_ns=interval_ns), [_byte_binding()], rng=seed
        )
        stats = sampler.simulate_timing(duration)
        result.add(
            f"miss rate @ {interval_ns // 1000} us",
            paper_miss,
            round(stats.miss_rate, 4),
        )

    buffer_sampler = HighResSampler(
        SamplerConfig(interval_ns=PAPER.buffer_counter_interval_ns),
        [_buffer_binding()],
        rng=seed,
    )
    buffer_stats = buffer_sampler.simulate_timing(duration)
    result.add(
        "buffer counter usable interval",
        f"{PAPER.buffer_counter_interval_ns // 1000} us (slower to poll)",
        f"{PAPER.buffer_counter_interval_ns // 1000} us, miss {buffer_stats.miss_rate:.3f}",
    )

    # Sec 4.1: multiple counters poll together with sublinear cost.
    timing = AsicTimingModel()
    one = timing.expected_cpu_utilization([_byte_binding().spec], us(25))
    four_specs = [_byte_binding(f"p{i}.tx_bytes").spec for i in range(4)]
    four = timing.expected_cpu_utilization(four_specs, us(25))
    result.add(
        "4-counter cost vs 1-counter (sublinear)",
        "< 4x",
        f"{four / one:.2f}x",
    )
    dedicated = HighResSampler(
        SamplerConfig(interval_ns=us(25), dedicated_core=True), [_byte_binding()], rng=seed
    ).simulate_timing(duration)
    shared = HighResSampler(
        SamplerConfig(interval_ns=us(25), dedicated_core=False), [_byte_binding()], rng=seed
    ).simulate_timing(duration)
    result.add(
        "shared-core precision penalty (miss rate)",
        "precision traded for utilization",
        f"{dedicated.miss_rate:.3f} -> {shared.miss_rate:.3f}",
    )
    if backend is not None:
        result.notes.append("analytic experiment: identical under every backend")
    return result
