"""Fig 10: peak shared-buffer occupancy vs. number of hot ports.

50 ms windows; hotness judged at 300 µs granularity; occupancy
normalised to the maximum observed anywhere.  Paper landmarks: Hadoop
stresses buffers most — standing occupancy even with few hot ports,
steeper growth, and up to 100 % of ports simultaneously hot (Web 71 %,
Cache 64 % maxima); mean occupancy levels off at high hot-port counts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bufferstats import occupancy_by_hot_ports
from repro.analysis.hotports import max_simultaneous_hot_fraction, window_hot_port_counts
from repro.analysis.mad import resample_utilization
from repro.data.published import PAPER
from repro.experiments.common import APPS, ExperimentResult, backend_note, rack_window
from repro.core.seeding import site_rng
from repro.synth.buffermodel import BufferResponseModel
from repro.synth.calibration import APP_PROFILES, BASE_TICK_NS
from repro.units import ms


def run(
    seed: int = 0,
    duration_s: float = 20.0,
    n_activity_windows: int = 16,
    backend=None,
) -> ExperimentResult:
    """``duration_s`` is split into ``n_activity_windows`` spans, each with
    its own diurnal activity level — hot-port counts then range from near
    zero (idle hours) to near all-ports (peak shuffle), as in the paper's
    24-hour campaign."""
    result = ExperimentResult(
        experiment_id="fig10",
        title="Peak buffer occupancy vs simultaneously hot ports (50ms windows)",
    )
    ticks_per_300us = 12
    periods_per_window = int(ms(50)) // (BASE_TICK_NS * ticks_per_300us)
    span_s = duration_s / n_activity_windows
    slopes = {}
    for app in APPS:
        # Diurnal activity schedule + buffer response are figure-level
        # modelling choices (the paper's Fig 10 couples a 24 h campaign with
        # a shared-buffer ASIC); both draw site-keyed streams so the result
        # is independent of backend internals and evaluation order.
        activity_rng = site_rng(seed, f"fig10|{app}")
        spans = []
        for i in range(n_activity_windows):
            activity = float(
                np.clip(activity_rng.lognormal(-0.6, 1.4), 0.004, 3.0)
            )
            spans.append(
                rack_window(
                    app, seed=seed, duration_s=span_s, backend=backend,
                    experiment="fig10", index=i, activity=activity,
                ).all_egress_util()
            )
        util = resample_utilization(np.concatenate(spans, axis=0), ticks_per_300us)
        counts = window_hot_port_counts(util, periods_per_window)
        model = BufferResponseModel.for_app(APP_PROFILES[app], n_ports=util.shape[1])
        peaks = model.sample(counts, site_rng(seed, f"fig10|{app}|buffer"))
        groups = occupancy_by_hot_ports(peaks, util, periods_per_window)
        slopes[app] = (
            groups[max(groups)].median - groups[min(groups)].median
            if len(groups) > 1
            else 0.0
        )
        low_group = groups[min(groups)]
        result.add(
            f"{app}: occupancy at fewest hot ports (median)",
            "high standing occupancy for hadoop",
            round(low_group.median, 3),
        )
        max_hot = max_simultaneous_hot_fraction(util)
        result.add(
            f"{app}: max fraction of ports simultaneously hot",
            PAPER.fig10_max_hot_port_fraction[app],
            round(max_hot, 2),
        )
        if app == "web":
            result.notes.append(
                "web's max-hot-fraction is scale-limited: the paper's 0.71 "
                "is a maximum over 240 two-minute windows; short runs "
                "rarely catch rack-wide web surges"
            )
        high_counts = [c for c in groups if c >= max(groups) - 1]
        lows = [groups[c].mean for c in sorted(groups)[:2]]
        highs = [groups[c].mean for c in high_counts]
        result.add(
            f"{app}: mean occupancy low->high hot ports",
            "grows then levels off",
            f"{np.mean(lows):.3f} -> {np.mean(highs):.3f}",
        )
        result.add_series(
            f"{app}_median_occupancy_by_hot_ports",
            [(float(c), groups[c].median) for c in sorted(groups)],
        )
    result.add(
        "hadoop occupancy scales most drastically with hot ports",
        "largest median-occupancy range (Sec 6.4)",
        slopes["hadoop"] > max(slopes["web"], slopes["cache"]),
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
