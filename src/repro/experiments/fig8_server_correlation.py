"""Fig 8: Pearson correlation heatmaps between servers of a rack.

ToR-to-server utilization at 250 µs granularity.  Paper landmarks: Web
servers are essentially uncorrelated (stateless, user-driven); Hadoop
shows modest correlation; Cache shows very strong correlation within
subsets of servers (scatter-gather groups).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import (
    block_mean_correlation,
    mean_offdiagonal,
    pearson_matrix,
)
from repro.analysis.mad import resample_utilization
from repro.data.published import PAPER
from repro.experiments.common import APPS, ExperimentResult, backend_note, rack_window
from repro.synth.calibration import APP_PROFILES


def run(
    seed: int = 0,
    duration_s: float = 10.0,
    backend=None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig8",
        title="Server-pair Pearson correlation @ 250us (ToR->server)",
    )
    ticks_per_250us = 10
    for app in APPS:
        window = rack_window(
            app, seed=seed, duration_s=duration_s, backend=backend, experiment="fig8"
        )
        coarse = resample_utilization(window.downlink_util, ticks_per_250us)
        matrix = pearson_matrix(coarse)
        overall = mean_offdiagonal(matrix)
        group_size = APP_PROFILES[app].correlation.group_size
        n_servers = matrix.shape[0]
        if 1 < group_size < n_servers:
            groups = [
                list(range(start, min(start + group_size, n_servers)))
                for start in range(0, n_servers, group_size)
            ]
            within = block_mean_correlation(matrix, groups)
        else:
            within = overall
        if app == "web":
            result.add(
                "web: mean pairwise correlation",
                f"< {PAPER.fig8_web_corr_max} (almost none)",
                round(overall, 3),
            )
        elif app == "cache":
            result.add(
                "cache: within-group correlation",
                f"> {PAPER.fig8_cache_group_corr_min} (strong subsets)",
                round(within, 3),
            )
            result.add(
                "cache: across-group correlation",
                "low (subsets only)",
                round((overall * (n_servers - 1) - within * (group_size - 1))
                      / max(n_servers - group_size, 1), 3),
            )
        else:
            low, high = PAPER.fig8_hadoop_corr_range
            result.add(
                "hadoop: mean pairwise correlation",
                f"{low}-{high} (modest)",
                round(overall, 3),
            )
        result.add_series(
            f"{app}_corr_offdiag_hist",
            _offdiag_histogram(matrix),
        )
    result.notes.append("ingress and egress trends were nearly identical in the paper; we report the ToR->server direction")
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result


def _offdiag_histogram(matrix: np.ndarray, bins: int = 20) -> list[tuple[float, float]]:
    n = matrix.shape[0]
    mask = ~np.eye(n, dtype=bool)
    values = matrix[mask]
    counts, edges = np.histogram(values, bins=bins, range=(-1.0, 1.0))
    centers = (edges[:-1] + edges[1:]) / 2.0
    total = counts.sum() or 1
    return [(float(c), float(v) / total) for c, v in zip(centers, counts)]
