"""Fig 6: CDF of link utilization at 25 µs granularity.

Paper landmarks: all three applications are extremely long-tailed;
Cache and Hadoop are multimodal; Hadoop spends ~15 % of periods in
bursts and ~10 % of periods near 100 % utilization; the 50 % hot
threshold is not load-bearing (nearby thresholds classify similarly).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.report import cdf_series
from repro.data.published import PAPER
from repro.experiments.common import (
    APPS,
    ExperimentResult,
    app_byte_traces,
    backend_note,
    pooled_utilization,
)


def run(
    seed: int = 0,
    n_windows: int = 24,
    window_s: float = 2.0,
    backend=None,
    workers: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="CDF of link utilization @ 25us",
    )
    for app in APPS:
        traces = app_byte_traces(
            app, seed=seed, n_windows=n_windows, window_s=window_s,
            backend=backend, workers=workers,
        )
        util = np.clip(pooled_utilization(traces), 0.0, 1.0)
        cdf = EmpiricalCdf(util)
        hot = float((util > 0.5).mean())
        near_full = float((util > 0.9).mean())
        result.add(f"{app}: median utilization", "low (long-tailed)", round(cdf.median, 4))
        result.add(f"{app}: time hot (>50%)",
                   f"~{PAPER.fig6_hadoop_hot_time}" if app == "hadoop" else "(below hadoop)",
                   round(hot, 4))
        if app == "hadoop":
            result.add(
                "hadoop: periods near 100% utilization",
                f"~{PAPER.fig6_hadoop_full_rate_time}",
                round(near_full, 4),
            )
        # Threshold robustness (Sec 5.4): hot-classification at 40/60 %
        # brackets the 50 % value.
        result.add(
            f"{app}: hot fraction at 40%/50%/60% thresholds",
            "similar (choice of 50% not critical)",
            f"{(util > 0.4).mean():.4f}/{hot:.4f}/{(util > 0.6).mean():.4f}",
        )
        result.add_series(f"{app}_util_cdf", cdf_series(cdf))
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
