"""Fig 2: 1-minute drop time series on a low- and a high-utilization port.

The paper plots 12 hours of per-minute drops for a ~9 %-utilization web
port and a ~43 %-utilization offline-processing port: in both, drops
arrive in episodes shorter than the measurement bin, with drop-free bins
in between.
"""

from __future__ import annotations

import numpy as np

from repro.data.published import PAPER
from repro.experiments.common import ExperimentResult
from repro.synth.dropmodel import DropEpisodeModel


def run(seed: int = 0, hours: int = 12, backend=None) -> ExperimentResult:
    # ``backend`` accepted for pipeline uniformity; Fig 2 is an analytic
    # episode model, identical under every backend.
    rng = np.random.default_rng(seed)
    n_minutes = hours * 60
    low = DropEpisodeModel(episodes_per_hour=2.5).sample_minutes(n_minutes, rng)
    high = DropEpisodeModel(episodes_per_hour=7.0).sample_minutes(n_minutes, rng)

    result = ExperimentResult(
        experiment_id="fig2",
        title="Drop time series, 1-minute bins over 12 hours",
    )

    def describe(name: str, series: np.ndarray, paper_util: float) -> None:
        active = series > 0
        result.add(f"{name} port avg utilization", paper_util, paper_util)
        result.add(
            f"{name}: minutes with zero drops",
            "most (episodic)",
            round(float((~active).mean()), 3),
        )
        # Episodes rarely span adjacent minutes: runs of drop-minutes are short.
        runs = np.diff(np.flatnonzero(np.diff(np.concatenate(([0], active.view(np.int8), [0])))))[::2]
        result.add(
            f"{name}: median drop-episode span (minutes)",
            "< measurement granularity",
            float(np.median(runs)) if len(runs) else 0.0,
        )

    describe("low-util", low, PAPER.fig2_low_util_port)
    describe("high-util", high, PAPER.fig2_high_util_port)
    result.add(
        "high/low drop-minute ratio",
        "> 1 (but both bursty)",
        round(float((high > 0).mean() / max((low > 0).mean(), 1e-9)), 2),
    )
    result.add_series(
        "low_util_drops_per_min", [(float(i), float(v)) for i, v in enumerate(low)]
    )
    result.add_series(
        "high_util_drops_per_min", [(float(i), float(v)) for i, v in enumerate(high)]
    )
    if backend is not None:
        result.notes.append("analytic experiment: identical under every backend")
    return result
