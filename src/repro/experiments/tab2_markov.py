"""Table 2: burst Markov model and likelihood ratios.

Per application, the MLE transition matrix of the hot/cold sample chain
and the likelihood ratio r = p(1|1)/p(1|0); the paper reports
r_web = 119.7, r_cache = 45.1, r_hadoop = 15.6 — all far above the
r ~ 1 expected for independently arriving bursts.
"""

from __future__ import annotations

from repro.analysis.bursts import trace_hot_mask
from repro.analysis.markov import fit_pooled_transition_matrix
from repro.data.published import PAPER
from repro.experiments.common import (
    APPS,
    ExperimentResult,
    app_byte_traces,
    backend_note,
)


def run(
    seed: int = 0,
    n_windows: int = 24,
    window_s: float = 2.0,
    backend=None,
    workers: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="tab2",
        title="Burst Markov transition matrices + likelihood ratios",
    )
    for app in APPS:
        traces = app_byte_traces(
            app, seed=seed, n_windows=n_windows, window_s=window_s,
            backend=backend, workers=workers,
        )
        masks = [trace_hot_mask(trace) for trace in traces]
        matrix = fit_pooled_transition_matrix(masks)
        paper = PAPER.table2[app]
        result.add(f"{app}: p(1|0)", paper.p01, round(matrix.p01, 4))
        result.add(f"{app}: p(1|1)", paper.p11, round(matrix.p11, 3))
        result.add(
            f"{app}: likelihood ratio r",
            paper.likelihood_ratio,
            round(matrix.likelihood_ratio, 1),
        )
    result.notes.append(
        "r >> 1 for every application: hot samples are strongly clumped, "
        "so bursts are not independent arrivals (Sec 5.1)"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
