"""Shared experiment scaffolding.

Every fig/tab experiment gets its data through the helpers here, which
run the *campaign pipeline* over a :mod:`repro.backends` measurement
backend: build a plan, execute it with
:class:`~repro.core.campaign.MeasurementCampaign` (or the sharded
parallel runner), and hand the traces/rack windows to analysis.  The
``backend`` argument accepted throughout is a backend name
(``"synth"`` / ``"netsim"``), an instance, or ``None`` for the synth
default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.report import format_comparison
from repro.backends import MeasurementBackend, rack_window_spec, resolve_backend, single_port_plan
from repro.core.campaign import MeasurementCampaign
from repro.core.samples import CounterTrace
from repro.synth.calibration import BASE_TICK_NS
from repro.synth.rackmodel import RackWindow
from repro.units import seconds

APPS = ("web", "cache", "hadoop")


@dataclass(slots=True)
class ExperimentResult:
    """Outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    rows: list[tuple[str, object, object]] = field(default_factory=list)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, metric: str, paper: object, measured: object) -> None:
        self.rows.append((metric, paper, measured))

    def add_series(self, name: str, points: list[tuple[float, float]]) -> None:
        self.series[name] = points

    def render(self, include_series: bool = False) -> str:
        parts = [
            format_comparison(self.rows, title=f"{self.experiment_id}: {self.title}")
        ]
        for note in self.notes:
            parts.append(f"note: {note}")
        if include_series:
            for name, points in self.series.items():
                parts.append(f"series {name}:")
                parts.extend(f"  {x:.6g} {y:.6g}" for x, y in points)
        return "\n".join(parts)

    def to_dict(self, include_series: bool = False) -> dict:
        """Machine-readable form (the CLI's --json output)."""
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": [
                {"metric": metric, "paper": _jsonable(paper), "measured": _jsonable(measured)}
                for metric, paper, measured in self.rows
            ],
            "notes": list(self.notes),
        }
        if include_series:
            payload["series"] = {
                name: [[x, y] for x, y in points]
                for name, points in self.series.items()
            }
        return payload


def _jsonable(value: object) -> object:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def app_byte_traces(
    app: str,
    seed: int,
    n_windows: int,
    window_s: float,
    tick_ns: int = BASE_TICK_NS,
    backend: MeasurementBackend | str | None = None,
    workers: int = 1,
) -> list[CounterTrace]:
    """Single-port byte traces for one application (the common input of
    the Fig 3/4/6 and Table 2 experiments).

    A thin shim over the campaign pipeline: a
    :func:`~repro.backends.single_port_plan` executed against the
    resolved backend.  ``workers > 1`` shards the campaign across
    processes; the backends' window-keyed seeding keeps the result
    byte-identical to the serial run.
    """
    resolved = resolve_backend(backend, seed=seed, tick_ns=tick_ns)
    plan = single_port_plan(app, n_windows, seconds(window_s), seed=seed)
    if workers > 1:
        from repro.core.parallel import ParallelCampaign

        result = ParallelCampaign(plan, resolved, workers=workers).run()
    else:
        result = MeasurementCampaign(plan, resolved).run()
    traces: list[CounterTrace] = []
    for _window, window_traces in result.iter_windows():
        traces.extend(window_traces.values())
    return traces


def histogram_window(
    app: str,
    seed: int,
    duration_s: float,
    backend: MeasurementBackend | str | None = None,
    experiment: str = "hist",
    tick_ns: int = BASE_TICK_NS,
) -> dict[str, CounterTrace]:
    """One window's byte trace + packet-size-histogram trace (Fig 5)."""
    resolved = resolve_backend(backend, seed=seed, tick_ns=tick_ns)
    spec = rack_window_spec(app, seconds(duration_s), experiment=experiment)
    return resolved.sample_histogram_window(spec)


def rack_window(
    app: str,
    seed: int,
    duration_s: float,
    backend: MeasurementBackend | str | None = None,
    experiment: str = "rack",
    index: int = 0,
    activity: float = 1.0,
    tick_ns: int = BASE_TICK_NS,
) -> RackWindow:
    """One whole-rack utilization window (Figs 7-10).

    ``experiment``/``index`` key the window's identity, so each figure —
    and each activity span within a figure — draws an independent
    deterministic stream from the backend.
    """
    resolved = resolve_backend(backend, seed=seed, tick_ns=tick_ns)
    spec = rack_window_spec(app, seconds(duration_s), experiment=experiment, index=index)
    return resolved.sample_rack_window(spec, activity=activity)


def backend_note(backend: MeasurementBackend | str | None) -> str | None:
    """A result note when an experiment runs on a non-default backend."""
    if backend is None:
        return None
    name = backend if isinstance(backend, str) else backend.name
    if name == "synth":
        return None
    return (
        f"collected through the {name!r} backend (packet-level, documented "
        "reduced scale: single rack, windows capped at ~40 ms of simulation)"
    )


def pooled_utilization(traces: list[CounterTrace]) -> np.ndarray:
    """Concatenate per-window utilization series (window boundaries are
    handled upstream: statistics never straddle windows because each
    trace is analysed separately before pooling where it matters)."""
    return np.concatenate([trace.utilization() for trace in traces])
