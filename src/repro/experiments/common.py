"""Shared experiment scaffolding."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.report import format_comparison
from repro.core.samples import CounterTrace
from repro.synth.calibration import BASE_TICK_NS
from repro.synth.dataset import synthesize_app_windows
from repro.units import seconds

APPS = ("web", "cache", "hadoop")


@dataclass(slots=True)
class ExperimentResult:
    """Outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    rows: list[tuple[str, object, object]] = field(default_factory=list)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, metric: str, paper: object, measured: object) -> None:
        self.rows.append((metric, paper, measured))

    def add_series(self, name: str, points: list[tuple[float, float]]) -> None:
        self.series[name] = points

    def render(self, include_series: bool = False) -> str:
        parts = [
            format_comparison(self.rows, title=f"{self.experiment_id}: {self.title}")
        ]
        for note in self.notes:
            parts.append(f"note: {note}")
        if include_series:
            for name, points in self.series.items():
                parts.append(f"series {name}:")
                parts.extend(f"  {x:.6g} {y:.6g}" for x, y in points)
        return "\n".join(parts)

    def to_dict(self, include_series: bool = False) -> dict:
        """Machine-readable form (the CLI's --json output)."""
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": [
                {"metric": metric, "paper": _jsonable(paper), "measured": _jsonable(measured)}
                for metric, paper, measured in self.rows
            ],
            "notes": list(self.notes),
        }
        if include_series:
            payload["series"] = {
                name: [[x, y] for x, y in points]
                for name, points in self.series.items()
            }
        return payload


def _jsonable(value: object) -> object:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def app_byte_traces(
    app: str,
    seed: int,
    n_windows: int,
    window_s: float,
    tick_ns: int = BASE_TICK_NS,
) -> list[CounterTrace]:
    """Single-port byte traces for one application (the common input of
    the Fig 3/4/6 and Table 2 experiments)."""
    return synthesize_app_windows(
        app,
        n_windows=n_windows,
        window_duration_ns=seconds(window_s),
        seed=seed,
    )


def pooled_utilization(traces: list[CounterTrace]) -> np.ndarray:
    """Concatenate per-window utilization series (window boundaries are
    handled upstream: statistics never straddle windows because each
    trace is analysed separately before pooling where it matters)."""
    return np.concatenate([trace.utilization() for trace in traces])
