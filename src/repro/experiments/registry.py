"""Experiment registry: id -> runner."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.errors import ConfigError
from repro.experiments import (
    ext_chaos_resilience,
    ext_implications,
    ext_netsim_validation,
    fig1_drops_vs_util,
    fig2_drop_timeseries,
    fig3_burst_durations,
    fig4_interburst,
    fig5_packet_sizes,
    fig6_utilization,
    fig7_load_balance,
    fig8_server_correlation,
    fig9_directionality,
    fig10_buffer_occupancy,
    tab1_sampling_loss,
    tab2_markov,
)
from repro.experiments.common import ExperimentResult

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: dict[str, Runner] = {
    "fig1": fig1_drops_vs_util.run,
    "fig2": fig2_drop_timeseries.run,
    "tab1": tab1_sampling_loss.run,
    "fig3": fig3_burst_durations.run,
    "tab2": tab2_markov.run,
    "fig4": fig4_interburst.run,
    "fig5": fig5_packet_sizes.run,
    "fig6": fig6_utilization.run,
    "fig7": fig7_load_balance.run,
    "fig8": fig8_server_correlation.run,
    "fig9": fig9_directionality.run,
    "fig10": fig10_buffer_occupancy.run,
    # Sec 7 / Sec 6.1 extension experiments (not paper figures)
    "ext-cc": ext_implications.run_cc,
    "ext-lb": ext_implications.run_lb,
    "ext-pacing": ext_implications.run_pacing,
    "ext-failures": ext_implications.run_failures,
    "ext-netsim": ext_netsim_validation.run,
    "ext-chaos": ext_chaos_resilience.run,
}


def get_experiment(experiment_id: str) -> Runner:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def accepts_param(runner: Runner, name: str) -> bool:
    """Whether a runner's signature takes ``name`` (or ``**kwargs``)."""
    parameters = inspect.signature(runner).parameters
    if name in parameters:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values())


def supports_workers(experiment_id: str) -> bool:
    """Whether an experiment can fan its campaign out across workers."""
    return accepts_param(get_experiment(experiment_id), "workers")


def supports_backend(experiment_id: str) -> bool:
    """Whether an experiment takes a measurement backend selection."""
    return accepts_param(get_experiment(experiment_id), "backend")


#: pipeline-level parameters the CLI passes to every experiment; a runner
#: that does not take one simply runs without it (``workers`` -> serial,
#: ``backend`` -> the synth default).
ADVISORY_PARAMS = ("workers", "backend")


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    runner = get_experiment(experiment_id)
    for name in ADVISORY_PARAMS:
        if name in kwargs and not accepts_param(runner, name):
            kwargs = {k: v for k, v in kwargs.items() if k != name}
    return runner(**kwargs)
