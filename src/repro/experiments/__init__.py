"""Experiment harness: one module per paper table/figure.

Each experiment module exposes ``run(seed=..., ...) -> ExperimentResult``
producing paper-vs-measured rows; the CLI (``python -m repro <id>``) and
the benchmark suite both go through :mod:`repro.experiments.registry`.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "get_experiment", "run_experiment"]
