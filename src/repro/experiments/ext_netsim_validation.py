"""ext-netsim: the packet simulator vs. the synthesiser, as an experiment.

DESIGN.md's substitution argument says the vectorised synthesiser is a
faithful stand-in for the mechanistic packet simulator.  This experiment
makes the cross-validation visible from the CLI: run each application on
the packet simulator — through the same campaign pipeline every other
experiment uses, with a :class:`~repro.backends.NetsimBackend` at
validation scale — and put the burst statistics next to the
synthesiser's and the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import extract_bursts, extract_bursts_from_trace, fit_transition_matrix
from repro.analysis.bursts import trace_hot_mask
from repro.backends import NetsimBackend, NetsimScale
from repro.core.campaign import CampaignPlan, CampaignWindow, MeasurementCampaign
from repro.data.published import PAPER
from repro.experiments.common import APPS, ExperimentResult
from repro.synth import APP_PROFILES, OnOffGenerator
from repro.units import ms

#: the port class where each application's bursts live (Fig 9): cache is
#: uplink-bound, web/hadoop burst toward the servers
_MEASURED_PORT = {"web": "down0", "cache": "up0", "hadoop": "down0"}


def _validation_scale(measure_ms: float) -> NetsimScale:
    """The pinned cross-validation scale: an 8-downlink rack with 24
    remote hosts, a long warmup, and a measurement window far beyond the
    default backend cap, so burst statistics are not scale-starved.
    Kept explicit (not the backend default, which has since grown to the
    paper's 16-downlink rack) so ext-netsim's published numbers stay
    comparable across releases."""
    return NetsimScale(
        n_downlinks=8,
        n_uplinks=4,
        n_remote_hosts=24,
        warmup_ns=int(ms(30)),
        max_window_ns=int(ms(measure_ms)),
    )


def _netsim_stats(app: str, seed: int, measure_ms: float):
    backend = NetsimBackend(seed=seed, scale=_validation_scale(measure_ms))
    port = _MEASURED_PORT[app]
    window = CampaignWindow(
        rack_id=f"{app}-extnetsim",
        rack_type=app,
        port_name=port,
        hour=0,
        start_ns=0,
        duration_ns=int(ms(measure_ms)),
    )
    campaign = MeasurementCampaign(CampaignPlan(windows=(window,)), backend)
    outcome = campaign.run()
    ((_, traces),) = list(outcome.iter_windows())
    trace = traces[f"{port}.tx_bytes"]
    stats = extract_bursts_from_trace(trace)
    mask = trace_hot_mask(trace)
    ratio = float("nan")
    if mask.any() and not mask.all():
        ratio = fit_transition_matrix(mask).likelihood_ratio
    return stats, ratio


def run(seed: int = 0, measure_ms: float = 150.0, backend=None) -> ExperimentResult:
    # ``backend`` accepted for pipeline uniformity: this experiment always
    # runs both planes (that is its purpose), whatever backend is selected.
    result = ExperimentResult(
        experiment_id="ext-netsim",
        title="Cross-validation: packet simulator vs synthesiser vs paper",
    )
    for app in APPS:
        net_stats, net_ratio = _netsim_stats(app, seed + 7, measure_ms)
        synth_series = OnOffGenerator(APP_PROFILES[app].downlink).generate(
            int(measure_ms * 40), np.random.default_rng(seed + 7)
        )
        synth_stats = extract_bursts(synth_series.utilization, 25_000)
        synth_ratio = fit_transition_matrix(synth_series.hot).likelihood_ratio
        paper = PAPER.table2[app]
        result.add(
            f"{app}: µburst share (netsim / synth)",
            ">= 0.7 on both",
            f"{net_stats.microburst_fraction:.2f} / {synth_stats.microburst_fraction:.2f}",
        )
        result.add(
            f"{app}: likelihood ratio (netsim / synth / paper)",
            ">> 1 everywhere",
            f"{net_ratio:.1f} / {synth_ratio:.1f} / {paper.likelihood_ratio}",
        )
        result.add(
            f"{app}: median burst us (netsim / synth)",
            "same order of magnitude",
            f"{np.median(net_stats.durations_ns) / 1000:.0f} / "
            f"{np.median(synth_stats.durations_ns) / 1000:.0f}",
        )
    result.notes.append(
        "the packet simulator is mechanistic (transport + buffer physics); "
        "the synthesiser is calibrated to the paper — agreement on shape is "
        "the substitution argument of DESIGN.md"
    )
    result.notes.append(
        "netsim traces collected through the unified campaign pipeline "
        "(NetsimBackend at validation scale)"
    )
    return result
