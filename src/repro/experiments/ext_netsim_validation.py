"""ext-netsim: the packet simulator vs. the synthesiser, as an experiment.

DESIGN.md's substitution argument says the vectorised synthesiser is a
faithful stand-in for the mechanistic packet simulator.  This experiment
makes the cross-validation visible from the CLI: run each application on
the packet simulator, collect downlink traces with the real sampler, and
put the burst statistics next to the synthesiser's and the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import extract_bursts, extract_bursts_from_trace, fit_transition_matrix
from repro.analysis.bursts import trace_hot_mask
from repro.core import HighResSampler, SamplerConfig
from repro.core.counters import bind_tx_bytes
from repro.data.published import PAPER
from repro.experiments.common import ExperimentResult
from repro.netsim import (
    RackConfig,
    Simulator,
    SwitchCounterSurface,
    TorSwitchConfig,
    build_rack,
)
from repro.synth import APP_PROFILES, OnOffGenerator
from repro.units import ms, us
from repro.workloads import (
    CacheConfig,
    CacheWorkload,
    HadoopConfig,
    HadoopWorkload,
    WebConfig,
    WebWorkload,
)
from repro.workloads.distributions import ParetoSizes

_WORKLOADS = {
    "web": (WebWorkload, WebConfig(request_rate_per_s=60, fanout=12)),
    "cache": (CacheWorkload, CacheConfig(batch_rate_per_s=350)),
    "hadoop": (
        HadoopWorkload,
        HadoopConfig(
            transfer_rate_per_s=20,
            transfer_size=ParetoSizes(min_bytes=300_000, alpha=2.0, max_bytes=2_000_000),
        ),
    ),
}


#: the port class where each application's bursts live (Fig 9): cache is
#: uplink-bound, web/hadoop burst toward the servers
_MEASURED_PORT = {"web": "down0", "cache": "up0", "hadoop": "down0"}


def _netsim_stats(app: str, seed: int, measure_ms: float):
    workload_class, config = _WORKLOADS[app]
    sim = Simulator(seed=seed)
    rack = build_rack(
        sim,
        RackConfig(
            name=app,
            switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
            n_remote_hosts=24,
        ),
    )
    workload_class(rack, config, rng=seed).install()
    sim.run_for(ms(30))
    surface = SwitchCounterSurface(rack.tor)
    port = _MEASURED_PORT[app]
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(25)), [bind_tx_bytes(surface, port)], rng=seed
    )
    report = sampler.run_in_sim(sim, ms(measure_ms))
    trace = report.traces[f"{port}.tx_bytes"]
    stats = extract_bursts_from_trace(trace)
    mask = trace_hot_mask(trace)
    ratio = float("nan")
    if mask.any() and not mask.all():
        ratio = fit_transition_matrix(mask).likelihood_ratio
    return stats, ratio


def run(seed: int = 0, measure_ms: float = 150.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-netsim",
        title="Cross-validation: packet simulator vs synthesiser vs paper",
    )
    for app in _WORKLOADS:
        net_stats, net_ratio = _netsim_stats(app, seed + 7, measure_ms)
        synth_series = OnOffGenerator(APP_PROFILES[app].downlink).generate(
            int(measure_ms * 40), np.random.default_rng(seed + 7)
        )
        synth_stats = extract_bursts(synth_series.utilization, 25_000)
        synth_ratio = fit_transition_matrix(synth_series.hot).likelihood_ratio
        paper = PAPER.table2[app]
        result.add(
            f"{app}: µburst share (netsim / synth)",
            ">= 0.7 on both",
            f"{net_stats.microburst_fraction:.2f} / {synth_stats.microburst_fraction:.2f}",
        )
        result.add(
            f"{app}: likelihood ratio (netsim / synth / paper)",
            ">> 1 everywhere",
            f"{net_ratio:.1f} / {synth_ratio:.1f} / {paper.likelihood_ratio}",
        )
        result.add(
            f"{app}: median burst us (netsim / synth)",
            "same order of magnitude",
            f"{np.median(net_stats.durations_ns) / 1000:.0f} / "
            f"{np.median(synth_stats.durations_ns) / 1000:.0f}",
        )
    result.notes.append(
        "the packet simulator is mechanistic (transport + buffer physics); "
        "the synthesiser is calibrated to the paper — agreement on shape is "
        "the substitution argument of DESIGN.md"
    )
    return result
