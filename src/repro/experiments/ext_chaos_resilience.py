"""ext-chaos: measurement-plane resilience under injected faults.

The paper's framework is explicitly best-effort — the polling loop misses
instants under load (Table 1) and the analysis is designed so that
"timestamps survive misses".  This extension experiment quantifies that
design point: it runs a campaign through the fault injector (window
failures, retries, checkpointing) and shows that the headline Fig 3 / 6
statistics computed by the gap-aware analysis stay within a *reported*
bound as sample loss is swept up from zero, with 32-bit counter
wraparound corrected exactly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bursts import (
    burst_cdf_delta_bound,
    extract_bursts_from_trace,
    extract_bursts_gap_aware,
)
from repro.analysis.cdf import EmpiricalCdf
from repro.backends import resolve_backend
from repro.core.campaign import MeasurementCampaign, RetryPolicy, WindowStatus
from repro.core.parallel import ParallelCampaign
from repro.experiments.common import ExperimentResult, app_byte_traces, backend_note
from repro.faults import FaultInjector, FaultPlan, FaultyWindowSource
from repro.synth.dataset import default_plan
from repro.units import seconds


def _chaos_campaign(
    seed: int,
    fault_rate: float,
    checkpoint_dir: str | None,
    resume: bool,
    racks_per_app: int,
    hours: int,
    window_s: float,
    workers: int,
    backend=None,
) -> tuple[dict[str, int], float, dict[str, int]]:
    plan = default_plan(
        racks_per_app=racks_per_app,
        hours=hours,
        window_duration_ns=seconds(window_s),
        seed=seed,
    )
    injector = FaultInjector(
        FaultPlan(
            seed=seed + 1,
            window_failure_rate=fault_rate,
            transient_fraction=0.5,
            sample_loss_rate=fault_rate / 5.0,
            wrap_bits=32,
        )
    )
    # Fault injection composes with any measurement backend: the wrapper
    # only relies on the ``sample_window`` protocol the campaign consumes.
    source = FaultyWindowSource(resolve_backend(backend, seed=seed), injector)
    retry = RetryPolicy(max_attempts=3, backoff_s=0.0)
    if workers > 1:
        campaign = ParallelCampaign(
            plan, source, retry=retry, checkpoint_dir=checkpoint_dir, workers=workers
        )
        result = campaign.run(resume=resume)
        fault_stats = campaign.fault_stats or {}
    else:
        result = MeasurementCampaign(
            plan, source, retry=retry, checkpoint_dir=checkpoint_dir
        ).run(resume=resume)
        fault_stats = injector.stats.as_dict()
    return result.status_counts(), result.completion_fraction, fault_stats


def _degrade(traces, seed: int, loss_rate: float):
    injector = FaultInjector(
        FaultPlan(seed=seed + 17, sample_loss_rate=loss_rate, wrap_bits=32)
    )
    return [
        injector.degrade_trace(trace, f"sweep|{loss_rate}|{i}")
        for i, trace in enumerate(traces)
    ]


def run(
    seed: int = 0,
    fault_rate: float = 0.05,
    n_windows: int = 8,
    window_s: float = 2.0,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    campaign_racks_per_app: int = 2,
    campaign_hours: int = 4,
    campaign_window_s: float = 1.0,
    workers: int = 1,
    backend=None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-chaos",
        title="resilience: stats stable under injected measurement faults",
    )

    # -- resilient campaign under window failures -----------------------------
    counts, completion, fault_stats = _chaos_campaign(
        seed,
        fault_rate,
        checkpoint_dir,
        resume,
        campaign_racks_per_app,
        campaign_hours,
        campaign_window_s,
        workers,
        backend=backend,
    )
    n_planned = sum(counts.values())
    result.add("campaign windows planned", "-", n_planned)
    result.add(
        f"completion at {fault_rate:.0%} window-failure rate",
        "partial results, not a discarded campaign",
        f"{completion:.2%}",
    )
    result.add(
        "windows ok / degraded / failed",
        "failed <= persistent faults",
        f"{counts[WindowStatus.OK.value]} / {counts[WindowStatus.DEGRADED.value]}"
        f" / {counts[WindowStatus.FAILED.value]}",
    )
    result.add(
        "transient faults recovered by retry",
        "all",
        f"{fault_stats.get('transient_faults', 0)}",
    )

    # -- gap-tolerant Fig 3 / Fig 6 statistics --------------------------------
    clean = app_byte_traces(
        "web", seed=seed, n_windows=n_windows, window_s=window_s, backend=backend
    )
    clean_durations = np.concatenate(
        [extract_bursts_from_trace(trace).durations_ns for trace in clean]
    )
    clean_cdf = EmpiricalCdf(clean_durations.astype(np.float64))
    clean_dt = np.concatenate([t.interval_durations_ns() for t in clean])
    clean_util = np.concatenate([t.utilization() for t in clean])
    clean_mean_util = float(np.average(clean_util, weights=clean_dt))

    for loss in (fault_rate, 2 * fault_rate, 4 * fault_rate):
        loss = min(loss, 0.5)
        degraded = _degrade(clean, seed, loss)
        gap_stats = [extract_bursts_gap_aware(trace) for trace in degraded]
        durations = np.concatenate([g.durations_ns for g in gap_stats])
        cdf = EmpiricalCdf(durations.astype(np.float64))
        ks = clean_cdf.ks_distance(cdf)
        # Pool the per-trace bound components for one campaign-level bound.
        n_clipped = sum(g.n_clipped_bursts for g in gap_stats)
        bound = burst_cdf_delta_bound(len(durations), n_clipped)
        coverage = float(np.mean([g.coverage for g in gap_stats]))
        result.add(
            f"fig3 burst-CDF shift @ {loss:.0%} sample loss",
            f"<= reported bound {bound:.3f}",
            f"{ks:.3f} (coverage {coverage:.2%})",
        )
        dt = np.concatenate([t.interval_durations_ns() for t in degraded])
        util = np.concatenate([t.utilization() for t in degraded])
        mean_util = float(np.average(util, weights=dt))
        result.add(
            f"fig6 time-weighted mean util @ {loss:.0%} loss",
            f"{clean_mean_util:.4f} (clean)",
            f"{mean_util:.4f}",
        )

    # -- exact wraparound correction ------------------------------------------
    wrap_injector = FaultInjector(FaultPlan(seed=seed + 33, wrap_bits=32))
    residual = 0
    for trace in clean:
        wrapped = wrap_injector.wrap_trace(trace)
        residual += abs(int(trace.deltas().sum()) - int(wrapped.deltas().sum()))
    result.add("32-bit wraparound residual (bytes)", 0, residual)

    result.notes.append(
        "sample loss keeps true timestamps and cumulative values (the paper's "
        "miss semantics); gap-aware analysis splits traces at gaps so bursts "
        "never span missing data, and reports a worst-case CDF shift bound"
    )
    result.notes.append(
        "time-weighted mean utilization is exact under loss because byte "
        "counts survive misses (Table 1)"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
