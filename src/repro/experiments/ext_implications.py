"""Extension experiments: the paper's Sec 7 design implications, measured.

The paper closes with three implications it argues qualitatively; the
simulated substrate lets us measure them, plus the failure-asymmetry
case Sec 6.1 could not intercept in production:

* ``ext-cc``     — congestion control: what fraction of µbursts end
  before an RTT/2 (ECN/RTT) signal could even arrive, and how DCTCP
  compares with loss-based control under incast.
* ``ext-lb``     — load balancing: what fraction of inter-burst gaps
  exceed end-to-end latency (safe flowlet-split opportunities).
* ``ext-pacing`` — NIC pacing: burstiness with and without pacing.
* ``ext-failures`` — ECMP imbalance under fabric link failures.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bursts import extract_bursts_from_trace
from repro.analysis.mad import normalized_mad_series, resample_utilization
from repro.experiments.common import (
    APPS,
    ExperimentResult,
    app_byte_traces,
    backend_note,
)
from repro.netsim import (
    BufferPolicy,
    RackConfig,
    Simulator,
    TorSwitchConfig,
    build_rack,
)
from repro.netsim.clos import ClosFabric
from repro.netsim.ecn import EcnConfig
from repro.synth.calibration import BASE_TICK_NS
from repro.synth.rackmodel import RackSynthesizer
from repro.units import gbps, ms, seconds, us


# --------------------------------------------------------------------------
# ext-cc: congestion-control reaction time vs µburst duration
# --------------------------------------------------------------------------


def _incast_drops(transport: str, seed: int) -> tuple[int, int]:
    """Steady-state (drops, peak buffer) for a sustained 16-to-1 incast.

    The first 20 ms (slow-start overshoot, identical for any transport
    because no feedback has arrived yet) are excluded: the interesting
    difference is how each congestion controller holds the queue after
    signals start flowing.
    """
    sim = Simulator(seed=seed)
    rack = build_rack(
        sim,
        RackConfig(
            name="cc",
            switch=TorSwitchConfig(
                n_downlinks=4,
                n_uplinks=2,
                buffer=BufferPolicy(capacity_bytes=200_000, alpha=1.0),
                ecn=EcnConfig(mark_threshold_bytes=30_000),
            ),
            n_remote_hosts=16,
            transport=transport,
            rto_ns=ms(2),
        ),
    )
    for remote in rack.remote_hosts:
        remote.send_flow(rack.servers[0].name, 2_000_000)
    sim.run_for(ms(20))
    drops_warmup = rack.tor.total_drops()
    rack.tor.shared_buffer.peak_occupancy_read_and_reset()
    sim.run_for(ms(100))
    steady_drops = rack.tor.total_drops() - drops_warmup
    steady_peak = rack.tor.shared_buffer.peak_occupancy_read_and_reset()
    return steady_drops, steady_peak


def run_cc(
    seed: int = 0,
    n_windows: int = 12,
    window_s: float = 2.0,
    backend=None,
    workers: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-cc",
        title="Sec 7: congestion signals arrive after many µbursts end",
    )
    for app in APPS:
        traces = app_byte_traces(
            app, seed=seed, n_windows=n_windows, window_s=window_s,
            backend=backend, workers=workers,
        )
        durations = np.concatenate(
            [extract_bursts_from_trace(trace).durations_ns for trace in traces]
        )
        for rtt_us in (50, 100, 200):
            shorter = float((durations < us(rtt_us)).mean())
            result.add(
                f"{app}: bursts over before 1 RTT ({rtt_us}us) elapses",
                "large fraction (Sec 7)",
                round(shorter, 3),
            )
    reno_drops, reno_peak = _incast_drops("reno", seed + 1)
    dctcp_drops, dctcp_peak = _incast_drops("dctcp", seed + 1)
    result.add("incast drops: reno -> dctcp", "ECN reduces loss", f"{reno_drops} -> {dctcp_drops}")
    result.add(
        "incast peak buffer: reno -> dctcp",
        "ECN keeps queues shorter",
        f"{reno_peak} -> {dctcp_peak}",
    )
    result.notes.append(
        "even a one-RTT signal misses most Web/Cache bursts entirely; "
        "lower-latency signals or better buffering are needed (Sec 7)"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result


# --------------------------------------------------------------------------
# ext-lb: flowlet-splitting opportunities
# --------------------------------------------------------------------------


def run_lb(
    seed: int = 0,
    n_windows: int = 12,
    window_s: float = 2.0,
    backend=None,
    workers: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-lb",
        title="Sec 7: inter-burst gaps vs end-to-end latency (flowlet splits)",
    )
    for app in APPS:
        traces = app_byte_traces(
            app, seed=seed, n_windows=n_windows, window_s=window_s,
            backend=backend, workers=workers,
        )
        gaps = np.concatenate(
            [extract_bursts_from_trace(trace).gaps_ns for trace in traces]
        )
        for latency_us in (50, 100, 250):
            exceed = float((gaps > us(latency_us)).mean())
            result.add(
                f"{app}: gaps exceeding {latency_us}us e2e latency",
                "most (safe to re-split)" if latency_us <= 100 else "(tighter)",
                round(exceed, 3),
            )
    result.notes.append(
        "a gap longer than the e2e latency guarantees no reordering when "
        "the next burst takes a new path — the microflow-LB argument"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result


# --------------------------------------------------------------------------
# ext-pacing: NIC pacing vs µbursts
# --------------------------------------------------------------------------


def _chunked_sender_burstiness(pacing_rate_bps, seed: int):
    """One server streams periodic 40 kB application chunks to a remote.

    Unpaced, segmentation offload puts each chunk on the wire as a
    line-rate train — a textbook µburst every period.  Pacing spreads the
    same bytes at the paced rate.
    """
    sim = Simulator(seed=seed)
    rack = build_rack(
        sim,
        RackConfig(
            name="pace",
            switch=TorSwitchConfig(n_downlinks=4, n_uplinks=2),
            n_remote_hosts=8,
            pacing_rate_bps=pacing_rate_bps,
        ),
    )
    sender = rack.servers[0]
    receiver = rack.remote_hosts[0]
    for chunk in range(200):
        sim.schedule(us(300) * chunk, lambda: sender.send_flow(receiver.name, 40_000))
    from repro.core import HighResSampler, SamplerConfig
    from repro.core.counters import bind_rx_bytes
    from repro.netsim import SwitchCounterSurface

    surface = SwitchCounterSurface(rack.tor)
    # measure the sender's ingress into the ToR (its NIC's output)
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(25)), [bind_rx_bytes(surface, "down0")], rng=seed
    )
    report = sampler.run_in_sim(sim, ms(60))
    stats = extract_bursts_from_trace(report.traces["down0.rx_bytes"])
    return stats


def run_pacing(seed: int = 0, backend=None) -> ExperimentResult:
    # ``backend`` accepted for pipeline uniformity; the pacing comparison
    # is mechanistic (always packet-level netsim) regardless of backend.
    result = ExperimentResult(
        experiment_id="ext-pacing",
        title="Sec 7: NIC pacing vs µburst intensity",
    )
    unpaced = _chunked_sender_burstiness(None, seed + 2)
    paced = _chunked_sender_burstiness(gbps(2), seed + 2)
    result.add("hot fraction: unpaced -> paced", "pacing smooths bursts",
               f"{unpaced.hot_fraction:.4f} -> {paced.hot_fraction:.4f}")
    result.add("bursts: unpaced -> paced", "far fewer with pacing",
               f"{unpaced.n_bursts} -> {paced.n_bursts}")
    if unpaced.n_bursts:
        result.add(
            "p90 burst duration unpaced (us)",
            "tens of us (offload trains)",
            round(unpaced.p90_duration_ns / 1000.0, 1),
        )
    result.notes.append(
        "segmentation offload emits line-rate trains; pacing at a fraction "
        "of line rate removes the µbursts those trains create (Sec 7)"
    )
    return result


# --------------------------------------------------------------------------
# ext-failures: ECMP imbalance under fabric asymmetry (Sec 6.1's gap)
# --------------------------------------------------------------------------


def run_failures(seed: int = 0, duration_s: float = 5.0, backend=None) -> ExperimentResult:
    # ``backend`` accepted for pipeline uniformity; the failure study is
    # mechanistic (Clos fabric + capacity factors) regardless of backend.
    result = ExperimentResult(
        experiment_id="ext-failures",
        title="Sec 6.1: imbalance under failure-induced asymmetry",
    )
    fabric = ClosFabric()
    fabric.validate()
    tor = fabric.tors[0]
    n_ticks = int(seconds(duration_s)) // BASE_TICK_NS
    synthesizer = RackSynthesizer("hadoop")

    def median_mad(factors) -> float:
        rng = np.random.default_rng(seed + 3)
        util = synthesizer.uplink_matrix(
            n_ticks, rng, capacity_factors=np.asarray(factors) if factors is not None else None
        )
        series = normalized_mad_series(resample_utilization(util, 2))
        return float(np.median(series)) if len(series) else 0.0

    healthy = median_mad(fabric.uplink_capacity_factors(tor))
    pod = fabric.graph.nodes[tor]["pod"]
    fabric.fail_link(tor, fabric.fabric_name(pod, 0))
    one_uplink_down = median_mad(fabric.uplink_capacity_factors(tor))
    fabric.restore_all()
    fabric.fail_link(fabric.fabric_name(pod, 1), fabric.spine_name(1, 0))
    fabric.fail_link(fabric.fabric_name(pod, 1), fabric.spine_name(1, 1))
    partial = fabric.uplink_capacity_factors(tor)
    partial_mad = median_mad(partial)
    fabric.restore_all()

    result.add("healthy fabric: median MAD @40us", "(baseline, Fig 7)", round(healthy, 3))
    result.add(
        "one ToR uplink down: median MAD",
        "significantly worse (Sec 6.1, citing CONGA/F10)",
        round(one_uplink_down, 3),
    )
    result.add(
        "half a spine plane down: capacity factors",
        "asymmetric",
        "/".join(f"{f:.2f}" for f in partial),
    )
    result.add("half a spine plane down: median MAD", "worse than healthy", round(partial_mad, 3))
    result.add(
        "imbalance ordering holds",
        "failure > healthy",
        bool(one_uplink_down > healthy),
    )
    return result
