"""Fig 3: CDF of µburst durations at 25 µs granularity.

Key paper landmarks: p90 burst duration <= 200 µs for all rack types,
Web lowest at 50 µs (two periods); over 60 % of Web and Cache bursts end
within one period; Hadoop has the longest tail but nearly all bursts end
within 0.5 ms; and µbursts (< 1 ms) encompass essentially all bursts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bursts import extract_bursts_from_trace
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.report import cdf_series
from repro.data.published import PAPER
from repro.experiments.common import (
    APPS,
    ExperimentResult,
    app_byte_traces,
    backend_note,
)
from repro.units import to_us


def run(
    seed: int = 0,
    n_windows: int = 24,
    window_s: float = 2.0,
    backend=None,
    workers: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig3",
        title="CDF of microburst durations @ 25us",
    )
    for app in APPS:
        traces = app_byte_traces(
            app, seed=seed, n_windows=n_windows, window_s=window_s,
            backend=backend, workers=workers,
        )
        durations = np.concatenate(
            [extract_bursts_from_trace(trace).durations_ns for trace in traces]
        )
        cdf = EmpiricalCdf(durations.astype(np.float64))
        single = float((durations == 25_000).mean())
        micro = float((durations < 1_000_000).mean())
        result.add(
            f"{app}: p90 burst duration (us)",
            f"<= {to_us(PAPER.fig3_p90_burst_duration_ns[app]):.0f}",
            round(to_us(int(cdf.p90)), 1),
        )
        result.add(f"{app}: single-period bursts",
                   f">= {PAPER.fig3_single_period_fraction_min.get(app, 0.0):.2f}" if app in PAPER.fig3_single_period_fraction_min else "(not stated)",
                   round(single, 3))
        result.add(f"{app}: microburst (<1ms) share", f">= {PAPER.microburst_share_min}", round(micro, 3))
        result.add_series(
            f"{app}_duration_cdf_us",
            [(x / 1000.0, f) for x, f in cdf_series(cdf)],
        )
    result.notes.append(
        "durations are multiples of the 25us sampling period, as in the paper"
    )
    note = backend_note(backend)
    if note:
        result.notes.append(note)
    return result
