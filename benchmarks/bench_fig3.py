"""Fig 3 bench: CDF of microburst durations at 25 us."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig3_burst_durations(benchmark, show):
    kwargs = scaled(
        dict(n_windows=24, window_s=2.0),
        dict(n_windows=240, window_s=10.0),
    )
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # paper: p90 <= 200 us for all apps; Web lowest at 50 us
    assert rows["web: p90 burst duration (us)"] <= 75
    assert rows["cache: p90 burst duration (us)"] <= 300
    assert rows["hadoop: p90 burst duration (us)"] <= 300
    # paper: >60 % of Web/Cache bursts end within one period
    assert rows["web: single-period bursts"] >= 0.60
    assert rows["cache: single-period bursts"] >= 0.55
    # abstract: >70 % of bursts sustained at most tens of us; all µbursts
    for app in ("web", "cache", "hadoop"):
        assert rows[f"{app}: microburst (<1ms) share"] >= 0.95
