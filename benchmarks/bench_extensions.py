"""Benches for the Sec 7 / Sec 6.1 extension experiments."""

from conftest import scaled

from repro.experiments import run_experiment


def test_ext_congestion_control(benchmark, show):
    kwargs = scaled(dict(n_windows=12, window_s=2.0), dict(n_windows=120, window_s=10.0))
    result = benchmark.pedantic(
        lambda: run_experiment("ext-cc", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # a large share of µbursts end before one RTT of signal delay
    assert rows["web: bursts over before 1 RTT (100us) elapses"] > 0.8
    assert rows["cache: bursts over before 1 RTT (100us) elapses"] > 0.6
    reno_drops, dctcp_drops = map(
        int, str(rows["incast drops: reno -> dctcp"]).split(" -> ")
    )
    assert dctcp_drops <= reno_drops


def test_ext_load_balancing(benchmark, show):
    kwargs = scaled(dict(n_windows=12, window_s=2.0), dict(n_windows=120, window_s=10.0))
    result = benchmark.pedantic(
        lambda: run_experiment("ext-lb", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    for app in ("web", "cache", "hadoop"):
        assert rows[f"{app}: gaps exceeding 50us e2e latency"] > 0.4


def test_ext_pacing(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_experiment("ext-pacing", seed=0), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    unpaced, paced = str(rows["bursts: unpaced -> paced"]).split(" -> ")
    assert int(paced) < int(unpaced) // 10


def test_ext_failure_asymmetry(benchmark, show):
    kwargs = scaled(dict(duration_s=5.0), dict(duration_s=30.0))
    result = benchmark.pedantic(
        lambda: run_experiment("ext-failures", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    assert rows["imbalance ordering holds"] is True
