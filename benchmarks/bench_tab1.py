"""Table 1 bench: sampling interval vs missed intervals."""

from conftest import scaled

from repro.experiments import run_experiment


def test_tab1_sampling_loss(benchmark, show):
    kwargs = scaled(dict(duration_s=2.0), dict(duration_s=10.0))
    result = benchmark.pedantic(
        lambda: run_experiment("tab1", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # paper: 1 us -> 100 %, 10 us -> ~10 %, 25 us -> ~1 %
    assert rows["miss rate @ 1 us"] >= 0.99
    assert 0.05 <= rows["miss rate @ 10 us"] <= 0.18
    assert 0.003 <= rows["miss rate @ 25 us"] <= 0.03
