"""Fig 8 bench: server-pair Pearson correlation heatmaps at 250 us."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig8_server_correlation(benchmark, show):
    kwargs = scaled(dict(duration_s=10.0), dict(duration_s=60.0))
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # web: almost no correlation (stateless, user-driven)
    assert abs(rows["web: mean pairwise correlation"]) < 0.10
    # cache: very strong correlation within scatter-gather subsets
    assert rows["cache: within-group correlation"] > 0.50
    assert abs(rows["cache: across-group correlation"]) < 0.15
    # hadoop: modest correlation
    assert 0.05 < rows["hadoop: mean pairwise correlation"] < 0.45
