"""Fig 6 bench: CDF of link utilization at 25 us."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig6_utilization_cdf(benchmark, show):
    kwargs = scaled(
        dict(n_windows=24, window_s=2.0),
        dict(n_windows=240, window_s=10.0),
    )
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # hadoop hottest (paper ~15 %, Table 2 implies ~11 %), then cache, then web
    assert 0.06 <= rows["hadoop: time hot (>50%)"] <= 0.20
    assert (
        rows["hadoop: time hot (>50%)"]
        > rows["cache: time hot (>50%)"]
        > rows["web: time hot (>50%)"]
    )
    # paper: ~10 % of hadoop periods near line rate
    assert 0.04 <= rows["hadoop: periods near 100% utilization"] <= 0.15
    # long-tailed: medians well below the hot threshold for all apps
    for app in ("web", "cache", "hadoop"):
        assert rows[f"{app}: median utilization"] < 0.5
