"""Performance-guard benches.

The figure benchmarks depend on two performance properties: the
vectorised synthesiser must generate millions of 25 µs ticks per second,
and the packet simulator must process events fast enough for the
examples and validation tests.  These benches measure both so
regressions show up in `--benchmark-compare` runs.
"""

import numpy as np

from repro.netsim import RackConfig, Simulator, TorSwitchConfig, build_rack
from repro.synth import APP_PROFILES, OnOffGenerator, RackSynthesizer
from repro.units import ms
from repro.workloads import CacheConfig, CacheWorkload

N_TICKS = 1_000_000


def test_onoff_generator_throughput(benchmark):
    """Single-port generation: must exceed ~2M ticks/s."""
    generator = OnOffGenerator(APP_PROFILES["cache"].downlink)

    def run():
        return generator.generate(N_TICKS, np.random.default_rng(1))

    series = benchmark(run)
    assert len(series) == N_TICKS
    ticks_per_second = N_TICKS / benchmark.stats["mean"]
    assert ticks_per_second > 1_000_000


def test_rack_synthesis_throughput(benchmark):
    """Whole-rack synthesis (20 ports + correlation + ECMP model)."""
    synthesizer = RackSynthesizer("cache")

    def run():
        return synthesizer.synthesize(100_000, np.random.default_rng(2))

    window = benchmark(run)
    assert window.n_ticks == 100_000
    # port-ticks per second of wall time
    rate = 100_000 * 24 / benchmark.stats["mean"]
    assert rate > 500_000


def test_packet_simulator_throughput(benchmark):
    """Event-loop rate under a realistic workload: > 50k events/s."""

    def run():
        sim = Simulator(seed=3)
        rack = build_rack(
            sim,
            RackConfig(
                name="t",
                switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
                n_remote_hosts=24,
            ),
        )
        CacheWorkload(rack, CacheConfig(batch_rate_per_s=200), rng=3).install()
        sim.run_for(ms(40))
        return sim.events_processed

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events > 10_000
    events_per_second = events / benchmark.stats["mean"]
    assert events_per_second > 50_000
