"""Fig 10 bench: peak buffer occupancy vs simultaneously hot ports."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig10_buffer_occupancy(benchmark, show):
    kwargs = scaled(
        dict(duration_s=20.0, n_activity_windows=16),
        dict(duration_s=120.0, n_activity_windows=48),
    )
    result = benchmark.pedantic(
        lambda: run_experiment("fig10", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # hadoop stresses buffers most: standing occupancy + steepest growth
    assert (
        rows["hadoop: occupancy at fewest hot ports (median)"]
        > rows["web: occupancy at fewest hot ports (median)"]
    )
    assert rows["hadoop occupancy scales most drastically with hot ports"] is True
    # hadoop drives the largest fraction of ports hot simultaneously
    assert (
        rows["hadoop: max fraction of ports simultaneously hot"]
        >= rows["cache: max fraction of ports simultaneously hot"]
        > rows["web: max fraction of ports simultaneously hot"]
    )
    assert rows["hadoop: max fraction of ports simultaneously hot"] >= 0.7
