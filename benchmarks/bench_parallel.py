"""Parallel campaign and vectorized-kernel benches.

Two performance properties back this repo's scale story: sharded
campaign collection must speed up with worker processes (the paper polls
30 ToR switches concurrently), and the numpy analysis kernels must beat
their scalar reference oracles by a wide margin at campaign data
volumes.  Speedup assertions are gated on the machine actually having
cores to parallelize over; the byte-identity assertions always run.
"""

import os
import time

import numpy as np

from conftest import scaled
from repro.analysis.bursts import extract_bursts_gap_aware
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.runs import run_lengths
from repro.core.kernels import (
    SCALAR_ENV,
    scalar_deltas,
    scalar_ecdf_probs,
    scalar_run_lengths,
)
from repro.core.parallel import ParallelCampaign
from repro.core.samples import CounterTrace, ValueKind
from repro.core.traceio import _crc
from repro.synth.dataset import SyntheticCampaignSource, default_plan
from repro.units import gbps, seconds, us

INTERVAL = us(25)
KERNEL_N = scaled(dict(n=200_000), dict(n=1_000_000))["n"]


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


# -- sharded campaign collection -------------------------------------------------


def run_parallel_campaign(workers):
    plan = default_plan(
        racks_per_app=2,
        hours=2,
        window_duration_ns=scaled(dict(w=seconds(1.0)), dict(w=seconds(10.0)))["w"],
    )
    source = SyntheticCampaignSource(seed=0)
    elapsed, result = timed(
        lambda: ParallelCampaign(plan, source, workers=workers).run()
    )
    crcs = tuple(
        _crc(traces[name].values)
        for traces in result.traces
        for name in sorted(traces)
    )
    return elapsed, crcs


def test_parallel_campaign_speedup(benchmark):
    """4-worker collection: identical bytes always, and >= 2x faster
    where the hardware can deliver it (CI runners may expose one core)."""
    serial_s, serial_crcs = run_parallel_campaign(workers=1)

    def run():
        return run_parallel_campaign(workers=4)

    parallel_s, parallel_crcs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert parallel_crcs == serial_crcs
    if (os.cpu_count() or 1) >= 4:
        speedup = serial_s / parallel_s
        assert speedup >= 2.0, f"4 workers only {speedup:.2f}x over serial"


# -- vectorized kernels vs scalar oracles ----------------------------------------


def bench_trace(n):
    rng = np.random.default_rng(3)
    util = np.where(rng.random(n) < 0.1, 0.95, 0.05)
    bytes_per_tick = np.rint(util * gbps(10) * INTERVAL / 8e9).astype(np.int64)
    values = np.concatenate(([0], np.cumsum(bytes_per_tick)))
    keep = rng.random(n + 1) >= 0.02
    keep[[0, -1]] = True
    return CounterTrace(
        timestamps_ns=INTERVAL * np.arange(n + 1, dtype=np.int64)[keep],
        values=values[keep],
        kind=ValueKind.CUMULATIVE,
        name="bench",
        rate_bps=gbps(10),
    )


def test_vectorized_kernel_throughput(benchmark):
    """Vectorized deltas / run-lengths / ECDF vs their scalar oracles:
    >= 5x at bench scale (1M samples at REPRO_BENCH_SCALE=full).  The
    oracles are deliberately naive loops, so the real ratio is orders of
    magnitude; the oracle side runs on a 1/50 slice and is extrapolated
    so the bench itself stays fast."""
    trace = bench_trace(KERNEL_N)
    mask = np.random.default_rng(4).random(KERNEL_N) < 0.5
    samples = trace.values.astype(np.float64)
    queries = np.linspace(samples.min(), samples.max(), 50)

    def vectorized():
        return (
            trace.deltas(),
            run_lengths(mask, True),
            EmpiricalCdf(samples)(queries),
        )

    results = benchmark(vectorized)
    fast_s, _ = timed(vectorized)
    stride = 50
    slow_s = 0.0
    for fn, args in (
        (scalar_deltas, (trace.values[::stride],)),
        (scalar_run_lengths, (mask[::stride], True)),
        (scalar_ecdf_probs, (np.sort(samples[::stride]), queries)),
    ):
        elapsed, _ = timed(fn, *args)
        slow_s += elapsed * stride
    assert results[0].dtype == np.int64
    ratio = slow_s / fast_s
    assert ratio >= 5.0, f"vectorized kernels only {ratio:.1f}x over scalar"


def test_gap_aware_pipeline_scalar_parity_throughput(benchmark, monkeypatch):
    """Full gap-aware burst pipeline: the REPRO_SCALAR escape hatch gives
    identical results, and the vectorized path is >= 5x faster."""
    trace = bench_trace(KERNEL_N // 10)

    fast = benchmark(extract_bursts_gap_aware, trace)
    fast_s, _ = timed(extract_bursts_gap_aware, trace)
    monkeypatch.setenv(SCALAR_ENV, "1")
    slow_s, slow = timed(extract_bursts_gap_aware, trace)
    monkeypatch.delenv(SCALAR_ENV)
    assert np.array_equal(fast.durations_ns, slow.durations_ns)
    assert fast.n_clipped_bursts == slow.n_clipped_bursts
    ratio = slow_s / fast_s
    assert ratio >= 5.0, f"gap-aware pipeline only {ratio:.1f}x over scalar"
