"""Benchmark harness helpers.

Each benchmark regenerates one table/figure of the paper on the
simulated substrate, prints the paper-vs-measured rows, and asserts the
qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only

Scale knobs default to a few seconds per experiment; set
``REPRO_BENCH_SCALE=full`` for campaign-scale runs (minutes each).
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_SCALE", "small") == "full"


@pytest.fixture
def show(capsys):
    """Print an experiment result outside pytest's capture."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.render())
            print()

    return _show


def scaled(small: dict, full: dict) -> dict:
    """Pick experiment kwargs by scale."""
    return full if FULL else small
