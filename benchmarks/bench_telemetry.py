"""Telemetry overhead guard: instrumentation must stay out of the hot path.

Runs the pinned netsim window workload from ``bench_netsim`` twice per
round — once with the ambient registry live, once with telemetry
disabled (the null-object registry) — interleaved so machine drift hits
both configurations equally.  Min-of-rounds wall time is compared and
the enabled run may cost at most ``MAX_OVERHEAD_FRACTION`` more.

The run also re-checks the telemetry isolation contract from
``tests/telemetry/test_instrumentation.py``: enabling telemetry must not
change a single trace byte.

Run::

    pytest benchmarks/bench_telemetry.py -q

Artifacts land in ``benchmarks/artifacts/`` (override the directory with
``REPRO_BENCH_ARTIFACT_DIR``):

* ``telemetry_overhead.json`` — per-config timings + overhead fraction,
* ``telemetry_metrics.json`` — the metrics snapshot the instrumented
  run produced, stamped with the build-info header.
"""

import json
import os
import time
import zlib
from pathlib import Path

from repro.backends import NetsimBackend, NetsimScale
from repro.backends.base import single_port_plan
from repro.telemetry.export import snapshot_with_header
from repro.telemetry.metrics import get_registry, scoped_registry, set_enabled
from repro.units import ms, seconds

#: ISSUE acceptance bound: telemetry may cost < 5 % events/sec.  Compared
#: against min-of-rounds wall time, which filters scheduler noise.
MAX_OVERHEAD_FRACTION = 0.05

ROUNDS = 5


def _pinned_scale() -> NetsimScale:
    """Same pinned pre-pass scale as ``bench_netsim`` so the two
    benchmarks describe the same workload."""
    return NetsimScale(
        n_downlinks=8,
        n_uplinks=4,
        n_remote_hosts=12,
        warmup_ns=ms(10),
        max_window_ns=ms(20),
    )


def _window():
    plan = single_port_plan("cache", 1, seconds(2), seed=0, port="down0")
    return plan.windows[0]


def _traces_crc(traces) -> int:
    crc = 0
    for name in sorted(traces):
        trace = traces[name]
        crc = zlib.crc32(trace.values.tobytes(), crc)
        crc = zlib.crc32(trace.timestamps_ns.tobytes(), crc)
    return crc


def _artifact_dir() -> Path:
    directory = Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "benchmarks/artifacts"))
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def _timed_window(backend, window) -> tuple[float, int]:
    start = time.perf_counter()
    traces = backend.sample_window(window)
    return time.perf_counter() - start, _traces_crc(traces)


def test_telemetry_overhead_below_bound():
    backend = NetsimBackend(seed=0, scale=_pinned_scale())
    window = _window()

    enabled_times: list[float] = []
    disabled_times: list[float] = []
    crcs: set[int] = set()
    metrics_payload: dict = {}

    def run_enabled() -> None:
        nonlocal metrics_payload
        with scoped_registry():
            wall_s, crc = _timed_window(backend, window)
            metrics_payload = snapshot_with_header(
                get_registry(), extra={"workload": "bench_telemetry pinned window"}
            )
        enabled_times.append(wall_s)
        crcs.add(crc)

    def run_disabled() -> None:
        try:
            set_enabled(False)
            wall_s, crc = _timed_window(backend, window)
        finally:
            set_enabled(True)
        disabled_times.append(wall_s)
        crcs.add(crc)

    # untimed warm-up so neither configuration pays first-run costs
    backend.sample_window(window)

    # alternate which configuration goes first so slow thermal/frequency
    # drift on shared runners cancels instead of biasing one side
    for round_idx in range(ROUNDS):
        first, second = (
            (run_enabled, run_disabled)
            if round_idx % 2 == 0
            else (run_disabled, run_enabled)
        )
        first()
        second()

    assert len(crcs) == 1, (
        "telemetry on/off changed the traces — instrumentation is feeding "
        f"simulation state (crcs: {sorted(hex(c) for c in crcs)})"
    )

    best_enabled = min(enabled_times)
    best_disabled = min(disabled_times)
    overhead = best_enabled / best_disabled - 1.0

    directory = _artifact_dir()
    overhead_payload = {
        "workload": "cache window, pinned 8-down/4-up scale, 20 ms window",
        "rounds": ROUNDS,
        "min_enabled_s": round(best_enabled, 4),
        "min_disabled_s": round(best_disabled, 4),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "trace_crc": hex(crcs.pop()),
    }
    (directory / "telemetry_overhead.json").write_text(
        json.dumps(overhead_payload, indent=2, sort_keys=True) + "\n"
    )
    (directory / "telemetry_metrics.json").write_text(
        json.dumps(metrics_payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\ntelemetry bench: enabled {best_enabled:.3f}s vs disabled "
        f"{best_disabled:.3f}s -> {overhead:+.2%} overhead "
        f"(bound {MAX_OVERHEAD_FRACTION:.0%})"
    )

    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"telemetry costs {overhead:.2%} (min-of-{ROUNDS} rounds), "
        f"bound is {MAX_OVERHEAD_FRACTION:.0%}"
    )
