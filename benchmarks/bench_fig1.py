"""Fig 1 bench: drop rate vs utilization scatter (SNMP granularity)."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig1_drops_vs_utilization(benchmark, show):
    kwargs = scaled(
        dict(n_links=2_000, samples_per_link=24),
        dict(n_links=20_000, samples_per_link=24),
    )
    result = benchmark.pedantic(
        lambda: run_experiment("fig1", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    corr = rows["utilization/drop correlation"]
    # paper: r = 0.098 — drops nearly uncorrelated with average load
    assert 0.0 < corr < 0.3
