"""Bench: adaptive two-rate sampling vs always-fast polling.

An extension of the paper's framework (Sec 4.1/5.1 discuss the
rate-vs-cost limit): the adaptive sampler must capture burst interiors
at the fast interval while polling far less than an always-fast loop on
a mostly-idle link.
"""

import numpy as np

from repro.core import HighResSampler, SamplerConfig
from repro.core.adaptive import AdaptiveConfig, AdaptiveSampler
from repro.core.counters import bind_tx_bytes
from repro.netsim import (
    RackConfig,
    Simulator,
    SwitchCounterSurface,
    TorSwitchConfig,
    build_rack,
)
from repro.units import ms, us
from repro.workloads import WebConfig, WebWorkload


def _web_rack(seed):
    sim = Simulator(seed=seed)
    rack = build_rack(
        sim,
        RackConfig(
            name="t",
            switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
            n_remote_hosts=24,
        ),
    )
    WebWorkload(rack, WebConfig(request_rate_per_s=50, fanout=12), rng=seed).install()
    sim.run_for(ms(20))
    return sim, SwitchCounterSurface(rack.tor)


def test_adaptive_vs_always_fast(benchmark, capsys):
    def run():
        sim, surface = _web_rack(seed=5)
        adaptive = AdaptiveSampler(
            AdaptiveConfig(fast_interval_ns=us(25), slow_interval_ns=us(250)),
            [bind_tx_bytes(surface, "down0")],
            rng=2,
        )
        report, stats = adaptive.run_in_sim(sim, ms(120))

        sim2, surface2 = _web_rack(seed=5)
        fast = HighResSampler(
            SamplerConfig(interval_ns=us(25)), [bind_tx_bytes(surface2, "down0")], rng=2
        )
        fast_report = fast.run_in_sim(sim2, ms(120))
        return report, stats, fast_report

    report, stats, fast_report = benchmark.pedantic(run, rounds=1, iterations=1)
    adaptive_trace = report.traces["down0.tx_bytes"]
    fast_trace = fast_report.traces["down0.tx_bytes"]
    duty = stats.duty_cycle(AdaptiveConfig())
    # both see the same total bytes (no data loss, only resolution)
    adaptive_bytes = int(adaptive_trace.values[-1] - adaptive_trace.values[0])
    fast_bytes = int(fast_trace.values[-1] - fast_trace.values[0])
    with capsys.disabled():
        print("\nadaptive sampling vs always-fast (web downlink, 120 ms)")
        print(f"  polls: adaptive={stats.total_polls} "
              f"(fast={stats.fast_polls}, slow={stats.slow_polls}, "
              f"escalations={stats.escalations}) vs always-fast={len(fast_trace)}")
        print(f"  duty cycle vs always-fast: {duty:.2f}")
        print(f"  bytes observed: adaptive={adaptive_bytes} fast={fast_bytes}")
    assert stats.total_polls < len(fast_trace) * 0.7
    assert duty < 0.7
    # byte conservation: missing samples lose resolution, not volume
    assert abs(adaptive_bytes - fast_bytes) / max(fast_bytes, 1) < 0.05
    # bursts did occur and were escalated to the fast rate
    assert stats.escalations > 0


def test_burstiness_metrics_by_app(benchmark, capsys):
    """IDC and Hurst separate the application classes."""
    from repro.analysis.burstiness import hurst_aggregate_variance, idc_curve
    from repro.synth import APP_PROFILES, OnOffGenerator

    def run():
        out = {}
        for app in ("web", "cache", "hadoop"):
            series = OnOffGenerator(APP_PROFILES[app].downlink).generate(
                800_000, np.random.default_rng(3)
            ).utilization
            out[app] = (
                idc_curve(series, factors=(1, 16, 64)),
                hurst_aggregate_variance(series),
            )
        return out

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nburstiness metrics (downlink utilization, 20 s)")
        for app, (curve, hurst) in metrics.items():
            print(f"  {app:>7}: IDC@1={curve[1]:.3f} IDC@64={curve[64]:.3f} H={hurst:.2f}")
    for app, (curve, hurst) in metrics.items():
        assert curve[64] > curve[1]  # correlated across scales
        assert hurst > 0.55  # long-range dependent, like real DC traffic
