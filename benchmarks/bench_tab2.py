"""Table 2 bench: burst Markov transition matrices + likelihood ratios."""

from conftest import scaled

from repro.data import PAPER
from repro.experiments import run_experiment


def test_tab2_markov_model(benchmark, show):
    kwargs = scaled(
        dict(n_windows=48, window_s=2.0),
        dict(n_windows=240, window_s=10.0),
    )
    result = benchmark.pedantic(
        lambda: run_experiment("tab2", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # p11 within a few points of Table 2 for every app
    for app in ("web", "cache", "hadoop"):
        paper = PAPER.table2[app]
        assert abs(rows[f"{app}: p(1|1)"] - paper.p11) < 0.08
        # likelihood ratio within ~2x and far above 1
        measured_r = rows[f"{app}: likelihood ratio r"]
        assert measured_r > 5
        assert 0.4 < measured_r / paper.likelihood_ratio < 2.5
    # ordering r_web > r_cache > r_hadoop (Eqs 1-3)
    assert (
        rows["web: likelihood ratio r"]
        > rows["cache: likelihood ratio r"]
        > rows["hadoop: likelihood ratio r"]
    )
