"""Fig 4 bench: CDF of inter-burst periods + Poisson rejection."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig4_interburst_periods(benchmark, show):
    kwargs = scaled(
        dict(n_windows=24, window_s=2.0),
        dict(n_windows=240, window_s=10.0),
    )
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # paper: ~40 % of Web/Cache gaps under 100 us
    assert 0.25 <= rows["web: gaps < 100us"] <= 0.55
    assert 0.25 <= rows["cache: gaps < 100us"] <= 0.60
    # gap tails orders of magnitude above burst durations (ms scale p99)
    assert rows["web: p99 gap (ms)"] > 5.0
    # KS test rejects Poisson arrivals for every app
    for app in ("web", "cache", "hadoop"):
        p_value = float(str(rows[f"{app}: KS p-value vs exponential"]).split()[0])
        assert p_value < 0.01
