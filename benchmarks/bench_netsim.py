"""Netsim hot-path performance guard.

Measures the event engine on the exact workload the performance pass was
profiled against: the window phase (sampler polling loop over live
traffic, warmup excluded) of a cache window on the pinned pre-pass
backend scale.  Two numbers are reported and written as a CI artifact:

* **events/sec** — engine events processed per wall-clock second,
* **sim-ns per wall-second** — how much simulated time one second of
  wall time buys, which is what sets campaign turnaround.

The benchmark also re-checks the golden window CRC: a speedup that
changes a single trace byte is a determinism break, not an optimisation
(see ``tests/backends/test_backend_parity.py``).

The asserted floor is deliberately far below the reference machine's
post-pass rate (~490k events/s, up from the 197k pre-pass baseline
recorded below) so slow shared CI runners do not flake, while a
regression anywhere near the pre-pass engine still fails everywhere.

Run::

    pytest benchmarks/bench_netsim.py --benchmark-only

The artifact lands in ``benchmarks/artifacts/netsim_events_per_sec.json``
(override the directory with ``REPRO_BENCH_ARTIFACT_DIR``).
"""

import json
import os
import time
import zlib
from pathlib import Path

from repro.backends import NetsimBackend, NetsimScale
from repro.backends.base import single_port_plan
from repro.core.counters import bind_tx_bytes
from repro.core.sampler import HighResSampler, SamplerConfig
from repro.units import ms, seconds

#: Pre-performance-pass rate on the reference machine for this exact
#: workload (window phase, cache, pinned scale below).  Kept as recorded
#: history so the artifact can report the speedup ratio; the pass/fail
#: floor is machine-tolerant and separate.
RECORDED_BASELINE_EVENTS_PER_SEC = 197_171

#: Conservative floor: ~4x below the reference machine's post-pass rate,
#: ~2.5x above what the pre-pass engine would score there.
MIN_EVENTS_PER_SEC = 120_000

#: Golden CRC of the traces this workload produces (values||timestamps,
#: traces in sorted-name order) — pinned before the performance pass.
PINNED_WINDOW_CRC = 0x5E144EF5


def _pinned_scale() -> NetsimScale:
    """The pre-pass default scale, pinned so the benchmark workload (and
    its golden CRC and baseline) stay comparable across releases even as
    the backend's default scale grows."""
    return NetsimScale(
        n_downlinks=8,
        n_uplinks=4,
        n_remote_hosts=12,
        warmup_ns=ms(10),
        max_window_ns=ms(20),
    )


def _window():
    plan = single_port_plan("cache", 1, seconds(2), seed=0, port="down0")
    return plan.windows[0]


def _traces_crc(traces) -> int:
    crc = 0
    for name in sorted(traces):
        trace = traces[name]
        crc = zlib.crc32(trace.values.tobytes(), crc)
        crc = zlib.crc32(trace.timestamps_ns.tobytes(), crc)
    return crc


def _write_artifact(payload: dict) -> Path:
    directory = Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "benchmarks/artifacts"))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "netsim_events_per_sec.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_netsim_window_events_per_sec(benchmark):
    """Engine throughput on the backend window workload, CRC-locked."""
    backend = NetsimBackend(seed=0, scale=_pinned_scale())
    window = _window()

    def run():
        # The backend's own window recipe, split open so warmup can be
        # excluded and the event count read off the engine: _build is the
        # exact code path sample_window uses.
        sim, surface = backend._build(window)
        events_before = sim.events_processed
        sampler = HighResSampler(
            SamplerConfig(interval_ns=backend.scale.interval_ns),
            [bind_tx_bytes(surface, "down0")],
            rng=backend._window_seed(window, "sampler"),
        )
        start = time.perf_counter()
        report = sampler.run_in_sim(sim, backend._duration_ns(window))
        wall_s = time.perf_counter() - start
        return report, sim.events_processed - events_before, wall_s

    report, events, wall_s = benchmark.pedantic(run, rounds=3, iterations=1)

    crc = _traces_crc(report.traces)
    assert crc == PINNED_WINDOW_CRC, (
        f"netsim window traces changed (crc {crc:#x} != {PINNED_WINDOW_CRC:#x}): "
        "a faster engine that alters a single byte is a determinism break"
    )

    events_per_sec = events / wall_s
    simulated_ns = backend._duration_ns(window)
    sim_ns_per_wall_s = simulated_ns / wall_s
    payload = {
        "workload": "cache window, pinned 8-down/4-up scale, 20 ms window",
        "events": events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events_per_sec),
        "sim_ns_per_wall_s": round(sim_ns_per_wall_s),
        "recorded_baseline_events_per_sec": RECORDED_BASELINE_EVENTS_PER_SEC,
        "ratio_vs_recorded_baseline": round(
            events_per_sec / RECORDED_BASELINE_EVENTS_PER_SEC, 2
        ),
        "min_events_per_sec_floor": MIN_EVENTS_PER_SEC,
        "golden_crc_ok": True,
    }
    path = _write_artifact(payload)
    print(f"\nnetsim bench: {payload['events_per_sec']:,} events/s "
          f"({payload['ratio_vs_recorded_baseline']}x recorded baseline), "
          f"{payload['sim_ns_per_wall_s']:,} sim-ns/wall-s -> {path}")

    assert events_per_sec > MIN_EVENTS_PER_SEC


def test_netsim_default_scale_window_affordable(benchmark):
    """The raised default scale (paper's 16-down rack, 40 ms cap) must
    stay cheaper per window than the old 8-down/20 ms default was before
    the performance pass (~1 s on the reference machine)."""
    backend = NetsimBackend(seed=0)
    window = _window()

    def run():
        return backend.sample_window(window)

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    assert traces  # produced something
    # Generous machine-tolerant ceiling; the reference machine sits ~0.6 s.
    assert benchmark.stats["mean"] < 5.0
