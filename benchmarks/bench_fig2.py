"""Fig 2 bench: 1-minute drop time series on low/high-utilization ports."""

from repro.experiments import run_experiment


def test_fig2_drop_timeseries(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2", seed=0, hours=12), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # drops arrive in sub-minute episodes on both ports
    assert rows["low-util: minutes with zero drops"] > 0.5
    assert rows["high-util: minutes with zero drops"] > 0.3
    assert rows["low-util: median drop-episode span (minutes)"] <= 2.0
    # the high-utilization port drops more often, but both are episodic
    assert rows["high/low drop-minute ratio"] > 1.0
