"""Fig 5 bench: packet sizes inside vs outside bursts."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig5_packet_sizes(benchmark, show):
    kwargs = scaled(dict(duration_s=20.0), dict(duration_s=120.0))
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}

    def increase(app):
        return float(str(rows[f"{app}: relative large-packet increase"]).strip("%+")) / 100

    # paper: web ~+60 %, cache ~+20 %, hadoop small (already all-MTU)
    assert 0.35 <= increase("web") <= 1.0
    assert 0.05 <= increase("cache") <= 0.40
    assert -0.05 <= increase("hadoop") <= 0.15
    assert rows["hadoop: MTU-bin share (always large)"] >= 0.80
    assert rows["cache: small packets still dominate inside bursts"] >= 0.50
    # ordering of the size shift matches the paper
    assert increase("web") > increase("cache") > increase("hadoop")
