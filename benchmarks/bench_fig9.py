"""Fig 9 bench: uplink/downlink share of hot ports at 300 us."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig9_directionality(benchmark, show):
    kwargs = scaled(dict(duration_s=10.0), dict(duration_s=60.0))
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # paper: hadoop 18 % uplink share; web even lower; cache majority-uplink
    assert rows["web: uplink share of hot samples"] < 0.10
    assert 0.08 <= rows["hadoop: uplink share of hot samples"] <= 0.30
    assert rows["cache: uplink share of hot samples"] > 0.45
    assert rows["web share < hadoop share < cache share ordering"] is True
