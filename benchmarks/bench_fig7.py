"""Fig 7 bench: MAD of uplink utilization, 40 us vs 1 s, both directions."""

from conftest import scaled

from repro.experiments import run_experiment


def test_fig7_load_balance(benchmark, show):
    kwargs = scaled(dict(duration_s=10.0), dict(duration_s=60.0))
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", seed=0, **kwargs), rounds=1, iterations=1
    )
    show(result)
    rows = {metric: measured for metric, _p, measured in result.rows}
    # paper: median MAD over 25 % at 40 us for all three rack types
    for app in ("web", "cache", "hadoop"):
        assert rows[f"{app} egress: median MAD @40us"] > 0.25
    # hadoop least balanced, p90 ~100 %
    assert 0.8 <= rows["hadoop egress: p90 MAD @40us"] <= 1.6
    assert (
        rows["hadoop egress: median MAD @40us"]
        > rows["cache egress: median MAD @40us"]
        > rows["web egress: median MAD @40us"]
    )
    # balanced at 1 s
    for app in ("web", "cache", "hadoop"):
        assert rows[f"{app} egress: median MAD @1s"] < 0.25
    # ingress dispersion close to egress (fabric adds little variance)
    for app in ("web", "cache", "hadoop"):
        egress = rows[f"{app} egress: median MAD @40us"]
        ingress = rows[f"{app} ingress vs egress median MAD @40us"]
        assert abs(ingress - egress) / egress < 0.35
