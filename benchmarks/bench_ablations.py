"""Ablation benches for the design choices called out in DESIGN.md.

* Hot-threshold sweep (Sec 5.4: 50 % is not load-bearing).
* Sampling-granularity sweep: coarser sampling merges µbursts — the
  paper's central argument for high resolution.
* Dynamic vs. static buffer carving on the packet simulator.
* Flow-level ECMP vs. per-packet spraying (Sec 7's load-balancing
  implication).
"""

import numpy as np
from conftest import scaled

from repro.analysis import extract_bursts
from repro.analysis.mad import normalized_mad_series, resample_utilization
from repro.netsim import (
    BufferPolicy,
    RackConfig,
    Simulator,
    TorSwitchConfig,
    build_rack,
)
from repro.synth import APP_PROFILES, OnOffGenerator
from repro.units import ms
from repro.workloads import CacheConfig, CacheWorkload


def test_ablation_hot_threshold(benchmark, capsys):
    """Burst statistics are stable across 30/50/70 % thresholds."""
    profile = APP_PROFILES["hadoop"].downlink
    n_ticks = scaled(dict(n=1_000_000), dict(n=8_000_000))["n"]

    def run():
        series = OnOffGenerator(profile).generate(n_ticks, np.random.default_rng(1))
        return {
            threshold: extract_bursts(series.utilization, 25_000, threshold)
            for threshold in (0.3, 0.5, 0.7)
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: hot threshold sweep (hadoop)")
        for threshold, s in stats.items():
            print(
                f"  threshold {threshold:.0%}: hot={s.hot_fraction:.4f} "
                f"p90={s.p90_duration_ns / 1000:.0f}us bursts={s.n_bursts}"
            )
    p90s = [s.p90_duration_ns for s in stats.values()]
    # p90 varies by at most ~2 sampling periods across thresholds
    assert max(p90s) - min(p90s) <= 75_000
    # hot fraction at 30 % within ~3x of the 50 % value (intense bursts)
    assert stats[0.3].hot_fraction < 3.0 * stats[0.5].hot_fraction


def test_ablation_sampling_granularity(benchmark, capsys):
    """Coarser sampling merges µbursts and hides them entirely at 1 ms+."""
    profile = APP_PROFILES["cache"].downlink
    n_ticks = scaled(dict(n=2_000_000), dict(n=8_000_000))["n"]

    def run():
        series = OnOffGenerator(profile).generate(n_ticks, np.random.default_rng(2))
        util = series.utilization
        out = {}
        for factor in (1, 4, 40):  # 25 us, 100 us, 1 ms
            coarse = util[: len(util) // factor * factor].reshape(-1, factor).mean(axis=1)
            out[25_000 * factor] = extract_bursts(coarse, 25_000 * factor)
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: sampling granularity sweep (cache)")
        for interval, s in stats.items():
            print(
                f"  {interval // 1000}us: bursts={s.n_bursts} "
                f"hot={s.hot_fraction:.4f} p90={s.p90_duration_ns / 1000:.0f}us"
            )
    # burst count collapses as granularity coarsens (merging + dilution)
    assert stats[25_000].n_bursts > 3 * stats[100_000].n_bursts
    assert stats[100_000].n_bursts > 3 * stats[1_000_000].n_bursts
    # nearly everything hot vanishes at 1 ms granularity
    assert stats[1_000_000].hot_fraction < stats[25_000].hot_fraction / 3
    # apparent burst durations inflate: µbursts read as one long event
    assert stats[1_000_000].p90_duration_ns > 3 * stats[25_000].p90_duration_ns


def _incast_rack(buffer_policy, seed=9):
    sim = Simulator(seed=seed)
    rack = build_rack(
        sim,
        RackConfig(
            name="t",
            switch=TorSwitchConfig(
                n_downlinks=4, n_uplinks=2, buffer=buffer_policy
            ),
            n_remote_hosts=16,
        ),
    )
    for remote in rack.remote_hosts:
        remote.send_flow(rack.servers[0].name, 200_000)
    sim.run_for(ms(40))
    return rack


def test_ablation_buffer_carving(benchmark, capsys):
    """Dynamic carving absorbs incast better than static partitions."""

    def run():
        dynamic = _incast_rack(BufferPolicy(capacity_bytes=400_000, alpha=2.0))
        static = _incast_rack(
            BufferPolicy(capacity_bytes=400_000, alpha=2.0, static_per_port_bytes=400_000 // 6)
        )
        return dynamic, static

    dynamic, static = benchmark.pedantic(run, rounds=1, iterations=1)
    dynamic_drops = dynamic.tor.total_drops()
    static_drops = static.tor.total_drops()
    dynamic_peak = dynamic.tor.shared_buffer.peak_occupancy_read_and_reset()
    static_peak = static.tor.shared_buffer.peak_occupancy_read_and_reset()
    with capsys.disabled():
        print("\nablation: buffer carving under 16-to-1 incast")
        print(f"  dynamic: drops={dynamic_drops} peak={dynamic_peak}")
        print(f"  static : drops={static_drops} peak={static_peak}")
    # dynamic carving lets the incast victim absorb far beyond its static
    # share, which is why drops hit well below full occupancy (Sec 6.4)
    quota = 400_000 // 6
    assert dynamic_peak > quota
    assert static_peak <= quota + 16 * 1500  # all ports at quota, at most
    assert dynamic_peak > static_peak
    # both configurations drop under sustained 16-to-1 overload
    assert dynamic_drops > 0 and static_drops > 0


def test_ablation_unified_drop_model(benchmark, capsys):
    """Fig 1's decorrelation emerges from burst concurrency alone.

    Instead of the phenomenological link population (`synth.dropmodel`),
    derive drops mechanistically: synthesize rack downlink matrices
    across diurnal activity levels, charge drops whenever more ports are
    simultaneously hot than the shared buffer can absorb, and correlate
    per-port-window mean utilization with those drops.  The correlation
    lands in Fig 1's near-zero regime without any independent
    "burstiness" knob — supporting the paper's causal story.
    """
    from repro.synth import RackSynthesizer

    def run():
        rng = np.random.default_rng(11)
        synthesizer = RackSynthesizer("web")
        utils, drops = [], []
        for _ in range(40):  # 40 windows at varying load
            activity = float(np.clip(rng.lognormal(0.0, 1.0), 0.05, 4.0))
            window = synthesizer.synthesize(20_000, rng, activity=activity)
            downlinks = window.downlink_util
            hot = downlinks > 0.5
            concurrency = hot.sum(axis=1)
            absorbable = 3  # buffer rides out up to 3 simultaneous bursts
            overload = np.maximum(0, concurrency - absorbable)
            # overload drops land on the ports that were hot in that tick
            for port in range(downlinks.shape[1]):
                port_drops = float((overload * hot[:, port]).sum())
                utils.append(float(downlinks[:, port].mean()))
                drops.append(port_drops)
        return float(np.corrcoef(utils, drops)[0, 1])

    correlation = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: mechanistic drop model")
        print(f"  corr(mean utilization, concurrency-driven drops) = {correlation:.3f}")
        print("  paper's Fig 1 correlation: 0.098")
    assert -0.1 < correlation < 0.45  # weak, Fig 1's regime


def test_ablation_ecmp_mode(benchmark, capsys):
    """Per-packet spraying balances uplinks that flow hashing cannot."""

    def run_mode(mode):
        sim = Simulator(seed=4)
        rack = build_rack(
            sim,
            RackConfig(
                name="t",
                switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4, ecmp_mode=mode),
                n_remote_hosts=24,
            ),
        )
        CacheWorkload(rack, CacheConfig(batch_rate_per_s=400), rng=4).install()
        sim.run_for(ms(80))
        uplink_bytes = np.array(
            [p.counters.tx_bytes for p in rack.tor.uplink_ports], dtype=float
        )
        mean = uplink_bytes.mean()
        return float(np.abs(uplink_bytes - mean).mean() / mean)

    def run():
        return run_mode("flow"), run_mode("packet")

    flow_mad, packet_mad = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: ECMP mode (uplink byte-count MAD over 80 ms)")
        print(f"  flow-hash : MAD={flow_mad:.3f}")
        print(f"  per-packet: MAD={packet_mad:.3f}")
    assert packet_mad < flow_mad
    assert packet_mad < 0.05  # spraying is near-perfect
