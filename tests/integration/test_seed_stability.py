"""Seed-stability: headline conclusions must not depend on the seed.

Each check runs a cheap configuration at three seeds and asserts the
*qualitative* claim holds in every run — the guard against conclusions
that only hold for the default seed.
"""

import numpy as np
import pytest

from repro.analysis import extract_bursts, fit_transition_matrix
from repro.analysis.hotports import hot_share_by_direction
from repro.analysis.mad import normalized_mad_series, resample_utilization
from repro.synth import APP_PROFILES, OnOffGenerator, RackSynthesizer

SEEDS = (1, 17, 202)
N_TICKS = 400_000


@pytest.mark.parametrize("seed", SEEDS)
class TestPerPortStability:
    def test_p90_bands(self, seed):
        rng = np.random.default_rng(seed)
        for app, p90_max_ns in (("web", 75_000), ("cache", 300_000), ("hadoop", 300_000)):
            series = OnOffGenerator(APP_PROFILES[app].downlink).generate(N_TICKS, rng)
            stats = extract_bursts(series.utilization, 25_000)
            assert stats.p90_duration_ns <= p90_max_ns, f"{app} seed {seed}"

    def test_likelihood_ratio_ordering(self, seed):
        rng = np.random.default_rng(seed)
        ratios = {}
        for app in ("web", "cache", "hadoop"):
            series = OnOffGenerator(APP_PROFILES[app].downlink).generate(N_TICKS, rng)
            ratios[app] = fit_transition_matrix(series.hot).likelihood_ratio
        assert ratios["web"] > ratios["cache"] > ratios["hadoop"] > 5

    def test_hot_fraction_ordering(self, seed):
        rng = np.random.default_rng(seed)
        hot = {}
        for app in ("web", "cache", "hadoop"):
            series = OnOffGenerator(APP_PROFILES[app].downlink).generate(N_TICKS, rng)
            hot[app] = series.hot.mean()
        assert hot["hadoop"] > hot["cache"] > hot["web"]


@pytest.mark.parametrize("seed", SEEDS)
class TestRackStability:
    def test_fig9_ordering(self, seed):
        shares = {}
        for app in ("web", "cache", "hadoop"):
            rng = np.random.default_rng(seed)
            window = RackSynthesizer(app).synthesize(120_000, rng)
            up = resample_utilization(window.uplink_egress_util, 12)
            down = resample_utilization(window.downlink_util, 12)
            shares[app] = hot_share_by_direction(up, down).uplink_share
        assert shares["web"] < shares["hadoop"] < shares["cache"]

    def test_fig7_hadoop_least_balanced(self, seed):
        medians = {}
        for app in ("web", "hadoop"):
            rng = np.random.default_rng(seed)
            window = RackSynthesizer(app).synthesize(120_000, rng)
            series = normalized_mad_series(
                resample_utilization(window.uplink_egress_util, 2)
            )
            medians[app] = float(np.median(series))
        assert medians["hadoop"] > medians["web"] > 0.25
