"""End-to-end chaos campaign: the ISSUE's acceptance scenario.

A campaign over the synthetic fleet with a 5 % injected window-failure
rate must complete with partial results (transient failures retried,
persistent ones marked failed), and an interrupted checkpointed run must
resume to traces byte-identical to an uninterrupted one.
"""

import numpy as np
import pytest

from repro.analysis.bursts import extract_bursts_gap_aware
from repro.core.campaign import MeasurementCampaign, RetryPolicy, WindowStatus
from repro.faults import FaultInjector, FaultPlan, FaultyWindowSource
from repro.synth.dataset import SyntheticCampaignSource, default_plan
from repro.units import seconds


def make_plan(seed=0):
    # 3 apps x 2 racks x 4 hours = 24 half-second windows.
    return default_plan(
        racks_per_app=2, hours=4, window_duration_ns=seconds(0.5), seed=seed
    )


def faulty_source(seed=0, rate=0.05):
    injector = FaultInjector(
        FaultPlan(
            seed=seed + 1,
            window_failure_rate=rate,
            transient_fraction=0.5,
            sample_loss_rate=0.01,
            wrap_bits=32,
        )
    )
    return FaultyWindowSource(SyntheticCampaignSource(seed=seed), injector), injector


def assert_traces_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert set(left) == set(right)
        for name in left:
            assert left[name].timestamps_ns.tobytes() == right[name].timestamps_ns.tobytes()
            assert np.asarray(left[name].values).tobytes() == np.asarray(
                right[name].values
            ).tobytes()


class TestChaosCampaign:
    def test_five_percent_failure_rate_completes_partially(self):
        plan = make_plan()
        source, injector = faulty_source()
        result = MeasurementCampaign(
            plan, source, retry=RetryPolicy(max_attempts=3, backoff_s=0)
        ).run()
        counts = result.status_counts()
        assert sum(counts.values()) == len(plan.windows)
        # Transients recovered by retry never surface as failures.
        assert counts[WindowStatus.FAILED.value] <= injector.stats.persistent_faults
        assert result.completion_fraction >= 0.8
        # Degraded traces still feed the gap-aware analysis.
        for _window, traces in result.completed():
            for trace in traces.values():
                stats = extract_bursts_gap_aware(trace)
                assert 0.0 < stats.coverage <= 1.0

    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        plan = make_plan(seed=2)
        retry = RetryPolicy(max_attempts=3, backoff_s=0)
        uninterrupted = MeasurementCampaign(
            plan, faulty_source(seed=2)[0], retry=retry
        ).run()

        class Interrupting:
            def __init__(self, inner, stop_after):
                self.inner = inner
                self.stop_after = stop_after
                self.calls = 0

            def sample_window(self, window):
                if self.calls >= self.stop_after:
                    raise KeyboardInterrupt
                self.calls += 1
                return self.inner.sample_window(window)

        ckpt = tmp_path / "ckpt"
        campaign = MeasurementCampaign(
            plan,
            Interrupting(faulty_source(seed=2)[0], stop_after=9),
            retry=retry,
            checkpoint_dir=ckpt,
        )
        with pytest.raises(KeyboardInterrupt):
            campaign.run()

        resumed = MeasurementCampaign(
            plan, faulty_source(seed=2)[0], retry=retry, checkpoint_dir=ckpt
        ).run(resume=True)
        assert_traces_equal(uninterrupted.traces, resumed.traces)
        assert [o.status for o in resumed.outcomes] == [
            o.status for o in uninterrupted.outcomes
        ]
