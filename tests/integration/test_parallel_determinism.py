"""Golden determinism suite for sharded parallel campaigns.

The contract under test (see ``repro.core.parallel``): a campaign run
serially, with 2 workers, and with 4 workers produces **byte-identical**
results — same trace bytes (compared via the traceio integrity CRCs),
same per-window outcomes — including under injected faults and across
checkpoint interrupt/resume at a *different* worker count.
"""

import numpy as np
import pytest

from repro.core.campaign import MeasurementCampaign, RetryPolicy
from repro.core.parallel import ParallelCampaign, shard_plan
from repro.core.traceio import _crc
from repro.errors import CollectionError, ConfigError
from repro.faults import FaultInjector, FaultPlan, FaultyWindowSource
from repro.synth.dataset import SyntheticCampaignSource, default_plan
from repro.units import seconds

SEED = 7


def small_plan():
    # 3 apps x 1 rack x 3 hours = 9 windows; enough shards to exercise
    # out-of-order completion at 2 and 4 workers.
    return default_plan(
        racks_per_app=1, hours=3, window_duration_ns=seconds(0.2), seed=SEED
    )


def clean_source():
    return SyntheticCampaignSource(seed=SEED)


def faulty_source():
    injector = FaultInjector(
        FaultPlan(
            seed=SEED + 1,
            window_failure_rate=0.3,
            transient_fraction=0.5,
            sample_loss_rate=0.05,
            wrap_bits=32,
        )
    )
    return FaultyWindowSource(clean_source(), injector)


def digest(result):
    """Byte-level fingerprint of a campaign result.

    npz archives are not byte-stable (zip metadata), so golden comparisons
    use the same CRC32-over-array-bytes that traceio's integrity records
    use: equal digests == byte-identical trace payloads.
    """
    fingerprint = []
    for window, traces in result.iter_windows():
        entry = [window.rack_id, window.hour]
        for name in sorted(traces):
            trace = traces[name]
            entry.append((name, _crc(trace.timestamps_ns), _crc(trace.values)))
        fingerprint.append(tuple(entry))
    return tuple(fingerprint)


def outcome_digest(result):
    return [
        (o.index, o.status.value, o.attempts, o.error) for o in result.outcomes
    ]


class TestGoldenIdentity:
    def test_serial_vs_2_vs_4_workers_byte_identical(self):
        plan = small_plan()
        serial = MeasurementCampaign(plan, clean_source()).run()
        golden = digest(serial)
        for workers in (1, 2, 4):
            parallel = ParallelCampaign(
                plan, clean_source(), workers=workers
            ).run()
            assert digest(parallel) == golden, f"workers={workers} diverged"
            assert np.array_equal(
                parallel.traces[0][next(iter(parallel.traces[0]))].values,
                serial.traces[0][next(iter(serial.traces[0]))].values,
            )

    def test_identical_under_fault_injection(self):
        plan = small_plan()
        retry = RetryPolicy(max_attempts=3, backoff_s=0.0)
        serial = MeasurementCampaign(plan, faulty_source(), retry=retry).run()
        golden, golden_outcomes = digest(serial), outcome_digest(serial)
        fault_stats = []
        for workers in (1, 4):
            campaign = ParallelCampaign(
                plan, faulty_source(), retry=retry, workers=workers
            )
            parallel = campaign.run()
            assert digest(parallel) == golden, f"workers={workers} diverged"
            assert outcome_digest(parallel) == golden_outcomes
            fault_stats.append(campaign.fault_stats)
        # The aggregated fault tally is itself order-independent.
        assert fault_stats[0] == fault_stats[1]
        assert fault_stats[0] is not None

    def test_max_windows_per_shard_does_not_change_results(self):
        plan = small_plan()
        golden = digest(MeasurementCampaign(plan, clean_source()).run())
        chunked = ParallelCampaign(
            plan, clean_source(), workers=2, max_windows_per_shard=1
        )
        assert len(chunked.shards) == len(plan.windows)
        assert digest(chunked.run()) == golden


class TestCheckpointResume:
    def interrupt(self, plan, ckpt, stop_after):
        class Interrupting:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def sample_window(self, window):
                if self.calls >= stop_after:
                    raise RuntimeError("simulated crash")
                self.calls += 1
                return self.inner.sample_window(window)

        campaign = ParallelCampaign(
            plan,
            Interrupting(clean_source()),
            retry=RetryPolicy(backoff_s=0.0),
            checkpoint_dir=ckpt,
            workers=1,
        )
        with pytest.raises(RuntimeError):
            campaign.run()

    def test_resume_at_different_worker_count_matches_clean_run(self, tmp_path):
        plan = small_plan()
        golden = digest(MeasurementCampaign(plan, clean_source()).run())
        ckpt = tmp_path / "ckpt"
        self.interrupt(plan, ckpt, stop_after=4)
        # The interrupted run left per-shard checkpoints behind.
        assert (ckpt / "shards.json").exists()
        assert any(ckpt.glob("shard_*/manifest.jsonl"))
        resumed = ParallelCampaign(
            plan,
            clean_source(),
            retry=RetryPolicy(backoff_s=0.0),
            checkpoint_dir=ckpt,
            workers=4,
        ).run(resume=True)
        assert digest(resumed) == golden

    def test_resume_under_faults_matches_uninterrupted_run(self, tmp_path):
        plan = small_plan()
        retry = RetryPolicy(max_attempts=3, backoff_s=0.0)
        golden = digest(
            MeasurementCampaign(plan, faulty_source(), retry=retry).run()
        )
        ckpt = tmp_path / "ckpt"
        first = ParallelCampaign(
            plan, faulty_source(), retry=retry, checkpoint_dir=ckpt, workers=1
        )
        first.run()
        # Re-running with resume=True replays everything from checkpoint.
        replayed = ParallelCampaign(
            plan, faulty_source(), retry=retry, checkpoint_dir=ckpt, workers=4
        ).run(resume=True)
        assert digest(replayed) == golden

    def test_resume_refuses_layout_change(self, tmp_path):
        plan = small_plan()
        ckpt = tmp_path / "ckpt"
        ParallelCampaign(plan, clean_source(), checkpoint_dir=ckpt).run()
        relaid = ParallelCampaign(
            plan,
            clean_source(),
            checkpoint_dir=ckpt,
            workers=2,
            max_windows_per_shard=1,
        )
        with pytest.raises(CollectionError):
            relaid.run(resume=True)

    def test_resume_refuses_different_plan(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ParallelCampaign(small_plan(), clean_source(), checkpoint_dir=ckpt).run()
        other = default_plan(
            racks_per_app=1, hours=3, window_duration_ns=seconds(0.2), seed=SEED + 9
        )
        with pytest.raises(CollectionError):
            ParallelCampaign(
                other, clean_source(), checkpoint_dir=ckpt
            ).run(resume=True)


class TestShardLayout:
    def test_shards_partition_the_plan_by_rack(self):
        plan = small_plan()
        shards = shard_plan(plan)
        covered = sorted(i for shard in shards for i in shard.indices)
        assert covered == list(range(len(plan.windows)))
        for shard in shards:
            racks = {plan.windows[i].rack_id for i in shard.indices}
            assert len(racks) == 1

    def test_layout_is_worker_count_invariant(self):
        plan = small_plan()
        assert shard_plan(plan) == shard_plan(plan)
        for campaign_workers in (1, 2, 4, 8):
            campaign = ParallelCampaign(
                plan, clean_source(), workers=campaign_workers
            )
            assert campaign.shards == shard_plan(plan)

    def test_invalid_configuration_rejected(self):
        plan = small_plan()
        with pytest.raises(ConfigError):
            ParallelCampaign(plan, clean_source(), workers=0)
        with pytest.raises(ConfigError):
            shard_plan(plan, max_windows_per_shard=0)


def test_run_campaign_workers_flag_matches_serial():
    plan = small_plan()
    from repro.synth.dataset import run_campaign

    serial = run_campaign(plan, seed=SEED)
    parallel = run_campaign(plan, seed=SEED, workers=2)
    assert digest(parallel) == digest(serial)
