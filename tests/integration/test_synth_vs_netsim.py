"""Cross-validation: the synthetic generator vs. the packet simulator.

DESIGN.md's substitution argument rests on the synthesiser producing the
same qualitative trace statistics as the mechanistic packet simulator.
These tests run both on overlapping scales and compare shape properties
(not absolute values — the two are calibrated to the paper, not to each
other).
"""

import numpy as np
import pytest

from repro.analysis import extract_bursts_from_trace, fit_transition_matrix
from repro.analysis.bursts import trace_hot_mask
from repro.core import HighResSampler, SamplerConfig
from repro.core.counters import bind_tx_bytes
from repro.netsim import (
    RackConfig,
    Simulator,
    SwitchCounterSurface,
    TorSwitchConfig,
    build_rack,
)
from repro.synth import OnOffGenerator, APP_PROFILES
from repro.synth.rackmodel import utilization_to_byte_trace
from repro.units import gbps, ms, us
from repro.workloads import HadoopConfig, HadoopWorkload
from repro.workloads.distributions import ParetoSizes


@pytest.fixture(scope="module")
def netsim_hadoop_trace():
    """A hadoop downlink measured on the packet simulator (200 ms)."""
    sim = Simulator(seed=31)
    rack = build_rack(
        sim,
        RackConfig(
            name="t",
            switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
            n_remote_hosts=24,
        ),
    )
    # Moderate transfer sizes: production shuffle fan-out shares each
    # downlink, so no single flow owns the link for milliseconds; a
    # bounded Pareto keeps individual transfers under ~2 ms of line rate.
    config = HadoopConfig(
        transfer_rate_per_s=20,
        transfer_size=ParetoSizes(min_bytes=300_000, alpha=2.0, max_bytes=2_000_000),
    )
    HadoopWorkload(rack, config, rng=6).install()
    sim.run_for(ms(40))
    surface = SwitchCounterSurface(rack.tor)
    sampler = HighResSampler(
        SamplerConfig(interval_ns=us(25)), [bind_tx_bytes(surface, "down0")], rng=1
    )
    return sampler.run_in_sim(sim, ms(200)).traces["down0.tx_bytes"]


@pytest.fixture(scope="module")
def synth_hadoop_trace():
    rng = np.random.default_rng(31)
    series = OnOffGenerator(APP_PROFILES["hadoop"].downlink).generate(8000, rng)
    return utilization_to_byte_trace(series.utilization, gbps(10), us(25), name="s")


class TestSharedShape:
    def test_both_produce_microbursts(self, netsim_hadoop_trace, synth_hadoop_trace):
        for trace in (netsim_hadoop_trace, synth_hadoop_trace):
            stats = extract_bursts_from_trace(trace)
            assert stats.n_bursts > 3
            assert stats.microburst_fraction > 0.7

    def test_both_show_correlated_bursts(self, netsim_hadoop_trace, synth_hadoop_trace):
        """Likelihood ratio >> 1 on both substrates (the Table 2 claim is
        not an artifact of the generator)."""
        for trace in (netsim_hadoop_trace, synth_hadoop_trace):
            mask = trace_hot_mask(trace)
            if mask.any() and not mask.all():
                ratio = fit_transition_matrix(mask).likelihood_ratio
                assert ratio > 3

    def test_duration_scales_overlap(self, netsim_hadoop_trace, synth_hadoop_trace):
        """Median burst durations agree within an order of magnitude."""
        net = extract_bursts_from_trace(netsim_hadoop_trace)
        syn = extract_bursts_from_trace(synth_hadoop_trace)
        net_median = np.median(net.durations_ns)
        syn_median = np.median(syn.durations_ns)
        assert net_median / syn_median < 10
        assert syn_median / net_median < 10

    def test_multimodal_utilization_on_both(
        self, netsim_hadoop_trace, synth_hadoop_trace
    ):
        """Hadoop utilization is multimodal (Fig 6): mass near zero AND
        mass near line rate on both substrates."""
        for trace in (netsim_hadoop_trace, synth_hadoop_trace):
            util = np.clip(trace.utilization(), 0, 1)
            assert (util < 0.3).mean() > 0.2
            assert (util > 0.7).mean() > 0.005


class TestEcmpImbalanceOnBoth:
    def test_netsim_uplinks_unbalanced_at_fine_grain(self):
        """Flow-hash ECMP in the packet simulator shows the Fig 7 effect;
        the synthetic ECMP model is tested in tests/synth."""
        sim = Simulator(seed=17)
        rack = build_rack(
            sim,
            RackConfig(
                name="t",
                switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
                n_remote_hosts=24,
            ),
        )
        # few long flows -> hadoop-style imbalance
        for server in rack.servers[:3]:
            server.send_flow(
                rack.remote_hosts[int(server.name[-1])].name, 5_000_000
            )
        sim.run_for(ms(30))
        uplink_bytes = np.array(
            [p.counters.tx_bytes for p in rack.tor.uplink_ports], dtype=float
        )
        total = uplink_bytes.sum()
        assert total > 0
        mad = np.abs(uplink_bytes - uplink_bytes.mean()).mean() / uplink_bytes.mean()
        assert mad > 0.25  # the paper's median MAD floor
