"""Size-distribution and arrival-process tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netsim import Simulator
from repro.units import seconds
from repro.workloads.distributions import (
    EmpiricalSizes,
    FixedSizes,
    LogNormalSizes,
    ParetoSizes,
)
from repro.workloads.flows import OnOffArrivals, PoissonArrivals


class TestSizeDistributions:
    def test_fixed(self, rng):
        assert FixedSizes(100).sample(rng) == 100
        with pytest.raises(ConfigError):
            FixedSizes(0)

    def test_lognormal_median(self, rng):
        dist = LogNormalSizes(median_bytes=10_000, sigma=0.5)
        samples = dist.sample_many(rng, 3000)
        assert np.median(samples) == pytest.approx(10_000, rel=0.1)
        assert samples.min() >= 64

    def test_lognormal_clipping(self, rng):
        dist = LogNormalSizes(median_bytes=1000, sigma=2.0, min_bytes=500, max_bytes=2000)
        samples = dist.sample_many(rng, 500)
        assert samples.min() >= 500 and samples.max() <= 2000

    def test_lognormal_validation(self):
        with pytest.raises(ConfigError):
            LogNormalSizes(median_bytes=0, sigma=1.0)
        with pytest.raises(ConfigError):
            LogNormalSizes(median_bytes=10, sigma=1.0, min_bytes=100, max_bytes=50)

    def test_pareto_heavy_tail(self, rng):
        dist = ParetoSizes(min_bytes=1000, alpha=1.2)
        samples = dist.sample_many(rng, 5000)
        assert samples.min() >= 1000
        # heavy tail: max far beyond median
        assert samples.max() > 20 * np.median(samples)

    def test_pareto_bounded(self, rng):
        dist = ParetoSizes(min_bytes=1000, alpha=0.8, max_bytes=10_000)
        assert dist.sample_many(rng, 1000).max() <= 10_000

    def test_empirical(self, rng):
        dist = EmpiricalSizes(sizes=(100, 200), weights=(0.9, 0.1))
        samples = dist.sample_many(rng, 2000)
        assert set(np.unique(samples)) <= {100, 200}
        assert (samples == 100).mean() > 0.8

    def test_empirical_validation(self):
        with pytest.raises(ConfigError):
            EmpiricalSizes(sizes=(1,), weights=(0.5, 0.5))
        with pytest.raises(ConfigError):
            EmpiricalSizes(sizes=(1,), weights=(0.0,))


class TestPoissonArrivals:
    def test_rate_approximately_respected(self, rng):
        sim = Simulator()
        fired = []
        arrivals = PoissonArrivals(
            sim=sim, rate_per_s=1000.0, fire=lambda: fired.append(sim.now), rng=rng
        )
        arrivals.start()
        sim.run_until(seconds(1))
        assert 850 < len(fired) < 1150

    def test_until_respected(self, rng):
        sim = Simulator()
        fired = []
        arrivals = PoissonArrivals(
            sim=sim,
            rate_per_s=1000.0,
            fire=lambda: fired.append(sim.now),
            rng=rng,
            until_ns=seconds(0.1),
        )
        arrivals.start()
        sim.run_until(seconds(1))
        assert all(t < seconds(0.1) for t in fired)

    def test_bad_rate(self, rng):
        arrivals = PoissonArrivals(
            sim=Simulator(), rate_per_s=0.0, fire=lambda: None, rng=rng
        )
        with pytest.raises(ConfigError):
            arrivals.start()


class TestOnOffArrivals:
    def test_bursty_structure(self, rng):
        """Events cluster in ON periods: the variance-to-mean ratio of
        per-bin counts must far exceed a Poisson process's."""
        sim = Simulator()
        fired = []
        arrivals = OnOffArrivals(
            sim=sim,
            on_rate_per_s=2000.0,
            mean_on_s=0.02,
            median_off_s=0.05,
            off_sigma=1.0,
            fire=lambda: fired.append(sim.now),
            rng=rng,
        )
        arrivals.start()
        sim.run_until(seconds(5))
        assert len(fired) > 100
        bins = np.bincount(np.asarray(fired) // seconds(0.01))
        dispersion = bins.var() / bins.mean()
        assert dispersion > 3.0

    def test_validation(self, rng):
        arrivals = OnOffArrivals(
            sim=Simulator(),
            on_rate_per_s=0.0,
            mean_on_s=1.0,
            median_off_s=1.0,
            off_sigma=1.0,
            fire=lambda: None,
            rng=rng,
        )
        with pytest.raises(ConfigError):
            arrivals.start()
