"""Application workload behaviour tests.

These verify the *qualitative* traffic properties the paper attributes
to each application (Secs 4.2, 6.2, 6.3) on the packet simulator.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netsim import RackConfig, Simulator, TorSwitchConfig, build_rack
from repro.units import ms
from repro.workloads import (
    CacheConfig,
    CacheWorkload,
    HadoopConfig,
    HadoopWorkload,
    WebConfig,
    WebWorkload,
)
from repro.workloads.packetsize import APP_PACKET_MIX, PacketSizeModel, PacketMix


def run_workload(workload_class, config, duration_ns=ms(60), seed=11, **rack_kwargs):
    sim = Simulator(seed=seed)
    rack = build_rack(
        sim,
        RackConfig(
            name="t",
            switch=TorSwitchConfig(n_downlinks=8, n_uplinks=4),
            n_remote_hosts=24,
            **rack_kwargs,
        ),
    )
    workload = workload_class(rack, config, rng=seed)
    workload.install(until_ns=duration_ns)
    sim.run_for(duration_ns)
    return rack, workload


class TestWeb:
    def test_fan_in_toward_servers(self):
        rack, workload = run_workload(WebWorkload, WebConfig(request_rate_per_s=80))
        assert workload.stats.requests_issued > 0
        down_rx = sum(p.counters.tx_bytes for p in rack.tor.downlink_ports)
        up_tx = sum(p.counters.tx_bytes for p in rack.tor.uplink_ports)
        # fan-in responses (to servers) dominate page responses (to users)
        assert down_rx > up_tx

    def test_requests_complete_and_pages_ship(self):
        rack, workload = run_workload(
            WebWorkload, WebConfig(request_rate_per_s=40, fanout=8)
        )
        assert workload.stats.requests_completed > 0
        assert workload.stats.responses_sent == workload.stats.requests_completed

    def test_needs_remote_hosts(self):
        sim = Simulator()
        rack = build_rack(sim, RackConfig(n_remote_hosts=0))
        with pytest.raises(ConfigError):
            WebWorkload(rack)

    def test_install_idempotent(self):
        rack, workload = run_workload(WebWorkload, WebConfig(request_rate_per_s=10))
        before = workload.stats.requests_issued
        workload.install()  # second call must not double the sources
        rack.sim.run_for(ms(1))
        assert workload.stats.requests_issued >= before


class TestCache:
    def test_uplink_bound(self):
        rack, workload = run_workload(CacheWorkload, CacheConfig(batch_rate_per_s=300))
        up_tx = sum(p.counters.tx_bytes for p in rack.tor.uplink_ports)
        down_tx = sum(p.counters.tx_bytes for p in rack.tor.downlink_ports)
        # responses leave via uplinks and dwarf ToR->server traffic
        assert up_tx > down_tx

    def test_group_members_activate_together(self):
        rack, workload = run_workload(
            CacheWorkload, CacheConfig(batch_rate_per_s=200, group_size=4)
        )
        # per-server NIC bytes: members of the same group should be similar
        sent = np.array([s.nic.tx_bytes for s in rack.servers])
        assert sent.sum() > 0
        groups = workload.groups
        assert all(len(g) <= 4 for g in groups)

    def test_leaders_assigned(self):
        rack, workload = run_workload(CacheWorkload, CacheConfig())
        assert workload.leaders == [g[0] for g in workload.groups]


class TestHadoop:
    def test_full_mtu_dominates(self):
        rack, _ = run_workload(HadoopWorkload, HadoopConfig())
        hist = np.zeros(6, dtype=np.int64)
        for port in rack.tor.all_ports:
            hist += np.asarray(port.counters.tx_size_hist)
        data_packets = hist[1:].sum()  # exclude the 64 B ACK bin
        if data_packets > 0:
            assert hist[5] / data_packets > 0.7

    def test_local_and_remote_transfers(self):
        rack, workload = run_workload(
            HadoopWorkload, HadoopConfig(local_fraction=0.5, transfer_rate_per_s=30)
        )
        assert workload.stats.requests_issued > 0
        up_tx = sum(p.counters.tx_bytes for p in rack.tor.uplink_ports)
        local_traffic = sum(p.counters.tx_bytes for p in rack.tor.downlink_ports)
        assert up_tx > 0 and local_traffic > 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            HadoopConfig(local_fraction=1.5)
        with pytest.raises(ConfigError):
            HadoopConfig(transfer_rate_per_s=0)


class TestPacketSizeModel:
    def test_mix_per_app(self, rng):
        hadoop = PacketSizeModel(APP_PACKET_MIX["hadoop"])
        web = PacketSizeModel(APP_PACKET_MIX["web"])
        assert hadoop.mean_size() > web.mean_size()
        sizes = [hadoop.data_packet_size(rng) for _ in range(500)]
        assert (np.asarray(sizes) == 1500).mean() > 0.8

    def test_mix_validation(self):
        with pytest.raises(ConfigError):
            PacketMix(sizes=(10,), weights=(1.0,))  # below MIN_PACKET
        with pytest.raises(ConfigError):
            PacketMix(sizes=(100,), weights=(0.0,))
