"""Burstiness-metric tests."""

import numpy as np
import pytest

from repro.analysis.burstiness import (
    coefficient_of_variation,
    hurst_aggregate_variance,
    idc_curve,
    index_of_dispersion,
)
from repro.errors import AnalysisError
from repro.synth import APP_PROFILES, OnOffGenerator


class TestIdc:
    def test_poisson_near_one(self, rng):
        counts = rng.poisson(5.0, 100_000)
        assert index_of_dispersion(counts) == pytest.approx(1.0, abs=0.05)

    def test_clustered_far_above_one(self, rng):
        # on/off modulated counts
        hot = rng.random(50_000) < 0.05
        counts = rng.poisson(np.where(hot, 50.0, 0.5))
        assert index_of_dispersion(counts) > 5.0

    def test_constant_is_zero(self):
        assert index_of_dispersion(np.full(100, 7.0)) == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            index_of_dispersion(np.zeros(10))
        with pytest.raises(AnalysisError):
            index_of_dispersion(np.array([1.0]))

    def test_curve_grows_for_correlated_traffic(self, rng):
        series = OnOffGenerator(APP_PROFILES["hadoop"].downlink).generate(
            400_000, rng
        ).utilization
        curve = idc_curve(series)
        assert curve[64] > curve[1] * 2  # correlation across scales

    def test_curve_flat_for_iid(self, rng):
        curve = idc_curve(rng.poisson(5.0, 400_000).astype(float))
        assert curve[64] == pytest.approx(curve[1], rel=0.3)

    def test_curve_short_series_rejected(self):
        with pytest.raises(AnalysisError):
            idc_curve(np.zeros(1))


class TestHurst:
    def test_iid_near_half(self, rng):
        h = hurst_aggregate_variance(rng.normal(0, 1, 200_000))
        assert h == pytest.approx(0.5, abs=0.06)

    def test_onoff_traffic_above_half(self, rng):
        """Heavy-tailed gap traffic is long-range dependent: H > 0.5."""
        series = OnOffGenerator(APP_PROFILES["web"].downlink).generate(
            500_000, rng
        ).utilization
        h = hurst_aggregate_variance(series)
        assert h > 0.6

    def test_validation(self, rng):
        with pytest.raises(AnalysisError):
            hurst_aggregate_variance(np.ones(1000))
        with pytest.raises(AnalysisError):
            hurst_aggregate_variance(rng.normal(0, 1, 10))


class TestCov:
    def test_known_value(self):
        series = np.array([0.0, 2.0] * 500)
        assert coefficient_of_variation(series) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            coefficient_of_variation(np.zeros(10))
