"""Empirical CDF tests."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCdf
from repro.errors import AnalysisError


class TestBasics:
    def test_evaluation(self):
        cdf = EmpiricalCdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25  # right-continuous: P(X <= 1)
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0

    def test_vectorized_evaluation(self):
        cdf = EmpiricalCdf(np.array([1.0, 2.0]))
        out = cdf(np.array([0.0, 1.5, 3.0]))
        assert list(out) == [0.0, 0.5, 1.0]

    def test_percentiles(self):
        cdf = EmpiricalCdf(np.arange(101, dtype=float))
        assert cdf.median == pytest.approx(50.0)
        assert cdf.p90 == pytest.approx(90.0)
        assert cdf.p99 == pytest.approx(99.0)
        assert cdf.mean == pytest.approx(50.0)

    def test_percentile_bounds(self):
        cdf = EmpiricalCdf(np.array([1.0, 2.0]))
        with pytest.raises(AnalysisError):
            cdf.percentile(101)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            EmpiricalCdf(np.array([]))

    def test_nonfinite_rejected(self):
        with pytest.raises(AnalysisError):
            EmpiricalCdf(np.array([1.0, np.nan]))

    def test_values_readonly(self):
        cdf = EmpiricalCdf(np.array([3.0, 1.0, 2.0]))
        assert list(cdf.values) == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            cdf.values[0] = 0.0


class TestGrid:
    def test_grid_monotone(self):
        rng = np.random.default_rng(0)
        cdf = EmpiricalCdf(rng.lognormal(0, 1, 1000))
        xs, fs = cdf.grid(50)
        assert len(xs) == 50
        assert np.all(np.diff(xs) >= 0)
        assert fs[0] == 0.0 and fs[-1] == 1.0

    def test_grid_needs_points(self):
        cdf = EmpiricalCdf(np.array([1.0, 2.0]))
        with pytest.raises(AnalysisError):
            cdf.grid(1)


class TestKsDistance:
    def test_identical_samples_zero(self):
        samples = np.arange(100, dtype=float)
        assert EmpiricalCdf(samples).ks_distance(EmpiricalCdf(samples)) == 0.0

    def test_disjoint_samples_one(self):
        a = EmpiricalCdf(np.arange(0, 10, dtype=float))
        b = EmpiricalCdf(np.arange(100, 110, dtype=float))
        assert a.ks_distance(b) == pytest.approx(1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = EmpiricalCdf(rng.normal(0, 1, 500))
        b = EmpiricalCdf(rng.normal(0.5, 1, 500))
        assert a.ks_distance(b) == pytest.approx(b.ks_distance(a))
