"""KS-test tests, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.stats

from repro.analysis.kstest import exponential_ks_test, kolmogorov_sf
from repro.errors import AnalysisError


class TestKolmogorovSf:
    def test_limits(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(10.0) < 1e-12

    def test_matches_scipy(self):
        for x in (0.5, 0.8, 1.0, 1.36, 2.0):
            assert kolmogorov_sf(x) == pytest.approx(
                scipy.stats.kstwobign.sf(x), abs=1e-6
            )


class TestExponentialKs:
    def test_exponential_data_not_rejected(self):
        rng = np.random.default_rng(0)
        result = exponential_ks_test(rng.exponential(2.0, 400))
        assert result.p_value > 0.05
        assert not result.rejects_poisson
        assert result.fitted_rate == pytest.approx(0.5, rel=0.2)

    def test_heavy_tailed_data_rejected(self):
        """The paper's Fig 4 conclusion: lognormal-ish gaps are not
        exponential, p-value ~ 0."""
        rng = np.random.default_rng(1)
        result = exponential_ks_test(rng.lognormal(0, 2.0, 2000))
        assert result.p_value < 1e-6
        assert result.rejects_poisson

    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(2)
        samples = rng.lognormal(0, 1.5, 500)
        ours = exponential_ks_test(samples)
        rate = 1.0 / samples.mean()
        theirs = scipy.stats.kstest(samples, "expon", args=(0, 1.0 / rate))
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=0.02)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            exponential_ks_test(np.array([1.0, 2.0]))  # too few
        with pytest.raises(AnalysisError):
            exponential_ks_test(np.array([1.0] * 7 + [-1.0]))  # non-positive
        with pytest.raises(AnalysisError):
            exponential_ks_test(np.ones((4, 4)))
