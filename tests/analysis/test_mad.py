"""Load-balance MAD tests (Fig 7 machinery)."""

import numpy as np
import pytest

from repro.analysis.mad import (
    mean_absolute_deviation,
    normalized_mad_series,
    resample_utilization,
)
from repro.errors import AnalysisError


class TestMad:
    def test_balanced_is_zero(self):
        assert mean_absolute_deviation(np.array([0.3, 0.3, 0.3, 0.3])) == 0.0

    def test_known_value(self):
        assert mean_absolute_deviation(np.array([1.0, 0.0])) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            mean_absolute_deviation(np.array([]))


class TestNormalizedSeries:
    def test_one_of_four_active_is_150_percent(self):
        """One link carrying everything: MAD/mean = 1.5 for 4 links."""
        util = np.array([[0.8, 0.0, 0.0, 0.0]])
        assert normalized_mad_series(util)[0] == pytest.approx(1.5)

    def test_two_of_four_is_100_percent(self):
        util = np.array([[0.4, 0.4, 0.0, 0.0]])
        assert normalized_mad_series(util)[0] == pytest.approx(1.0)

    def test_perfect_balance_is_zero(self):
        util = np.full((5, 4), 0.25)
        assert np.allclose(normalized_mad_series(util), 0.0)

    def test_idle_periods_dropped(self):
        util = np.array([[0.0, 0.0, 0.0, 0.0], [0.4, 0.4, 0.4, 0.4]])
        series = normalized_mad_series(util)
        assert len(series) == 1

    def test_scale_invariance(self):
        util = np.array([[0.8, 0.2, 0.1, 0.1]])
        assert normalized_mad_series(util)[0] == pytest.approx(
            normalized_mad_series(util / 2)[0]
        )

    def test_needs_two_links(self):
        with pytest.raises(AnalysisError):
            normalized_mad_series(np.ones((5, 1)))


class TestResample:
    def test_averages_consecutive_periods(self):
        util = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        coarse = resample_utilization(util, 4)
        assert coarse.shape == (1, 2)
        assert np.allclose(coarse, 0.5)

    def test_imbalance_vanishes_at_coarse_scale(self):
        """The Fig 7 effect: alternating hogs look balanced at 1 s."""
        rng = np.random.default_rng(0)
        n = 4000
        hog = rng.integers(0, 4, size=n)
        util = np.zeros((n, 4))
        util[np.arange(n), hog] = 0.8
        fine_mad = normalized_mad_series(util)
        coarse_mad = normalized_mad_series(resample_utilization(util, 1000))
        assert np.median(fine_mad) > 1.0
        assert np.median(coarse_mad) < 0.1

    def test_truncates_remainder(self):
        util = np.ones((10, 2))
        assert resample_utilization(util, 3).shape == (3, 2)

    def test_factor_validation(self):
        with pytest.raises(AnalysisError):
            resample_utilization(np.ones((4, 2)), 0)
        with pytest.raises(AnalysisError):
            resample_utilization(np.ones((2, 2)), 5)
