"""Markov model tests (Table 2 machinery)."""

import numpy as np
import pytest

from repro.analysis.markov import (
    burst_likelihood_ratio,
    count_transitions,
    fit_pooled_transition_matrix,
    fit_transition_matrix,
)
from repro.errors import AnalysisError


class TestCounting:
    def test_exact_counts(self):
        mask = np.array([0, 0, 1, 1, 0, 1], dtype=bool)
        ((c00, c01), (c10, c11)) = count_transitions(mask)
        assert (c00, c01, c10, c11) == (1, 2, 1, 1)

    def test_too_short(self):
        with pytest.raises(AnalysisError):
            count_transitions(np.array([True]))


class TestMle:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        mask = rng.random(1000) < 0.3
        matrix = fit_transition_matrix(mask)
        assert matrix.p00 + matrix.p01 == pytest.approx(1.0)
        assert matrix.p10 + matrix.p11 == pytest.approx(1.0)

    def test_paper_formula(self):
        """MLE = count(a, b) / count(a) exactly (the paper's estimator)."""
        mask = np.array([0, 1, 0, 0, 1, 1, 1, 0], dtype=bool)
        matrix = fit_transition_matrix(mask)
        ((c00, c01), (c10, c11)) = matrix.counts
        assert matrix.p01 == pytest.approx(c01 / (c00 + c01))
        assert matrix.p11 == pytest.approx(c11 / (c10 + c11))

    def test_independent_series_ratio_near_one(self):
        rng = np.random.default_rng(1)
        mask = rng.random(400_000) < 0.1
        ratio = burst_likelihood_ratio(mask)
        assert 0.8 < ratio < 1.2

    def test_correlated_series_ratio_large(self):
        """A sticky chain yields r >> 1 (the paper's finding)."""
        rng = np.random.default_rng(2)
        state = False
        samples = []
        for _ in range(200_000):
            if state:
                state = rng.random() < 0.7
            else:
                state = rng.random() < 0.01
            samples.append(state)
        ratio = burst_likelihood_ratio(np.array(samples))
        assert ratio > 20

    def test_never_hot_gives_nan_p11(self):
        matrix = fit_transition_matrix(np.zeros(100, dtype=bool))
        assert np.isnan(matrix.p11)

    def test_stationary_fraction(self):
        rng = np.random.default_rng(3)
        mask = rng.random(500_000) < 0.2
        matrix = fit_transition_matrix(mask)
        assert matrix.stationary_hot_fraction == pytest.approx(0.2, abs=0.01)

    def test_as_array(self):
        mask = np.array([0, 1, 0, 1], dtype=bool)
        arr = fit_transition_matrix(mask).as_array()
        assert arr.shape == (2, 2)


class TestPooling:
    def test_pooled_equals_concatenated_counts(self):
        rng = np.random.default_rng(4)
        masks = [rng.random(1000) < 0.2 for _ in range(5)]
        pooled = fit_pooled_transition_matrix(masks)
        totals = np.zeros((2, 2))
        for mask in masks:
            ((a, b), (c, d)) = count_transitions(mask)
            totals += np.array([[a, b], [c, d]])
        assert pooled.p01 == pytest.approx(totals[0, 1] / totals[0].sum())

    def test_pooling_is_not_averaging(self):
        """Windows with different lengths must be weighted by counts."""
        heavy = np.array([0, 1] * 500, dtype=bool)
        light = np.array([0, 0, 0, 1], dtype=bool)
        pooled = fit_pooled_transition_matrix([heavy, light])
        mean_of_fits = np.mean(
            [fit_transition_matrix(heavy).p01, fit_transition_matrix(light).p01]
        )
        assert pooled.p01 != pytest.approx(mean_of_fits)

    def test_empty_pool_rejected(self):
        with pytest.raises(AnalysisError):
            fit_pooled_transition_matrix([])
