"""Burst extraction tests."""

import numpy as np
import pytest

from repro.analysis.bursts import (
    burst_durations_ns,
    extract_bursts,
    extract_bursts_from_trace,
    hot_mask,
    interburst_gaps_ns,
    microburst_fraction,
    time_in_bursts_fraction,
    trace_hot_mask,
)
from repro.core.samples import CounterTrace, ValueKind
from repro.errors import AnalysisError
from repro.units import gbps, us

TICK = us(25)


class TestHotMask:
    def test_threshold_strict(self):
        util = np.array([0.5, 0.500001, 0.49, 0.9])
        assert list(hot_mask(util)) == [False, True, False, True]

    def test_custom_threshold(self):
        util = np.array([0.35, 0.45])
        assert list(hot_mask(util, threshold=0.4)) == [False, True]

    def test_bad_threshold(self):
        with pytest.raises(AnalysisError):
            hot_mask(np.array([0.1]), threshold=1.5)

    def test_2d_rejected(self):
        with pytest.raises(AnalysisError):
            hot_mask(np.zeros((2, 2)))


class TestDurationsAndGaps:
    def test_durations_in_ns(self):
        mask = np.array([0, 1, 1, 0, 1, 0], dtype=bool)
        assert list(burst_durations_ns(mask, TICK)) == [2 * TICK, TICK]

    def test_boundary_exclusion(self):
        mask = np.array([1, 0, 1, 1, 0, 1], dtype=bool)
        assert list(burst_durations_ns(mask, TICK, include_boundary=False)) == [2 * TICK]

    def test_gaps_exclude_boundaries(self):
        mask = np.array([0, 1, 0, 0, 1, 0], dtype=bool)
        assert list(interburst_gaps_ns(mask, TICK)) == [2 * TICK]

    def test_single_sample_burst_is_one_period(self):
        """Sec 5.1: a single hot sample is a 25 us burst."""
        mask = np.array([0, 1, 0], dtype=bool)
        assert list(burst_durations_ns(mask, TICK)) == [TICK]


class TestAggregates:
    def test_time_in_bursts(self):
        assert time_in_bursts_fraction(np.array([1, 0, 1, 1], dtype=bool)) == 0.75
        assert time_in_bursts_fraction(np.array([], dtype=bool)) == 0.0

    def test_microburst_fraction(self):
        durations = np.array([TICK, 40 * TICK, 100 * TICK])  # 25us, 1ms, 2.5ms
        assert microburst_fraction(durations) == pytest.approx(1 / 3)

    def test_extract_bursts_summary(self):
        util = np.array([0.1, 0.9, 0.9, 0.1, 0.7, 0.1, 0.1])
        stats = extract_bursts(util, TICK)
        assert stats.n_bursts == 2
        assert stats.n_samples == 7
        assert list(stats.durations_ns) == [2 * TICK, TICK]
        assert list(stats.gaps_ns) == [TICK]
        assert stats.hot_fraction == pytest.approx(3 / 7)
        assert stats.microburst_fraction == 1.0
        assert stats.single_period_fraction == 0.5

    def test_p90_nan_when_no_bursts(self):
        stats = extract_bursts(np.zeros(10), TICK)
        assert stats.n_bursts == 0
        assert np.isnan(stats.p90_duration_ns)
        assert np.isnan(stats.single_period_fraction)


class TestFromTrace:
    def test_trace_pipeline(self):
        # 31250 B / 25 us = 100 % on a 10 G link
        per_tick = np.array([0, 31_000, 31_000, 100, 100, 20_000, 0])
        values = np.concatenate(([0], np.cumsum(per_tick))).astype(np.int64)
        trace = CounterTrace.regular(TICK, values, ValueKind.CUMULATIVE, rate_bps=gbps(10))
        stats = extract_bursts_from_trace(trace)
        assert stats.n_bursts == 2
        assert stats.interval_ns == TICK
        mask = trace_hot_mask(trace)
        assert mask.sum() == 3

    def test_short_trace_rejected(self):
        trace = CounterTrace.regular(TICK, np.array([0]), ValueKind.CUMULATIVE, rate_bps=1e9)
        with pytest.raises(AnalysisError):
            extract_bursts_from_trace(trace)
