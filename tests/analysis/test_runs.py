"""Run-length encoding tests."""

import numpy as np
import pytest

from repro.analysis.runs import Run, interior_run_lengths, run_lengths, runs_of
from repro.errors import AnalysisError


class TestRunsOf:
    def test_simple(self):
        runs = runs_of(np.array([True, True, False, True]))
        assert runs == [
            Run(0, 2, True),
            Run(2, 3, False),
            Run(3, 4, True),
        ]
        assert [r.length for r in runs] == [2, 1, 1]

    def test_empty(self):
        assert runs_of(np.array([], dtype=bool)) == []

    def test_single_run(self):
        assert runs_of(np.array([False] * 5)) == [Run(0, 5, False)]

    def test_2d_rejected(self):
        with pytest.raises(AnalysisError):
            runs_of(np.zeros((2, 2), dtype=bool))


class TestRunLengths:
    def test_true_runs(self):
        mask = np.array([1, 1, 0, 1, 0, 0, 1, 1, 1], dtype=bool)
        assert list(run_lengths(mask, True)) == [2, 1, 3]
        assert list(run_lengths(mask, False)) == [1, 2]

    def test_all_same(self):
        mask = np.ones(7, dtype=bool)
        assert list(run_lengths(mask, True)) == [7]
        assert list(run_lengths(mask, False)) == []

    def test_empty(self):
        assert len(run_lengths(np.array([], dtype=bool), True)) == 0


class TestInteriorRuns:
    def test_boundary_runs_dropped(self):
        #          [--gap--]burst[gap]burst[--gap--]
        mask = np.array([0, 0, 1, 0, 1, 0, 0], dtype=bool)
        # interior False runs: only the middle single gap
        assert list(interior_run_lengths(mask, False)) == [1]
        # interior True runs: both bursts are interior (flanked by gaps)
        assert list(interior_run_lengths(mask, True)) == [1, 1]

    def test_burst_touching_start_dropped(self):
        mask = np.array([1, 1, 0, 1, 0], dtype=bool)
        assert list(interior_run_lengths(mask, True)) == [1]

    def test_all_one_value_yields_nothing(self):
        assert len(interior_run_lengths(np.ones(5, dtype=bool), True)) == 0

    def test_no_interior_runs(self):
        mask = np.array([1, 0, 1], dtype=bool)
        assert list(interior_run_lengths(mask, False)) == [1]
        assert len(interior_run_lengths(mask, True)) == 0
