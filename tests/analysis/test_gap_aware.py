"""Gap-aware trace semantics and burst analysis under missing data."""

import numpy as np
import pytest

from repro.analysis.bursts import (
    burst_cdf_delta_bound,
    extract_bursts_from_trace,
    extract_bursts_gap_aware,
)
from repro.analysis.cdf import missing_mass_bound
from repro.core.samples import CounterTrace, ValueKind
from repro.errors import AnalysisError
from repro.units import gbps, us

INTERVAL = us(25)


def trace_from_utilization(util, keep=None, name="t"):
    """Regular-grid byte trace for a utilization series, with optional
    sample-retention mask (True = sample survives)."""
    util = np.asarray(util, dtype=np.float64)
    bytes_per_tick = np.rint(util * gbps(10) * INTERVAL / 8e9).astype(np.int64)
    values = np.concatenate(([0], np.cumsum(bytes_per_tick)))
    timestamps = INTERVAL * np.arange(len(values), dtype=np.int64)
    if keep is not None:
        keep = np.asarray(keep, dtype=bool)
        timestamps, values = timestamps[keep], values[keep]
    return CounterTrace(
        timestamps_ns=timestamps,
        values=values,
        kind=ValueKind.CUMULATIVE,
        name=name,
        rate_bps=gbps(10),
    )


class TestGapSemantics:
    def test_regular_trace_has_no_gaps(self):
        trace = trace_from_utilization([0.1] * 20)
        assert not trace.missing_interval_mask().any()
        assert trace.n_missing_instants() == 0
        assert trace.coverage_fraction() == 1.0
        assert trace.split_at_gaps() == [trace]

    def test_single_missing_sample_is_one_gap(self):
        keep = np.ones(21, dtype=bool)
        keep[10] = False
        trace = trace_from_utilization([0.1] * 20, keep=keep)
        mask = trace.missing_interval_mask()
        assert mask.sum() == 1
        assert trace.n_missing_instants() == 1
        assert trace.coverage_fraction() == pytest.approx(19 / 20)

    def test_split_at_gaps_segments_are_contiguous(self):
        keep = np.ones(41, dtype=bool)
        keep[[10, 11, 30]] = False
        trace = trace_from_utilization([0.2] * 40, keep=keep)
        segments = trace.split_at_gaps()
        assert len(segments) == 3
        for segment in segments:
            assert not segment.missing_interval_mask(
                trace.nominal_interval_ns()
            ).any()
        assert sum(len(s) for s in segments) == len(trace)

    def test_bad_tolerance_rejected(self):
        trace = trace_from_utilization([0.1] * 10)
        with pytest.raises(AnalysisError):
            trace.missing_interval_mask(tolerance=0.5)


class TestGapAwareBursts:
    def test_clean_trace_matches_plain_extraction(self):
        util = np.array([0.1, 0.9, 0.9, 0.1, 0.8, 0.1, 0.1, 0.9, 0.9, 0.9, 0.1])
        trace = trace_from_utilization(util)
        plain = extract_bursts_from_trace(trace)
        gap_aware = extract_bursts_gap_aware(trace)
        assert np.array_equal(gap_aware.durations_ns, plain.durations_ns)
        assert gap_aware.n_segments == 1
        assert gap_aware.n_clipped_bursts == 0
        assert gap_aware.cdf_delta_bound == 0.0
        assert gap_aware.coverage == 1.0

    def test_gap_never_fuses_bursts(self):
        """Two bursts separated only by missing cold samples must stay
        two bursts, not merge into one long one."""
        util = np.array([0.9] * 4 + [0.1] * 3 + [0.9] * 4)
        keep = np.ones(12, dtype=bool)
        keep[[5, 6]] = False  # lose the cold separator's interior samples
        trace = trace_from_utilization(util, keep=keep)
        gap_aware = extract_bursts_gap_aware(trace)
        assert gap_aware.n_segments == 2
        # No fabricated long burst: every duration is at most 4 periods.
        assert gap_aware.durations_ns.max() <= 4 * INTERVAL

    def test_bursts_touching_gaps_counted_as_clipped(self):
        util = np.array([0.9] * 5 + [0.9] * 5 + [0.1] * 4)
        keep = np.ones(15, dtype=bool)
        keep[5] = False  # gap in the middle of one long burst
        trace = trace_from_utilization(util, keep=keep)
        gap_aware = extract_bursts_gap_aware(trace)
        assert gap_aware.n_segments == 2
        # Both sides of the severed burst touch the gap.
        assert gap_aware.n_clipped_bursts == 2
        assert gap_aware.cdf_delta_bound > 0.0

    def test_burst_filling_whole_segment_counted_once(self):
        """Regression: a burst fragment that spans an *entire* segment —
        starting exactly at the split point and running to the next gap —
        used to be counted as clipped at both edges, inflating
        ``n_clipped_bursts`` (and the reported CDF bound) by one.

        One true burst over ticks 1..6, severed by gaps at ticks 2-3 and
        7-8: fragment A (tick 1) clips the first segment's right edge,
        fragment B (ticks 4-6) fills the middle segment end to end.
        That's two clipped fragments, not three.
        """
        util = np.array([0.1] + [0.9] * 6 + [0.1] * 3)
        keep = np.ones(11, dtype=bool)
        keep[[3, 8]] = False
        trace = trace_from_utilization(util, keep=keep)
        gap_aware = extract_bursts_gap_aware(trace)
        assert gap_aware.n_segments == 3
        assert sorted(gap_aware.durations_ns.tolist()) == [
            1 * INTERVAL,
            3 * INTERVAL,
        ]
        assert gap_aware.n_clipped_bursts == 2

    def test_degenerate_trace_rejected(self):
        trace = trace_from_utilization([0.1])
        lonely = CounterTrace(
            timestamps_ns=trace.timestamps_ns[:1],
            values=trace.values[:1],
            kind=ValueKind.CUMULATIVE,
            name="lonely",
            rate_bps=gbps(10),
        )
        with pytest.raises(AnalysisError):
            extract_bursts_gap_aware(lonely)


class TestBounds:
    def test_delta_bound_zero_observations(self):
        assert burst_cdf_delta_bound(0, 0) == 1.0

    def test_delta_bound_monotone_in_clipping(self):
        bounds = [burst_cdf_delta_bound(1000, c) for c in (0, 10, 50, 200)]
        assert bounds == sorted(bounds)
        assert all(0.0 < b <= 1.0 for b in bounds)

    def test_delta_bound_shrinks_with_more_bursts(self):
        assert burst_cdf_delta_bound(10_000, 0) < burst_cdf_delta_bound(100, 0)

    def test_delta_bound_bad_confidence_rejected(self):
        with pytest.raises(AnalysisError):
            burst_cdf_delta_bound(10, 1, confidence=1.0)

    def test_bound_actually_covers_induced_shift(self):
        """Empirically: random loss moves the burst CDF by less than the
        reported bound (the acceptance criterion, in miniature)."""
        from repro.analysis.cdf import EmpiricalCdf

        rng = np.random.default_rng(5)
        util = np.where(rng.random(6000) < 0.08, 0.95, 0.05)
        trace = trace_from_utilization(util)
        clean = extract_bursts_from_trace(trace)
        keep = rng.random(len(trace)) >= 0.05
        keep[[0, -1]] = True
        degraded = trace_from_utilization(util, keep=keep)
        gap_aware = extract_bursts_gap_aware(degraded)
        ks = EmpiricalCdf(clean.durations_ns.astype(float)).ks_distance(
            EmpiricalCdf(gap_aware.durations_ns.astype(float))
        )
        assert gap_aware.cdf_delta_bound > 0.0
        assert ks <= gap_aware.cdf_delta_bound

    def test_missing_mass_bound(self):
        assert missing_mass_bound(90, 10) == pytest.approx(0.1)
        assert missing_mass_bound(10, 0) == 0.0
