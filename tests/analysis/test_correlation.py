"""Correlation tests (Fig 1 / Fig 8 machinery)."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    block_mean_correlation,
    mean_offdiagonal,
    pearson_correlation,
    pearson_matrix,
)
from repro.errors import AnalysisError


class TestScalar:
    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(pearson_correlation(rng.random(20_000), rng.random(20_000))) < 0.03

    def test_constant_series_zero_not_nan(self):
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == 0.0

    def test_shape_validation(self):
        with pytest.raises(AnalysisError):
            pearson_correlation(np.arange(3.0), np.arange(4.0))
        with pytest.raises(AnalysisError):
            pearson_correlation(np.array([1.0]), np.array([2.0]))


class TestMatrix:
    def test_diagonal_ones(self):
        rng = np.random.default_rng(1)
        matrix = pearson_matrix(rng.random((100, 5)))
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)

    def test_constant_column_zeros(self):
        data = np.column_stack([np.ones(50), np.arange(50.0)])
        matrix = pearson_matrix(data)
        assert matrix[0, 1] == 0.0
        assert matrix[0, 0] == 1.0

    def test_group_structure_detected(self):
        """Two groups sharing common factors: the Fig 8 cache pattern."""
        rng = np.random.default_rng(2)
        f1, f2 = rng.random(5000), rng.random(5000)
        data = np.column_stack(
            [f1 + 0.1 * rng.random(5000) for _ in range(3)]
            + [f2 + 0.1 * rng.random(5000) for _ in range(3)]
        )
        matrix = pearson_matrix(data)
        groups = [[0, 1, 2], [3, 4, 5]]
        within = block_mean_correlation(matrix, groups)
        across = matrix[0, 3]
        assert within > 0.9
        assert abs(across) < 0.1

    def test_mean_offdiagonal(self):
        matrix = np.array([[1.0, 0.5], [0.5, 1.0]])
        assert mean_offdiagonal(matrix) == pytest.approx(0.5)

    def test_block_requires_pairs(self):
        with pytest.raises(AnalysisError):
            block_mean_correlation(np.eye(4), [[0], [1]])

    def test_matrix_validation(self):
        with pytest.raises(AnalysisError):
            pearson_matrix(np.ones((1, 3)))
        with pytest.raises(AnalysisError):
            mean_offdiagonal(np.ones((2, 3)))
