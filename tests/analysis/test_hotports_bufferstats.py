"""Hot-port and buffer-statistics tests (Fig 9 / Fig 10 machinery)."""

import numpy as np
import pytest

from repro.analysis.bufferstats import (
    BoxStats,
    occupancy_by_hot_ports,
    occupancy_scaling_slope,
)
from repro.analysis.hotports import (
    DirectionShare,
    hot_port_counts,
    hot_share_by_direction,
    max_simultaneous_hot_fraction,
    window_hot_port_counts,
)
from repro.errors import AnalysisError


class TestDirectionShare:
    def test_counts_and_shares(self):
        up = np.array([[0.9, 0.1], [0.6, 0.7]])
        down = np.array([[0.1, 0.1, 0.9], [0.1, 0.1, 0.1]])
        share = hot_share_by_direction(up, down)
        assert share.uplink_hot == 3
        assert share.downlink_hot == 1
        assert share.uplink_share == pytest.approx(0.75)
        assert share.downlink_share == pytest.approx(0.25)

    def test_no_hot_samples_nan(self):
        share = DirectionShare(uplink_hot=0, downlink_hot=0)
        assert np.isnan(share.uplink_share)

    def test_period_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            hot_share_by_direction(np.zeros((2, 2)), np.zeros((3, 2)))


class TestHotPortCounts:
    def test_per_period_counts(self):
        util = np.array([[0.9, 0.9, 0.1], [0.1, 0.1, 0.1]])
        assert list(hot_port_counts(util)) == [2, 0]

    def test_max_fraction(self):
        util = np.array([[0.9, 0.9, 0.1, 0.1], [0.9, 0.1, 0.1, 0.1]])
        assert max_simultaneous_hot_fraction(util) == pytest.approx(0.5)

    def test_window_counts_any_hot_in_window(self):
        # 2 windows of 2 periods, 3 ports
        util = np.array(
            [[0.9, 0.1, 0.1], [0.1, 0.9, 0.1], [0.1, 0.1, 0.1], [0.1, 0.1, 0.1]]
        )
        counts = window_hot_port_counts(util, periods_per_window=2)
        assert list(counts) == [2, 0]

    def test_window_validation(self):
        with pytest.raises(AnalysisError):
            window_hot_port_counts(np.zeros((4, 2)), 0)
        with pytest.raises(AnalysisError):
            window_hot_port_counts(np.zeros((1, 2)), 5)


class TestBoxStats:
    def test_quartiles(self):
        stats = BoxStats.from_samples(np.arange(1, 102, dtype=float))
        assert stats.median == pytest.approx(51.0)
        assert stats.q1 == pytest.approx(26.0)
        assert stats.q3 == pytest.approx(76.0)
        assert stats.whisker_low == 1.0
        assert stats.whisker_high == 101.0
        assert stats.n == 101

    def test_whiskers_exclude_outliers(self):
        samples = np.concatenate([np.full(99, 10.0), [1000.0]])
        stats = BoxStats.from_samples(samples)
        assert stats.whisker_high == 10.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            BoxStats.from_samples(np.array([]))


class TestOccupancyGroups:
    def test_grouping_by_count(self):
        # 4 windows of 1 period each, 2 ports
        util = np.array([[0.9, 0.9], [0.9, 0.1], [0.1, 0.1], [0.9, 0.9]])
        peaks = np.array([0.8, 0.5, 0.1, 0.9])
        groups = occupancy_by_hot_ports(peaks, util, periods_per_window=1)
        assert set(groups) == {0, 1, 2}
        assert groups[2].n == 2
        assert groups[2].median == pytest.approx(0.85)

    def test_normalization(self):
        util = np.array([[0.9, 0.9]])
        groups = occupancy_by_hot_ports(
            np.array([500.0]), util, periods_per_window=1, normalize_to=1000.0
        )
        assert groups[2].median == pytest.approx(0.5)

    def test_scaling_slope(self):
        util = np.array([[0.1, 0.1], [0.9, 0.1], [0.9, 0.9]])
        peaks = np.array([0.1, 0.4, 0.7])
        groups = occupancy_by_hot_ports(peaks, util, periods_per_window=1)
        assert occupancy_scaling_slope(groups) == pytest.approx(0.3)

    def test_slope_needs_two_groups(self):
        util = np.array([[0.9, 0.9]])
        groups = occupancy_by_hot_ports(np.array([0.5]), util, periods_per_window=1)
        with pytest.raises(AnalysisError):
            occupancy_scaling_slope(groups)

    def test_bad_normalize(self):
        util = np.array([[0.9, 0.9]])
        with pytest.raises(AnalysisError):
            occupancy_by_hot_ports(
                np.array([0.5]), util, periods_per_window=1, normalize_to=0.0
            )
