"""Report formatting tests."""

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.report import (
    cdf_series,
    format_cdf_rows,
    format_comparison,
    format_table,
    heatmap_to_text,
)


class TestFormatTable:
    def test_aligned_columns(self):
        table = format_table(
            ("name", "value"), [("a", 1), ("longer-name", 123.456)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "longer-name" in lines[4]
        # header separator matches widths
        assert set(lines[2]) <= {"-", " "}

    def test_float_formatting(self):
        table = format_table(("x",), [(0.001234,), (float("nan"),), (12345.6,)])
        assert "0.00123" in table
        assert "nan" in table
        assert "1.23e+04" in table

    def test_comparison_headers(self):
        table = format_comparison([("m", "p", "v")])
        assert "paper" in table.splitlines()[0]
        assert "measured" in table.splitlines()[0]


class TestCdfHelpers:
    def test_format_cdf_rows(self):
        cdf = EmpiricalCdf(np.arange(100, dtype=float))
        row = format_cdf_rows(cdf, "lat", percentiles=(50, 90), unit="us")
        assert row.startswith("lat:")
        assert "p50=" in row and "p90=" in row and "us" in row

    def test_cdf_series_bounds(self):
        cdf = EmpiricalCdf(np.arange(100, dtype=float))
        series = cdf_series(cdf, n_points=11)
        assert len(series) == 11
        assert series[0][1] == 0.0
        assert series[-1][1] == 1.0


class TestHeatmap:
    def test_renders_square(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        text = heatmap_to_text(matrix, labels=["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert len(lines[0]) == len(lines[1])

    def test_extremes_use_different_shades(self):
        matrix = np.array([[1.0, -1.0], [-1.0, 1.0]])
        text = heatmap_to_text(matrix)
        shades = {ch for line in text.splitlines() for ch in line.split(" ", 1)[1]}
        assert len(shades) == 2
