"""Packet-size regime split tests (Fig 5 machinery)."""

import numpy as np
import pytest

from repro.analysis.packetsizes import split_histogram_by_burst
from repro.core.samples import CounterTrace, ValueKind
from repro.errors import AnalysisError
from repro.units import gbps, us

TICK = us(25)
CAP = 31_250  # bytes per tick at 10 Gbps


def make_traces(per_tick_bytes, per_tick_hists):
    byte_values = np.concatenate(([0], np.cumsum(per_tick_bytes))).astype(np.int64)
    hist_values = np.concatenate(
        [np.zeros((1, 6), dtype=np.int64), np.cumsum(per_tick_hists, axis=0)]
    )
    byte_trace = CounterTrace.regular(
        TICK, byte_values, ValueKind.CUMULATIVE, rate_bps=gbps(10)
    )
    hist_trace = CounterTrace.regular(TICK, hist_values, ValueKind.CUMULATIVE)
    return byte_trace, hist_trace


def test_split_by_regime():
    # tick 0: cold, all small packets; tick 1: hot, all MTU
    bytes_per_tick = [1000, 30_000]
    hists = [[10, 0, 0, 0, 0, 0], [0, 0, 0, 0, 0, 20]]
    byte_trace, hist_trace = make_traces(bytes_per_tick, hists)
    split = split_histogram_by_burst(byte_trace, hist_trace)
    assert split.n_hot_periods == 1
    assert split.n_cold_periods == 1
    assert split.inside[5] == pytest.approx(1.0)
    assert split.outside[0] == pytest.approx(1.0)
    assert split.large_fraction_inside == pytest.approx(1.0)
    assert split.large_fraction_outside == 0.0


def test_histograms_normalised():
    bytes_per_tick = [1000, 30_000, 30_000]
    hists = [[5, 5, 0, 0, 0, 0], [0, 0, 4, 0, 0, 16], [2, 0, 0, 0, 0, 18]]
    byte_trace, hist_trace = make_traces(bytes_per_tick, hists)
    split = split_histogram_by_burst(byte_trace, hist_trace)
    assert split.inside.sum() == pytest.approx(1.0)
    assert split.outside.sum() == pytest.approx(1.0)
    assert split.large_fraction_inside == pytest.approx(34 / 40)


def test_large_packet_increase_metric():
    bytes_per_tick = [1000, 30_000]
    hists = [[5, 0, 0, 0, 0, 5], [0, 0, 0, 0, 0, 10]]
    byte_trace, hist_trace = make_traces(bytes_per_tick, hists)
    split = split_histogram_by_burst(byte_trace, hist_trace)
    # 0.5 outside -> 1.0 inside = +100 %
    assert split.large_packet_increase == pytest.approx(1.0)


def test_empty_regime_gives_zero_histogram():
    bytes_per_tick = [100, 200]  # never hot
    hists = [[1, 0, 0, 0, 0, 0], [1, 0, 0, 0, 0, 0]]
    byte_trace, hist_trace = make_traces(bytes_per_tick, hists)
    split = split_histogram_by_burst(byte_trace, hist_trace)
    assert split.n_hot_periods == 0
    assert split.inside.sum() == 0.0


def test_mismatched_traces_rejected():
    byte_trace, hist_trace = make_traces([1000], [[1, 0, 0, 0, 0, 0]])
    other_byte, _ = make_traces([1000, 2000], [[1, 0, 0, 0, 0, 0]] * 2)
    with pytest.raises(AnalysisError):
        split_histogram_by_burst(other_byte, hist_trace)


def test_1d_histogram_rejected():
    byte_trace, _ = make_traces([1000, 2000], [[1, 0, 0, 0, 0, 0]] * 2)
    flat = CounterTrace.regular(
        TICK, np.array([0, 1, 2], dtype=np.int64), ValueKind.CUMULATIVE
    )
    with pytest.raises(AnalysisError):
        split_histogram_by_burst(byte_trace, flat)
