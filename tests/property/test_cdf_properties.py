"""Property-based tests for the empirical CDF."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCdf

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite_floats, min_size=1, max_size=200).map(np.asarray)


@given(samples)
def test_cdf_is_monotone_and_bounded(data):
    cdf = EmpiricalCdf(data)
    grid = np.sort(np.concatenate([data, data + 1, data - 1]))
    values = cdf(grid)
    assert np.all(np.diff(values) >= 0)
    assert values.min() >= 0.0
    assert values.max() <= 1.0


@given(samples)
def test_cdf_hits_one_at_maximum(data):
    cdf = EmpiricalCdf(data)
    assert cdf(float(data.max())) == 1.0
    assert cdf(float(data.min()) - 1.0) == 0.0


@given(samples)
def test_percentiles_monotone(data):
    cdf = EmpiricalCdf(data)
    qs = [0, 10, 25, 50, 75, 90, 100]
    values = [cdf.percentile(q) for q in qs]
    assert values == sorted(values)
    assert values[0] == float(data.min())
    assert values[-1] == float(data.max())


@given(samples)
def test_median_within_range(data):
    cdf = EmpiricalCdf(data)
    assert data.min() <= cdf.median <= data.max()
    # summation round-off can push the mean a few ulps past the extremes
    slack = max(1e-9, 1e-12 * float(np.abs(data).max()))
    assert data.min() - slack <= cdf.mean <= data.max() + slack


@given(samples, samples)
def test_ks_distance_is_metric_like(a, b):
    cdf_a, cdf_b = EmpiricalCdf(a), EmpiricalCdf(b)
    d = cdf_a.ks_distance(cdf_b)
    assert 0.0 <= d <= 1.0
    assert d == cdf_b.ks_distance(cdf_a)
    assert cdf_a.ks_distance(cdf_a) == 0.0
