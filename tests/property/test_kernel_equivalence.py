"""Equivalence suite: vectorized kernels == scalar reference oracles.

The analysis hot paths (wrap-corrected deltas, gap masks, run-length /
burst extraction, ECDF construction and evaluation) run on numpy
kernels; :mod:`repro.core.kernels` keeps naive pure-Python oracles of
the same computations.  These property tests assert the two agree
*exactly* — values and dtypes — on arbitrary traces, including counter
wraparound, gaps at segment boundaries, and empty / one-sample inputs,
so the fast paths can be optimized without silently changing results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.bursts import (
    _gap_aware_core_segmented,
    _gap_aware_core_vectorized,
    burst_durations_ns,
    extract_bursts,
    hot_mask,
    interburst_gaps_ns,
)
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.runs import interior_run_lengths, run_lengths
from repro.core.kernels import (
    scalar_deltas,
    scalar_ecdf_probs,
    scalar_hot_mask,
    scalar_interior_run_lengths,
    scalar_missing_interval_mask,
    scalar_run_lengths,
    scalar_sorted,
)
from repro.core.samples import CounterTrace, ValueKind
from repro.units import gbps, us

INTERVAL = us(25)

bool_arrays = arrays(dtype=bool, shape=st.integers(0, 200))

utilizations = arrays(
    dtype=np.float64,
    shape=st.integers(0, 200),
    elements=st.floats(0.0, 1.2, allow_nan=False),
)


def assert_same(vectorized, scalar):
    vectorized, scalar = np.asarray(vectorized), np.asarray(scalar)
    assert vectorized.dtype == scalar.dtype
    assert np.array_equal(vectorized, scalar)


# -- wrap-corrected deltas -------------------------------------------------------


@st.composite
def cumulative_values(draw):
    """Monotone int64 counter readings, optionally 0 or 1 sample long."""
    n = draw(st.integers(0, 60))
    increments = draw(
        st.lists(st.integers(0, 2**33), min_size=n, max_size=n)
    )
    return np.cumsum(np.asarray(increments, dtype=np.int64)).astype(np.int64)


@given(cumulative_values())
def test_deltas_equivalence_unwrapped(values):
    assert_same(np.diff(values), scalar_deltas(values))


@given(cumulative_values(), st.sampled_from([32, 48]))
def test_deltas_equivalence_wrapped(values, bits):
    """Wrapped readings: both kernels recover the true increments."""
    wrapped = np.mod(values, np.int64(1) << bits)
    if len(values) < 2:
        trace_deltas = np.zeros(0, dtype=np.int64)
    else:
        trace = CounterTrace(
            timestamps_ns=INTERVAL * np.arange(len(values), dtype=np.int64),
            values=wrapped,
            kind=ValueKind.CUMULATIVE,
            name="wrap",
        )
        trace_deltas = trace.deltas(wrap_bits=bits)
    assert_same(trace_deltas, scalar_deltas(wrapped, wrap_bits=bits))
    # Wrap correction is exact while no interval advances a full period.
    true = np.diff(values)
    if len(true) and true.max(initial=0) < (1 << bits):
        assert np.array_equal(trace_deltas, true)


@given(
    st.integers(2, 40).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.integers(1, 400), min_size=n, max_size=n),
        )
    )
)
def test_gap_mask_equivalence(n_and_intervals):
    n, interval_list = n_and_intervals
    timestamps = np.concatenate(
        ([0], np.cumsum(np.asarray(interval_list, dtype=np.int64)))
    )
    trace = CounterTrace(
        timestamps_ns=timestamps,
        values=np.zeros(n + 1, dtype=np.int64),
        kind=ValueKind.CUMULATIVE,
        name="gaps",
    )
    nominal = trace.nominal_interval_ns()
    assert_same(
        trace.missing_interval_mask(nominal),
        scalar_missing_interval_mask(trace.interval_durations_ns(), nominal, 1.5),
    )


# -- run-length extraction -------------------------------------------------------


@given(bool_arrays, st.booleans())
def test_run_lengths_equivalence(mask, value):
    assert_same(run_lengths(mask, value), scalar_run_lengths(mask, value))


@given(bool_arrays, st.booleans())
def test_interior_run_lengths_equivalence(mask, value):
    assert_same(
        interior_run_lengths(mask, value), scalar_interior_run_lengths(mask, value)
    )


@given(utilizations, st.floats(0.05, 0.95))
def test_hot_mask_equivalence(utilization, threshold):
    assert_same(
        hot_mask(utilization, threshold), scalar_hot_mask(utilization, threshold)
    )


@given(utilizations, st.floats(0.05, 0.95))
def test_burst_extraction_equivalence(utilization, threshold):
    """Full burst summary agrees kernel-by-kernel with the oracles."""
    mask = scalar_hot_mask(utilization, threshold)
    stats = extract_bursts(utilization, INTERVAL, threshold)
    assert_same(stats.durations_ns, scalar_run_lengths(mask, True) * INTERVAL)
    assert_same(stats.gaps_ns, scalar_interior_run_lengths(mask, False) * INTERVAL)
    assert_same(burst_durations_ns(mask, INTERVAL), stats.durations_ns)
    assert_same(interburst_gaps_ns(mask, INTERVAL), stats.gaps_ns)


# -- gap-aware burst extraction --------------------------------------------------


@st.composite
def gappy_traces(draw):
    """Byte traces with arbitrary sample loss, including boundary gaps.

    Builds a regular-grid cumulative byte counter, then drops an
    arbitrary subset of samples (always keeping at least two), so gaps
    can sit at the very start or end of the surviving trace and bursts
    can straddle or exactly abut every split point.
    """
    n = draw(st.integers(2, 80))
    hot_bits = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    util = np.where(np.asarray(hot_bits), 0.95, 0.05)
    bytes_per_tick = np.rint(util * gbps(10) * INTERVAL / 8e9).astype(np.int64)
    values = np.concatenate(([0], np.cumsum(bytes_per_tick)))
    keep_bits = draw(st.lists(st.booleans(), min_size=n + 1, max_size=n + 1))
    keep = np.asarray(keep_bits, dtype=bool)
    if keep.sum() < 2:
        keep[:2] = True
    timestamps = INTERVAL * np.arange(n + 1, dtype=np.int64)
    return CounterTrace(
        timestamps_ns=timestamps[keep],
        values=values[keep],
        kind=ValueKind.CUMULATIVE,
        name="gappy",
        rate_bps=gbps(10),
    )


@settings(max_examples=300)
@given(gappy_traces(), st.floats(0.1, 0.9))
def test_gap_aware_core_equivalence(trace, threshold):
    """The vectorized gap-aware core matches the segment-materializing
    reference on arbitrary gappy traces: durations, inter-burst gaps,
    pooled hot mask, segment count, and clipped-burst count."""
    nominal = trace.nominal_interval_ns()
    segmented = _gap_aware_core_segmented(trace, nominal, threshold, 1.5)
    vectorized = _gap_aware_core_vectorized(trace, nominal, threshold, 1.5)
    for left, right in zip(segmented, vectorized):
        if isinstance(left, np.ndarray):
            assert_same(right, left)
        else:
            assert left == right


# -- empirical CDF ---------------------------------------------------------------


finite_samples = arrays(
    dtype=np.float64,
    shape=st.integers(1, 150),
    elements=st.floats(-1e9, 1e9, allow_nan=False, width=64),
)


@given(finite_samples)
def test_cdf_construction_equivalence(samples):
    assert_same(EmpiricalCdf(samples).values, scalar_sorted(samples))


@given(
    finite_samples,
    st.lists(st.floats(-2e9, 2e9, allow_nan=False), min_size=1, max_size=30),
)
def test_cdf_evaluation_equivalence(samples, queries):
    cdf = EmpiricalCdf(samples)
    queries = np.asarray(queries, dtype=np.float64)
    assert_same(cdf(queries), scalar_ecdf_probs(cdf.values, queries))
    for x in queries[:5]:
        assert cdf(float(x)) == float(scalar_ecdf_probs(cdf.values, np.asarray(x)))


# -- REPRO_SCALAR dispatch -------------------------------------------------------


def test_scalar_escape_hatch_switches_pipeline(monkeypatch):
    """REPRO_SCALAR=1 routes the full pipeline through the oracles and
    produces identical results (spot check, not property-based)."""
    rng = np.random.default_rng(11)
    util = np.where(rng.random(400) < 0.3, 0.9, 0.1)
    bytes_per_tick = np.rint(util * gbps(10) * INTERVAL / 8e9).astype(np.int64)
    values = np.concatenate(([0], np.cumsum(bytes_per_tick)))
    keep = rng.random(401) >= 0.1
    keep[[0, -1]] = True
    trace = CounterTrace(
        timestamps_ns=INTERVAL * np.arange(401, dtype=np.int64)[keep],
        values=values[keep],
        kind=ValueKind.CUMULATIVE,
        name="dispatch",
        rate_bps=gbps(10),
    )
    from repro.analysis.bursts import extract_bursts_gap_aware

    fast = extract_bursts_gap_aware(trace)
    monkeypatch.setenv("REPRO_SCALAR", "1")
    slow = extract_bursts_gap_aware(trace)
    assert np.array_equal(fast.durations_ns, slow.durations_ns)
    assert fast.stats.n_samples == slow.stats.n_samples
    assert fast.stats.hot_fraction == slow.stats.hot_fraction
    assert fast.n_segments == slow.n_segments
    assert fast.n_clipped_bursts == slow.n_clipped_bursts
    assert fast.cdf_delta_bound == slow.cdf_delta_bound
