"""Live and timing-only sampling must agree on miss accounting.

Both modes walk the same polling loop — live mode through the event
simulator, timing-only mode as a vectorised walk — and share the
window-boundary clamp in ``overrun_covered_instants``.  For identical
latency streams their ``scheduled``/``taken``/``missed`` tallies must be
equal, whatever the latency pattern.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HighResSampler, SamplerConfig
from repro.core.counters import CounterBinding, CounterKind, CounterSpec
from repro.netsim import Simulator
from repro.units import us

INTERVAL = us(25)


class ScriptedTiming:
    """Timing model replaying a fixed latency sequence (cycled)."""

    def __init__(self, latencies):
        self.latencies = [int(x) for x in latencies]
        self._next = 0

    def _take(self, n):
        out = [
            self.latencies[(self._next + k) % len(self.latencies)] for k in range(n)
        ]
        self._next += n
        return out

    def group_read_latency_ns(self, specs, rng, dedicated_core=True):
        return self._take(1)[0]

    def group_read_latencies_ns(self, specs, n, rng, dedicated_core=True):
        return np.asarray(self._take(n), dtype=np.int64)

    def expected_cpu_utilization(self, specs, interval_ns):
        return 0.5


def make_sampler(latencies):
    spec = CounterSpec(name="p.tx_bytes", kind=CounterKind.BYTE, rate_bps=10e9)
    return HighResSampler(
        SamplerConfig(interval_ns=INTERVAL, timing=ScriptedTiming(latencies)),
        [CounterBinding(spec=spec, read=lambda: 0)],
        rng=0,
    )


# Latencies from sub-interval up to several intervals, including the
# exact boundary INTERVAL itself.
latency_stream = st.lists(
    st.integers(1, 5 * INTERVAL), min_size=1, max_size=64
)


@given(latency_stream, st.integers(1, 64))
@settings(max_examples=150, deadline=None)
def test_modes_agree_on_scheduled_taken_missed(latencies, n_instants):
    duration = INTERVAL * n_instants
    live = make_sampler(latencies).run_in_sim(Simulator(seed=0), duration)
    timing = make_sampler(latencies).simulate_timing(duration)
    assert live.timing.scheduled == timing.scheduled
    assert live.timing.taken == timing.taken
    assert live.timing.missed == timing.missed


@given(latency_stream, st.integers(1, 64))
@settings(max_examples=150, deadline=None)
def test_accounting_invariants(latencies, n_instants):
    stats = make_sampler(latencies).simulate_timing(INTERVAL * n_instants)
    # Every grid instant is accounted for, exactly once.
    assert stats.scheduled == n_instants
    assert stats.taken + stats.missed >= stats.scheduled
    assert stats.missed <= stats.scheduled
    assert 0.0 <= stats.miss_rate <= 1.0
