"""Property-based tests: streaming reducers agree with batch analysis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import extract_bursts, fit_transition_matrix
from repro.core.streaming import StreamingBurstStats

utilization_series = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=400
).map(np.asarray)


@given(utilization_series)
@settings(max_examples=150)
def test_streaming_equals_batch(util):
    """For ANY input series the streaming statistics equal the batch ones."""
    stream = StreamingBurstStats(interval_ns=25_000)
    stream.update_many(util)
    stream.finalize()
    batch = extract_bursts(util, 25_000)
    assert stream.n_bursts == batch.n_bursts
    assert stream.n_samples == batch.n_samples
    assert stream.hot_fraction == batch.hot_fraction
    mask = util > 0.5
    streaming_matrix = stream.transition_matrix()
    batch_matrix = fit_transition_matrix(mask)
    for attribute in ("p00", "p01", "p10", "p11"):
        a = getattr(streaming_matrix, attribute)
        b = getattr(batch_matrix, attribute)
        assert (np.isnan(a) and np.isnan(b)) or a == b


@given(utilization_series)
@settings(max_examples=150)
def test_duration_buckets_conserve_bursts(util):
    stream = StreamingBurstStats(interval_ns=25_000)
    stream.update_many(util)
    stream.finalize()
    assert sum(stream.duration_buckets) == stream.n_bursts


@given(utilization_series, st.floats(0.01, 0.99))
@settings(max_examples=100)
def test_quantiles_monotone(util, q):
    stream = StreamingBurstStats(interval_ns=25_000)
    stream.update_many(util)
    stream.finalize()
    if stream.n_bursts == 0:
        return
    low = stream.duration_quantile_ns(min(q, 0.5))
    high = stream.duration_quantile_ns(max(q, 0.5))
    assert low <= high
