"""Property-based round-trip test for the distribution-file format."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.io import read_distribution, write_distribution
from repro.data.schema import DistributionFile

xs_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=50,
).map(lambda xs: np.sort(np.asarray(xs)))


@given(xs_strategy, st.sampled_from(["web", "cache", "hadoop"]), st.data())
@settings(max_examples=60)
def test_write_read_roundtrip(tmp_path_factory, xs, app, data):
    n = len(xs)
    cdf = np.sort(
        np.asarray(
            data.draw(
                st.lists(
                    st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n
                )
            )
        )
    )
    dist = DistributionFile(figure="fig6", app=app, unit="fraction", x=xs, cdf=cdf)
    path = tmp_path_factory.mktemp("dist") / "roundtrip.dist"
    write_distribution(path, dist)
    loaded = read_distribution(path)
    assert loaded.figure == dist.figure
    assert loaded.app == app
    np.testing.assert_allclose(loaded.x, dist.x, rtol=1e-6)
    np.testing.assert_allclose(loaded.cdf, dist.cdf, rtol=1e-6, atol=1e-9)
