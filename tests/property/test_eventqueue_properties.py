"""Property-based tests for the event queue's counter bookkeeping.

The queue keeps ``__len__``/``__bool__`` O(1) with a live counter and
bounds lazy-deletion garbage with compaction.  Any push/pop/cancel
schedule must leave the counters agreeing with a naive model, pop events
in exact (time, scheduling-order) order, and keep the physical heap
within a constant factor of the live count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.events import EventQueue

#: (op, value): push at time `value`, cancel the `value`-th oldest live
#: event, or pop (value unused).
operations = st.lists(
    st.tuples(
        st.sampled_from(["push", "cancel", "pop"]),
        st.integers(0, 1_000),
    ),
    max_size=300,
)


@given(operations)
@settings(max_examples=200)
def test_counters_match_naive_model_under_any_schedule(ops):
    queue = EventQueue()
    live = []  # model: live events in scheduling order
    for op, value in ops:
        if op == "push":
            live.append(queue.push(value, lambda: None))
        elif op == "cancel" and live:
            live.pop(value % len(live)).cancel()
        elif op == "pop" and live:
            event = queue.pop()
            # pop returned the minimum (time, seq) live event.
            assert not event.cancelled
            assert event is min(live, key=lambda e: (e.time_ns, e.seq))
            live.remove(event)
        # Counter invariants after every step.
        assert len(queue) == len(live)
        assert bool(queue) == bool(live)
        # Physical heap = live + pending-cancelled entries, and
        # compaction keeps the garbage bounded.
        assert queue.heap_size >= len(queue)
        assert (
            queue.heap_size
            <= len(queue) + max(queue.COMPACT_MIN, len(queue)) + 1
        )

    # Drain: remaining pops come out in (time, scheduling-order) order.
    expected = sorted(live, key=lambda e: (e.time_ns, e.seq))
    drained = []
    while queue:
        drained.append(queue.pop())
    assert drained == expected
    assert len(queue) == 0 and queue.peek_time() is None


@given(operations)
@settings(max_examples=100)
def test_explicit_compaction_never_changes_observable_state(ops):
    queue = EventQueue()
    live = []
    for op, value in ops:
        if op == "push":
            live.append(queue.push(value, lambda: None))
        elif op == "cancel" and live:
            live.pop(value % len(live)).cancel()
        elif op == "pop" and live:
            live.remove(queue.pop())
    before = (len(queue), queue.peek_time())
    queue.compact()
    assert (len(queue), queue.peek_time()) == before
    assert queue.heap_size == len(queue)  # all garbage gone
    drained = []
    while queue:
        drained.append(queue.pop())
    assert drained == sorted(live, key=lambda e: (e.time_ns, e.seq))
