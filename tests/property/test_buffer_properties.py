"""Property-based tests for the shared buffer: conservation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.buffer import BufferPolicy, SharedBuffer

CAPACITY = 50_000

operations = st.lists(
    st.tuples(
        st.integers(0, 2),  # queue index
        st.sampled_from(["admit", "drain"]),
        st.integers(64, 9000),  # size
    ),
    max_size=200,
)


@given(operations, st.floats(0.25, 8.0))
@settings(max_examples=200)
def test_buffer_invariants_hold_under_any_schedule(ops, alpha):
    """Occupancy == sum of queues, never negative, never above capacity,
    and admitted bytes equal released + held."""
    buffer = SharedBuffer(BufferPolicy(capacity_bytes=CAPACITY, alpha=alpha))
    queues = [f"q{i}" for i in range(3)]
    for queue in queues:
        buffer.register_queue(queue)
    held = {queue: [] for queue in queues}
    admitted_bytes = 0
    released_bytes = 0
    for index, op, size in ops:
        queue = queues[index]
        if op == "admit":
            if buffer.admit(queue, size):
                held[queue].append(size)
                admitted_bytes += size
        elif held[queue]:
            size = held[queue].pop()
            buffer.release(queue, size)
            released_bytes += size
        # invariants after every step
        total_held = sum(sum(sizes) for sizes in held.values())
        assert buffer.occupancy_bytes == total_held
        assert 0 <= buffer.occupancy_bytes <= CAPACITY
        assert admitted_bytes == released_bytes + total_held
        for queue_name in queues:
            assert buffer.queue_bytes(queue_name) == sum(held[queue_name])


@given(operations)
@settings(max_examples=100)
def test_watermark_never_below_current_occupancy(ops):
    buffer = SharedBuffer(BufferPolicy(capacity_bytes=CAPACITY, alpha=2.0))
    for i in range(3):
        buffer.register_queue(f"q{i}")
    held = {f"q{i}": [] for i in range(3)}
    max_seen = 0
    for index, op, size in ops:
        queue = f"q{index}"
        if op == "admit":
            if buffer.admit(queue, size):
                held[queue].append(size)
                max_seen = max(max_seen, buffer.occupancy_bytes)
        elif held[queue]:
            buffer.release(queue, held[queue].pop())
    peak = buffer.peak_occupancy_read_and_reset()
    assert peak == max_seen
    assert peak >= buffer.occupancy_bytes
