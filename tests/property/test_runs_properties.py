"""Property-based tests for run-length encoding (the burst primitive)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.runs import interior_run_lengths, run_lengths, runs_of

bool_arrays = arrays(dtype=bool, shape=st.integers(0, 300))


@given(bool_arrays)
def test_runs_partition_the_series(mask):
    """Runs tile the array exactly: contiguous, alternating, complete."""
    runs = runs_of(mask)
    if len(mask) == 0:
        assert runs == []
        return
    assert runs[0].start == 0
    assert runs[-1].stop == len(mask)
    for left, right in zip(runs, runs[1:]):
        assert left.stop == right.start
        assert left.value != right.value  # maximal runs alternate
    for run in runs:
        segment = mask[run.start : run.stop]
        assert np.all(segment == run.value)


@given(bool_arrays)
def test_run_lengths_conserve_mass(mask):
    """True lengths + False lengths == total length."""
    total = run_lengths(mask, True).sum() + run_lengths(mask, False).sum()
    assert total == len(mask)
    assert run_lengths(mask, True).sum() == mask.sum()


@given(bool_arrays)
def test_run_lengths_match_runs_of(mask):
    runs = runs_of(mask)
    assert list(run_lengths(mask, True)) == [r.length for r in runs if r.value]
    assert list(run_lengths(mask, False)) == [r.length for r in runs if not r.value]


@given(bool_arrays)
def test_interior_is_subset(mask):
    """Interior runs are the full runs minus at most two boundary runs."""
    for value in (True, False):
        full = list(run_lengths(mask, value))
        interior = list(interior_run_lengths(mask, value))
        assert len(interior) >= len(full) - 2
        # interior lengths appear in the full list order-preservingly
        if interior:
            start = 1 if (len(mask) and bool(mask[0]) == value) else 0
            assert full[start : start + len(interior)] == interior


@given(bool_arrays, st.integers(1, 10_000))
def test_burst_durations_are_multiples_of_interval(mask, interval):
    from repro.analysis.bursts import burst_durations_ns

    durations = burst_durations_ns(mask, interval)
    assert np.all(durations % interval == 0)
    assert np.all(durations >= interval) or len(durations) == 0
