"""Property-based tests for the calibrated on/off generator models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.calibration import DurationModel, GapModel
from repro.synth.onoff import OnOffGenerator
from repro.synth import APP_PROFILES

# -- DurationModel over its whole parameter space ---------------------------

head_pmfs = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=5
).filter(lambda ps: 0 < sum(ps) <= 1.0)


@given(head_pmfs, st.floats(0.0, 0.95))
@settings(max_examples=100)
def test_duration_model_mean_consistent_with_samples(head, decay):
    model = DurationModel(head=tuple(head), tail_decay=decay)
    rng = np.random.default_rng(0)
    samples = model.sample(rng, 30_000)
    assert samples.min() >= 1
    analytic = model.mean()
    assert abs(samples.mean() - analytic) / analytic < 0.15


@given(head_pmfs, st.floats(0.0, 0.95))
def test_duration_model_p11_in_unit_interval(head, decay):
    model = DurationModel(head=tuple(head), tail_decay=decay)
    assert 0.0 <= model.implied_p11 < 1.0


# -- GapModel ----------------------------------------------------------------


@given(
    st.floats(0.0, 1.0),
    st.floats(1.0, 20.0),
    st.floats(0.0, 1.5),
    st.floats(5.0, 2000.0),
    st.floats(0.0, 2.0),
)
@settings(max_examples=100)
def test_gap_model_samples_positive_and_mean_close(p_small, sm, ss, lm, ls):
    model = GapModel(
        p_small=p_small, small_median=sm, small_sigma=ss,
        large_median=lm, large_sigma=ls,
    )
    rng = np.random.default_rng(1)
    samples = model.sample(rng, 50_000)
    assert samples.min() >= 1
    # rounding to >=1 tick biases the mean upward slightly; allow slack
    analytic = model.mean()
    assert samples.mean() <= 2.0 * analytic + 2.0
    assert samples.mean() >= 0.5 * analytic


@given(st.floats(0.1, 10.0))
def test_activity_scaling_direction(activity):
    base = APP_PROFILES["cache"].downlink.gap
    scaled = base.with_activity(activity)
    if activity > 1.0:
        assert scaled.mean() < base.mean()
    elif activity < 1.0:
        assert scaled.mean() > base.mean()


# -- generator invariants -------------------------------------------------------


@given(st.integers(100, 20_000), st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_generator_output_invariants(n_ticks, seed):
    profile = APP_PROFILES["web"].downlink
    series = OnOffGenerator(profile).generate(n_ticks, np.random.default_rng(seed))
    assert len(series) == n_ticks
    assert series.utilization.min() >= 0.0
    assert series.utilization.max() <= 1.0
    assert np.all((series.utilization > 0.5) == series.hot)
