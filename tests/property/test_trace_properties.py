"""Property-based tests for CounterTrace and the synthesis round trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.samples import CounterTrace, ValueKind
from repro.synth.rackmodel import utilization_to_byte_trace
from repro.units import gbps, us

deltas_strategy = st.lists(st.integers(0, 100_000), min_size=1, max_size=100)


@given(deltas_strategy)
def test_deltas_invert_cumsum(deltas):
    values = np.concatenate(([0], np.cumsum(deltas))).astype(np.int64)
    trace = CounterTrace.regular(us(25), values, ValueKind.CUMULATIVE, rate_bps=gbps(10))
    assert list(trace.deltas()) == deltas


@given(deltas_strategy, st.integers(1, 10))
def test_decimation_conserves_total(deltas, factor):
    values = np.concatenate(([0], np.cumsum(deltas))).astype(np.int64)
    trace = CounterTrace.regular(us(25), values, ValueKind.CUMULATIVE, rate_bps=gbps(10))
    coarse = trace.decimate(factor)
    if len(coarse) >= 2:
        # total bytes between retained endpoints never changes
        assert coarse.values[-1] - coarse.values[0] == trace.values[
            int((len(trace) - 1) // factor * factor)
        ] - trace.values[0]


utilization_strategy = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=200
).map(np.asarray)


@given(utilization_strategy)
@settings(max_examples=100)
def test_utilization_round_trip(util):
    """synth -> byte trace -> utilization recovers the input closely."""
    trace = utilization_to_byte_trace(util, gbps(10), us(25))
    recovered = trace.utilization()
    assert len(recovered) == len(util)
    assert np.abs(recovered - util).max() < 2e-3  # < 1 byte rounding per tick
    assert np.all(np.diff(trace.values) >= 0)


@given(utilization_strategy, st.integers(0, 10**15))
def test_slice_time_bounds(util, start):
    trace = utilization_to_byte_trace(util, gbps(10), us(25), start_ns=start)
    window = trace.slice_time(start, start + us(25) * max(1, len(util) // 2))
    assert len(window) <= len(trace)
    if len(window):
        assert window.timestamps_ns[0] >= start
