"""Property-based tests for the Markov MLE."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.markov import count_transitions, fit_transition_matrix

masks = arrays(dtype=bool, shape=st.integers(2, 300))


@given(masks)
def test_transition_counts_total(mask):
    ((c00, c01), (c10, c11)) = count_transitions(mask)
    assert c00 + c01 + c10 + c11 == len(mask) - 1
    assert min(c00, c01, c10, c11) >= 0


@given(masks)
def test_rows_sum_to_one_when_defined(mask):
    matrix = fit_transition_matrix(mask)
    ((c00, c01), (c10, c11)) = matrix.counts
    if c00 + c01 > 0:
        assert matrix.p00 + matrix.p01 == 1.0 or abs(matrix.p00 + matrix.p01 - 1) < 1e-12
        assert 0.0 <= matrix.p01 <= 1.0
    else:
        assert np.isnan(matrix.p01)
    if c10 + c11 > 0:
        assert abs(matrix.p10 + matrix.p11 - 1) < 1e-12
    else:
        assert np.isnan(matrix.p11)


@given(masks)
def test_counts_recoverable_from_probabilities(mask):
    matrix = fit_transition_matrix(mask)
    ((c00, c01), (c10, c11)) = matrix.counts
    if c00 + c01 > 0:
        assert round(matrix.p01 * (c00 + c01)) == c01


@given(st.integers(1, 50), st.integers(1, 50), st.integers(1, 20))
def test_periodic_series_exact(burst_len, gap_len, cycles):
    """For a deterministic periodic series the MLE is exact."""
    cycle = [False] * gap_len + [True] * burst_len
    mask = np.array(cycle * cycles + [False], dtype=bool)
    matrix = fit_transition_matrix(mask)
    # p11 = (burst_len - 1) / burst_len exactly over interior transitions
    expected_p11 = (burst_len - 1) / burst_len
    assert abs(matrix.p11 - expected_p11) < 0.05 or cycles < 3
