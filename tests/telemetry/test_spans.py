"""Span tracing: nesting, error capture, JSONL export, null behaviour."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.spans import (
    TRACE_VERSION,
    Tracer,
    _NullSpan,
    get_tracer,
    install_tracer,
    span,
)


@pytest.fixture()
def tracer():
    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


class TestNullBehaviour:
    def test_span_is_noop_without_tracer(self):
        previous = install_tracer(None)
        try:
            with span("stage", key="value") as record:
                assert isinstance(record, _NullSpan)
                record.set_attr("ignored", 1)  # must not raise
        finally:
            install_tracer(previous)

    def test_install_rejects_non_tracer(self):
        with pytest.raises(TelemetryError):
            install_tracer(object())  # type: ignore[arg-type]


class TestNesting:
    def test_parent_child_ids(self, tracer):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None
        names = [record["name"] for record in tracer.finished]
        # children finish before their parent
        assert names == ["inner", "sibling", "outer"]

    def test_durations_recorded(self, tracer):
        with span("timed"):
            pass
        record = tracer.finished[0]
        assert record["duration_ns"] >= 0
        assert record["start_ns"] > 0

    def test_attrs_and_set_attr(self, tracer):
        with span("stage", fixed=1) as record:
            record.set_attr("late", "yes")
        assert tracer.finished[0]["attrs"] == {"fixed": 1, "late": "yes"}


class TestErrors:
    def test_exception_recorded_and_reraised(self, tracer):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        record = tracer.finished[0]
        assert record["attrs"]["error"] == "ValueError"
        assert record["duration_ns"] is not None


class TestExport:
    def test_jsonl_header_and_records(self, tracer, tmp_path):
        with span("a"):
            with span("b"):
                pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl", {"experiment": "fig3"})
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["version"] == TRACE_VERSION
        assert header["repro_version"]
        assert header["git_describe"]
        assert header["experiment"] == "fig3"
        records = [json.loads(line) for line in lines[1:]]
        assert [record["name"] for record in records] == ["b", "a"]

    def test_get_tracer_reflects_install(self, tracer):
        assert get_tracer() is tracer
