"""Pipeline instrumentation: the hard acceptance properties.

* Serial and ``--workers 4`` campaigns report identical merged counters.
* Traces are byte-identical with telemetry enabled and disabled.
* Collector drops surface through the registry and survive reattach.
* Campaign/sampler/traceio/fault tallies reach the registry.
"""

import zlib

import numpy as np
import pytest

from repro.backends import SynthBackend
from repro.backends.base import single_port_plan
from repro.core.campaign import (
    CampaignWindow,
    MeasurementCampaign,
    RetryPolicy,
    WindowStatus,
)
from repro.core.collector import CollectorService
from repro.core.counters import CounterKind, CounterSpec
from repro.core.parallel import ParallelCampaign
from repro.core.sampler import HighResSampler, SamplerConfig
from repro.core.samples import CounterTrace, ValueKind
from repro.core.traceio import load_traces, save_traces
from repro.errors import CollectionError, CounterError
from repro.faults import FaultInjector, FaultPlan
from repro.telemetry.metrics import scoped_registry, set_enabled
from repro.units import gbps, seconds, us

SPEC = CounterSpec("p.tx_bytes", CounterKind.BYTE, rate_bps=gbps(10))


def make_trace(n=4, name="p.tx_bytes"):
    return CounterTrace(
        timestamps_ns=np.arange(1, n + 1, dtype=np.int64) * 1000,
        values=np.arange(n, dtype=np.int64) * 100,
        kind=ValueKind.CUMULATIVE,
        name=name,
        rate_bps=gbps(10),
    )


def trace_dict_crc(traces: dict) -> int:
    crc = 0
    for name in sorted(traces):
        trace = traces[name]
        crc = zlib.crc32(np.asarray(trace.values).tobytes(), crc)
        crc = zlib.crc32(np.asarray(trace.timestamps_ns).tobytes(), crc)
    return crc


class TestSerialParallelAgreement:
    def _run(self, workers: int) -> dict:
        plan = single_port_plan("web", 6, seconds(1), seed=3)
        backend = SynthBackend(seed=3)
        with scoped_registry() as registry:
            campaign = ParallelCampaign(
                plan, backend, workers=workers, max_windows_per_shard=2
            )
            campaign.run()
            return registry.snapshot()

    def test_counters_agree_at_any_worker_count(self):
        serial = self._run(1)
        parallel = self._run(4)
        assert serial["counters"] == parallel["counters"]
        assert serial["counters"]["campaign.windows_ok"] == 6
        # one rack per window in single_port_plan, and sharding is by rack
        assert serial["counters"]["parallel.shards_completed"] == 6

    def test_histogram_observation_counts_agree(self):
        # Wall-clock latencies differ per bucket across runs, but the
        # number of observations is an execution invariant.
        serial = self._run(1)
        parallel = self._run(4)
        serial_hist = serial["histograms"]["backend.synth.sample_window_ns"]
        parallel_hist = parallel["histograms"]["backend.synth.sample_window_ns"]
        assert serial_hist["count"] == parallel_hist["count"] == 6


class TestTelemetryNeverTouchesData:
    def test_synth_traces_identical_enabled_vs_disabled(self):
        window = single_port_plan("cache", 1, seconds(1), seed=7).windows[0]
        backend = SynthBackend(seed=7)
        with scoped_registry():
            enabled_crc = trace_dict_crc(backend.sample_window(window))
        try:
            set_enabled(False)
            disabled_crc = trace_dict_crc(backend.sample_window(window))
        finally:
            set_enabled(True)
        assert enabled_crc == disabled_crc

    def test_netsim_traces_identical_enabled_vs_disabled(self):
        from repro.backends import NetsimBackend, NetsimScale
        from repro.units import ms

        plan = single_port_plan("web", 1, ms(6), seed=0, port="down0")
        backend = NetsimBackend(seed=0, scale=NetsimScale.smoke())
        with scoped_registry():
            enabled_crc = trace_dict_crc(backend.sample_window(plan.windows[0]))
        try:
            set_enabled(False)
            disabled_crc = trace_dict_crc(backend.sample_window(plan.windows[0]))
        finally:
            set_enabled(True)
        assert enabled_crc == disabled_crc


class TestCollectorTelemetry:
    def test_drops_surface_through_registry(self, registry):
        collector = CollectorService(batch_size=100, queue_capacity=2)
        collector.register(SPEC)
        for i in range(5):
            collector.record(SPEC.name, i, i)
        snap = registry.snapshot()
        assert snap["counters"]["collector.samples_dropped"] == 3
        assert collector.samples_dropped == 3

    def test_reattach_preserves_lifetime_drops(self, registry):
        collector = CollectorService(batch_size=100, queue_capacity=1)
        collector.register(SPEC)
        collector.record(SPEC.name, 1, 1)
        collector.record(SPEC.name, 2, 2)  # dropped
        assert collector.dropped_count(SPEC.name) == 1
        collector.register(SPEC, reattach=True)
        # fresh window: buffers cleared, lifetime tally kept
        assert collector.sample_count(SPEC.name) == 0
        assert collector.dropped_count(SPEC.name) == 1
        collector.record(SPEC.name, 3, 3)
        collector.record(SPEC.name, 4, 4)  # dropped again
        assert collector.dropped_count(SPEC.name) == 2
        assert registry.snapshot()["counters"]["collector.samples_dropped"] == 2
        # the per-window trace meta only reports the current attach's loss
        traces = collector.finalize()
        assert traces[SPEC.name].meta["samples_dropped"] == 1

    def test_plain_double_register_still_rejected(self):
        collector = CollectorService()
        collector.register(SPEC)
        with pytest.raises(CounterError):
            collector.register(SPEC)

    def test_reattach_with_different_spec_rejected(self):
        collector = CollectorService()
        collector.register(SPEC)
        other = CounterSpec(SPEC.name, CounterKind.BYTE, rate_bps=gbps(40))
        with pytest.raises(CounterError):
            collector.register(other, reattach=True)

    def test_queue_depth_high_water_gauge(self, registry):
        collector = CollectorService(batch_size=4)
        collector.register(SPEC)
        for i in range(7):
            collector.record(SPEC.name, i, i)
        collector.finalize()
        assert collector.queue_depth_high_water == 4
        snap = registry.snapshot()
        assert snap["gauges"]["collector.queue_depth_high_water"] == 4

    def test_ship_counters(self, registry):
        collector = CollectorService(batch_size=2)
        collector.register(SPEC)
        for i in range(4):
            collector.record(SPEC.name, i, i)
        snap = registry.snapshot()
        assert snap["counters"]["collector.batches_shipped"] == 2
        assert snap["counters"]["collector.bytes_shipped"] == collector.bytes_shipped > 0


class TestSamplerTelemetry:
    def test_timing_stats_published(self, registry):
        from repro.core.counters import CounterBinding

        spec = CounterSpec("p.tx_bytes", CounterKind.BYTE, rate_bps=gbps(10))
        sampler = HighResSampler(
            SamplerConfig(interval_ns=us(25)),
            [CounterBinding(spec=spec, read=lambda: 0)],
            rng=0,
        )
        stats = sampler.simulate_timing(seconds(1))
        counters = registry.snapshot()["counters"]
        assert counters["sampler.instants_scheduled"] == stats.scheduled
        assert counters["sampler.reads_taken"] == stats.taken
        assert counters["sampler.instants_missed"] == stats.missed
        assert counters["sampler.read_overruns"] == stats.overruns
        assert stats.scheduled > 0


class _FlakySource:
    """web-w0 fails once (degraded after retry); web-w1 always fails."""

    def __init__(self):
        self.attempts: dict[str, int] = {}

    def sample_window(self, window: CampaignWindow):
        n = self.attempts.get(window.rack_id, 0) + 1
        self.attempts[window.rack_id] = n
        if window.rack_id.endswith("w0") and n == 1:
            raise CollectionError("transient")
        if window.rack_id.endswith("w1"):
            raise CollectionError("persistent")
        return {"p.tx_bytes": make_trace()}


class TestCampaignTelemetry:
    def test_window_status_and_retry_counters(self, registry):
        plan = single_port_plan("web", 3, seconds(1))
        campaign = MeasurementCampaign(
            plan,
            _FlakySource(),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            sleep=lambda _s: None,
        )
        result = campaign.run()
        counters = registry.snapshot()["counters"]
        assert counters["campaign.windows_ok"] == 1
        assert counters["campaign.windows_degraded"] == 1
        assert counters["campaign.windows_failed"] == 1
        # w0 retried once, w1 retried once before exhausting its budget
        assert counters["campaign.window_retries"] == 2
        assert result.status_counts()[WindowStatus.FAILED.value] == 1

    def test_checkpoint_bytes_counter(self, registry, tmp_path):
        plan = single_port_plan("web", 1, seconds(1))

        class Source:
            def sample_window(self, window):
                return {"p.tx_bytes": make_trace()}

        MeasurementCampaign(plan, Source(), checkpoint_dir=tmp_path).run()
        counters = registry.snapshot()["counters"]
        archive = tmp_path / "window_00000.npz"
        assert counters["campaign.checkpoint_bytes"] == archive.stat().st_size


class TestTraceioTelemetry:
    def test_write_and_verify_counters(self, registry, tmp_path):
        traces = {"p.tx_bytes": make_trace()}
        save_traces(tmp_path / "t.npz", traces)
        load_traces(tmp_path / "t.npz")
        counters = registry.snapshot()["counters"]
        assert counters["traceio.archives_written"] == 1
        assert counters["traceio.bytes_written"] == (tmp_path / "t.npz").stat().st_size
        assert counters["traceio.crc_verified"] == 1

    def test_crc_failure_counter(self, registry, tmp_path):
        import numpy as np_mod

        path = tmp_path / "t.npz"
        save_traces(path, {"p.tx_bytes": make_trace()})
        # corrupt the stored values in place, keeping the zip readable
        loaded = dict(np_mod.load(path, allow_pickle=False))
        loaded["t0.values"] = loaded["t0.values"] + 1
        np_mod.savez_compressed(path, **loaded)
        with pytest.raises(Exception):
            load_traces(path)
        counters = registry.snapshot()["counters"]
        assert counters["traceio.crc_failures"] == 1


class TestFaultTelemetry:
    def test_injector_tallies_mirrored(self, registry):
        injector = FaultInjector(FaultPlan(seed=5, sample_loss_rate=0.5))
        trace = make_trace(n=200)
        degraded = injector.degrade_trace(trace, "site-a")
        dropped = injector.stats.samples_dropped
        assert dropped > 0
        assert len(degraded) == len(trace) - dropped
        counters = registry.snapshot()["counters"]
        assert counters["faults.samples_dropped"] == dropped
