"""Telemetry test fixtures: every test runs against its own registry."""

import pytest

from repro.telemetry.metrics import scoped_registry


@pytest.fixture(autouse=True)
def registry():
    """Fresh ambient registry per test; the previous one is restored."""
    with scoped_registry() as reg:
        yield reg
