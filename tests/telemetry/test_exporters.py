"""Exporters: Prometheus text exposition, JSON snapshots, build info."""

import json

from repro.telemetry.export import (
    build_info,
    git_describe,
    package_version,
    snapshot_with_header,
    to_prometheus,
    write_metrics_json,
    write_metrics_prometheus,
)


class TestBuildInfo:
    def test_package_version_resolves(self):
        assert isinstance(package_version(), str)
        assert package_version() not in ("", "unknown")

    def test_git_describe_is_cached_string(self):
        first = git_describe()
        assert isinstance(first, str) and first
        assert git_describe() is first  # lru_cache: one subprocess at most

    def test_build_info_keys(self):
        info = build_info()
        assert set(info) == {"repro_version", "git_describe"}


class TestPrometheus:
    def test_counter_exposition(self, registry):
        registry.counter("campaign.windows_ok").inc(4)
        text = to_prometheus(registry)
        assert "# TYPE repro_campaign_windows_ok_total counter" in text
        assert "repro_campaign_windows_ok_total 4" in text

    def test_gauge_exposition(self, registry):
        registry.gauge("collector.queue_depth_high_water").set(17)
        text = to_prometheus(registry)
        assert "# TYPE repro_collector_queue_depth_high_water gauge" in text
        assert "repro_collector_queue_depth_high_water 17" in text

    def test_histogram_cumulative_buckets(self, registry):
        hist = registry.histogram("lat", bounds=(10, 100))
        for value in (5, 50, 5000):
            hist.observe(value)
        text = to_prometheus(registry)
        assert 'repro_lat_bucket{le="10"} 1' in text
        assert 'repro_lat_bucket{le="100"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 5055" in text
        assert "repro_lat_count 3" in text

    def test_names_sanitised(self, registry):
        registry.counter("backend.netsim.sample-window").inc()
        assert "repro_backend_netsim_sample_window_total 1" in to_prometheus(registry)

    def test_header_comment_carries_build_info(self, registry):
        first_line = to_prometheus(registry).splitlines()[0]
        assert first_line.startswith("# repro telemetry")
        assert package_version() in first_line


class TestJsonSnapshot:
    def test_header_stamped(self, registry):
        registry.counter("c").inc()
        payload = snapshot_with_header(registry, extra={"experiment": "tab1"})
        assert payload["header"]["repro_version"] == package_version()
        assert payload["header"]["git_describe"] == git_describe()
        assert payload["header"]["experiment"] == "tab1"
        assert payload["header"]["created_unix_s"] > 0
        assert payload["counters"] == {"c": 1}

    def test_write_json_roundtrip(self, registry, tmp_path):
        registry.counter("campaign.windows_ok").inc(2)
        path = write_metrics_json(tmp_path / "metrics.json", registry)
        payload = json.loads(path.read_text())
        assert payload["counters"]["campaign.windows_ok"] == 2
        assert "git_describe" in payload["header"]

    def test_write_prometheus_file(self, registry, tmp_path):
        registry.counter("c").inc()
        path = write_metrics_prometheus(tmp_path / "metrics.prom", registry)
        assert "repro_c_total 1" in path.read_text()
