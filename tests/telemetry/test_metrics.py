"""Metrics registry: metric semantics, snapshots, and shard merging."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    DEFAULT_NS_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    enabled,
    get_registry,
    scoped_registry,
    set_enabled,
)


class TestCounter:
    def test_monotonic(self, registry):
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_rejected(self, registry):
        with pytest.raises(TelemetryError):
            registry.counter("a.b").inc(-1)

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_set_and_high_water(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(4)
        gauge.set_max(2)
        assert gauge.value == 4
        gauge.set_max(9)
        assert gauge.value == 9


class TestHistogram:
    def test_bucket_placement(self, registry):
        hist = registry.histogram("lat", bounds=(10, 100, 1000))
        for value in (5, 10, 11, 1000, 5000):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]
        assert hist.inf_count == 1
        assert hist.count == 5
        assert hist.sum == 5 + 10 + 11 + 1000 + 5000
        assert hist.mean == pytest.approx(hist.sum / 5)

    def test_bad_bounds_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram("h", bounds=(10, 10))
        with pytest.raises(TelemetryError):
            Histogram("h", bounds=(100, 10))
        with pytest.raises(TelemetryError):
            Histogram("h", bounds=())

    def test_rebind_with_different_buckets_rejected(self, registry):
        registry.histogram("lat", bounds=(1, 2))
        with pytest.raises(TelemetryError):
            registry.histogram("lat", bounds=(1, 2, 3))

    def test_default_buckets_cover_ns_decades(self, registry):
        hist = registry.histogram("lat")
        assert hist.bounds == DEFAULT_NS_BUCKETS


class TestTypeConflicts:
    def test_counter_then_gauge(self, registry):
        registry.counter("m")
        with pytest.raises(TelemetryError):
            registry.gauge("m")

    def test_gauge_then_histogram(self, registry):
        registry.gauge("m")
        with pytest.raises(TelemetryError):
            registry.histogram("m")


class TestSnapshotMerge:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        hist = reg.histogram("h", bounds=(10, 100))
        hist.observe(5)
        hist.observe(500)
        return reg

    def test_counters_sum(self):
        a, b = self._populated(), self._populated()
        a.merge_snapshot(b.snapshot())
        assert a.counter("c").value == 6

    def test_gauges_take_max(self):
        a, b = self._populated(), self._populated()
        b.gauge("g").set(11)
        a.merge_snapshot(b.snapshot())
        assert a.gauge("g").value == 11
        # lower incoming value does not pull the high-water mark down
        low = MetricsRegistry()
        low.gauge("g").set(1)
        a.merge_snapshot(low.snapshot())
        assert a.gauge("g").value == 11

    def test_histogram_buckets_sum(self):
        a, b = self._populated(), self._populated()
        a.merge_snapshot(b.snapshot())
        hist = a.histogram("h", bounds=(10, 100))
        assert hist.counts == [2, 0]
        assert hist.inf_count == 2
        assert hist.count == 4

    def test_merge_commutes(self):
        a, b = self._populated(), MetricsRegistry()
        b.counter("c").inc(10)
        b.counter("other").inc(1)
        left = MetricsRegistry()
        left.merge_snapshot(a.snapshot())
        left.merge_snapshot(b.snapshot())
        right = MetricsRegistry()
        right.merge_snapshot(b.snapshot())
        right.merge_snapshot(a.snapshot())
        assert left.snapshot() == right.snapshot()

    def test_merge_into_empty_reproduces_snapshot(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_version_mismatch_rejected(self):
        target = MetricsRegistry()
        with pytest.raises(TelemetryError):
            target.merge_snapshot({"version": 999, "counters": {}})

    def test_bucket_mismatch_rejected(self):
        source = self._populated()
        snap = source.snapshot()
        snap["histograms"]["h"]["counts"] = [1, 2, 3]
        target = MetricsRegistry()
        with pytest.raises(TelemetryError):
            target.merge_snapshot(snap)

    def test_snapshot_is_plain_sorted_data(self):
        snap = self._populated().snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert set(snap) == {"version", "counters", "gauges", "histograms"}


class TestEnableDisable:
    def test_disable_swaps_in_null_registry(self):
        try:
            set_enabled(False)
            assert not enabled()
            reg = get_registry()
            assert isinstance(reg, NullRegistry)
            reg.counter("x").inc()
            reg.gauge("y").set_max(3)
            reg.histogram("z").observe(1)
            assert reg.snapshot()["counters"] == {}
            assert reg.summary_line() == "telemetry disabled"
        finally:
            set_enabled(True)

    def test_reenable_gives_fresh_registry(self):
        try:
            set_enabled(False)
            set_enabled(True)
            assert get_registry().snapshot()["counters"] == {}
        finally:
            set_enabled(True)

    def test_scoped_registry_yields_null_when_disabled(self):
        try:
            set_enabled(False)
            with scoped_registry() as reg:
                assert isinstance(reg, NullRegistry)
        finally:
            set_enabled(True)


class TestScopedRegistry:
    def test_isolates_and_restores(self):
        outer = get_registry()
        outer_counter = outer.counter("outer")
        with scoped_registry() as inner:
            assert get_registry() is inner
            inner.counter("inner").inc()
            assert "outer" not in inner.snapshot()["counters"]
        assert get_registry() is outer
        assert outer_counter.value == 0

    def test_restores_on_error(self):
        outer = get_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert get_registry() is outer


class TestSummaryLine:
    def test_headline_counters_rendered(self, registry):
        registry.counter("campaign.windows_ok").inc(10)
        registry.counter("campaign.windows_degraded").inc(2)
        registry.counter("campaign.windows_failed").inc(1)
        registry.counter("sampler.instants_missed").inc(7)
        line = registry.summary_line()
        assert line.startswith("telemetry: ")
        assert "windows ok/degraded/failed 10/2/1" in line
        assert "sampler misses 7" in line
