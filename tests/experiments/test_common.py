"""ExperimentResult / CLI plumbing tests."""

import json
import zlib

import numpy as np
import pytest

from repro.cli import _netsim_kwargs, _scale_kwargs
from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.netsim import RackConfig
from repro.synth.dataset import synthesize_app_windows
from repro.units import seconds


class TestExperimentResult:
    def make(self):
        result = ExperimentResult(experiment_id="figX", title="Demo")
        result.add("metric-a", 1.0, np.float64(2.0))
        result.add("metric-b", "paper says", True)
        result.add_series("cdf", [(1.0, 0.5), (2.0, 1.0)])
        result.notes.append("a note")
        return result

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "figX: Demo" in text
        assert "metric-a" in text
        assert "note: a note" in text
        assert "cdf" not in text  # series only with the flag

    def test_render_with_series(self):
        text = self.make().render(include_series=True)
        assert "series cdf:" in text

    def test_to_dict_json_serialisable(self):
        payload = self.make().to_dict(include_series=True)
        text = json.dumps(payload)  # must not raise on numpy scalars
        parsed = json.loads(text)
        assert parsed["experiment_id"] == "figX"
        assert parsed["rows"][0]["measured"] == 2.0
        assert parsed["series"]["cdf"] == [[1.0, 0.5], [2.0, 1.0]]

    def test_to_dict_without_series(self):
        payload = self.make().to_dict()
        assert "series" not in payload


class TestScaleKwargs:
    def test_small_scale_is_defaults(self):
        assert _scale_kwargs("fig3", "small") == {}

    def test_full_scale_known_experiment(self):
        kwargs = _scale_kwargs("fig3", "full")
        assert kwargs["n_windows"] > 100

    def test_full_scale_unknown_experiment_empty(self):
        assert _scale_kwargs("ext-netsim", "full") == {}


class TestNetsimKwargs:
    def test_campaign_experiments_shrink(self):
        assert _netsim_kwargs("fig3")["n_windows"] < 24
        assert _netsim_kwargs("ext-chaos")["campaign_racks_per_app"] == 1

    def test_non_campaign_experiments_untouched(self):
        assert _netsim_kwargs("fig1") == {}


class TestSiteKeyedSeeding:
    """Satellite regression: experiment seeding goes through the crc32
    site-key scheme of repro.core.seeding (no more ``seed + 977`` bypass),
    pinned by trace CRCs so reseeding regressions are loud."""

    #: crc32 over (values || timestamps) of
    #: ``synthesize_app_windows(app, 4, seconds(1), seed=0)``
    GOLDEN_CRCS = {
        "web": 0x4BABC719,
        "cache": 0x3BC94665,
        "hadoop": 0xEEB87BCD,
    }

    @staticmethod
    def crc(traces) -> int:
        crc = 0
        for trace in traces:
            crc = zlib.crc32(trace.values.tobytes(), crc)
            crc = zlib.crc32(trace.timestamps_ns.tobytes(), crc)
        return crc

    @pytest.mark.parametrize("app", sorted(GOLDEN_CRCS))
    def test_golden_trace_crcs(self, app):
        traces = synthesize_app_windows(app, 4, seconds(1), seed=0)
        assert self.crc(traces) == self.GOLDEN_CRCS[app]

    def test_port_schedule_is_window_keyed(self):
        # The port drawn for window i must not depend on how many windows
        # the run asks for — identity, not draw order, keys the choice.
        names_long = [t.name for t in synthesize_app_windows("web", 6, seconds(1), seed=2)]
        names_short = [t.name for t in synthesize_app_windows("web", 3, seconds(1), seed=2)]
        assert names_long[:3] == names_short


class TestRackConfigValidation:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigError):
            RackConfig(transport="cubic")

    def test_transport_class_resolution(self):
        from repro.netsim.ecn import DctcpTransport
        from repro.netsim.host import WindowedTransport

        assert RackConfig(transport="reno").transport_class() is WindowedTransport
        assert RackConfig(transport="dctcp").transport_class() is DctcpTransport
