"""Experiment harness tests.

Each experiment is run at reduced scale and its *qualitative* claims are
asserted — the quantitative comparison lives in EXPERIMENTS.md and the
benchmarks.  These tests pin the shape so regressions in the substrate
or analysis surface immediately.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment


def rows_dict(result):
    return {metric: measured for metric, _paper, measured in result.rows}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        paper_ids = {
            "fig1", "fig2", "tab1", "fig3", "tab2", "fig4",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        }
        extension_ids = {
            "ext-cc", "ext-lb", "ext-pacing", "ext-failures", "ext-netsim",
            "ext-chaos",
        }
        assert set(EXPERIMENTS) == paper_ids | extension_ids

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_render_has_header(self):
        result = run_experiment("fig1", seed=0, n_links=200, samples_per_link=4)
        text = result.render()
        assert "paper" in text and "measured" in text

    def test_render_with_series(self):
        result = run_experiment("fig1", seed=0, n_links=200, samples_per_link=4)
        text = result.render(include_series=True)
        assert "series" in text


class TestBackendDispatch:
    def test_every_experiment_accepts_backend(self):
        from repro.experiments.registry import supports_backend

        for experiment_id in EXPERIMENTS:
            assert supports_backend(experiment_id), experiment_id

    def test_backend_synth_matches_default(self):
        default = run_experiment("fig3", seed=0, n_windows=3, window_s=0.5)
        explicit = run_experiment(
            "fig3", seed=0, n_windows=3, window_s=0.5, backend="synth"
        )
        assert default.rows == explicit.rows

    def test_fig3_runs_under_netsim(self):
        result = run_experiment(
            "fig3", seed=0, n_windows=2, window_s=0.5, backend="netsim"
        )
        rows = rows_dict(result)
        assert any("p90 burst duration" in metric for metric in rows)
        assert any("netsim" in note for note in result.notes)


class TestFig1:
    def test_weak_correlation(self):
        result = run_experiment("fig1", seed=0, n_links=3000, samples_per_link=8)
        corr = rows_dict(result)["utilization/drop correlation"]
        assert 0.0 < corr < 0.3


class TestFig2:
    def test_episodic_drops(self):
        result = run_experiment("fig2", seed=0, hours=12)
        rows = rows_dict(result)
        assert rows["low-util: minutes with zero drops"] > 0.5
        assert rows["high-util: minutes with zero drops"] > 0.3
        assert len(result.series["low_util_drops_per_min"]) == 720


class TestTab1:
    def test_miss_rates(self):
        result = run_experiment("tab1", seed=0, duration_s=0.5)
        rows = rows_dict(result)
        assert rows["miss rate @ 1 us"] > 0.95
        assert 0.05 < rows["miss rate @ 10 us"] < 0.2
        assert rows["miss rate @ 25 us"] < 0.03


class TestFig3:
    def test_p90_landmarks(self):
        result = run_experiment("fig3", seed=0, n_windows=8, window_s=1.0)
        rows = rows_dict(result)
        assert rows["web: p90 burst duration (us)"] <= 100
        assert rows["cache: p90 burst duration (us)"] <= 300
        assert rows["hadoop: p90 burst duration (us)"] <= 300
        for app in ("web", "cache", "hadoop"):
            assert rows[f"{app}: microburst (<1ms) share"] > 0.9

    def test_single_period_fractions(self):
        result = run_experiment("fig3", seed=0, n_windows=8, window_s=1.0)
        rows = rows_dict(result)
        assert rows["web: single-period bursts"] > 0.6
        assert rows["cache: single-period bursts"] > 0.5


class TestTab2:
    def test_ratios_far_above_one(self):
        result = run_experiment("tab2", seed=0, n_windows=8, window_s=1.0)
        rows = rows_dict(result)
        assert rows["web: likelihood ratio r"] > 30
        assert rows["cache: likelihood ratio r"] > 10
        assert rows["hadoop: likelihood ratio r"] > 5


class TestFig4:
    def test_poisson_rejected(self):
        result = run_experiment("fig4", seed=0, n_windows=8, window_s=1.0)
        for metric, _paper, measured in result.rows:
            if "KS p-value" in metric:
                p_value = float(str(measured).split()[0])
                assert p_value < 0.05


class TestFig5:
    def test_large_packet_shift(self):
        result = run_experiment("fig5", seed=0, duration_s=5.0)
        rows = rows_dict(result)
        web = float(rows["web: relative large-packet increase"].strip("%+")) / 100
        cache = float(rows["cache: relative large-packet increase"].strip("%+")) / 100
        assert web > 0.3
        assert 0.0 < cache < 0.5
        assert rows["hadoop: MTU-bin share (always large)"] > 0.8


class TestFig6:
    def test_hadoop_hottest(self):
        result = run_experiment("fig6", seed=0, n_windows=8, window_s=1.0)
        rows = rows_dict(result)
        assert (
            rows["hadoop: time hot (>50%)"]
            > rows["cache: time hot (>50%)"]
            > rows["web: time hot (>50%)"]
        )


class TestFig7:
    def test_imbalance_at_small_timescale_only(self):
        result = run_experiment("fig7", seed=0, duration_s=4.0)
        rows = rows_dict(result)
        for app in ("web", "cache", "hadoop"):
            assert rows[f"{app} egress: median MAD @40us"] > 0.25
            assert rows[f"{app} egress: median MAD @1s"] < 0.25


class TestFig8:
    def test_correlation_pattern(self):
        result = run_experiment("fig8", seed=0, duration_s=4.0)
        rows = rows_dict(result)
        assert abs(rows["web: mean pairwise correlation"]) < 0.1
        assert rows["cache: within-group correlation"] > 0.4
        assert 0.0 < rows["hadoop: mean pairwise correlation"] < 0.5


class TestFig9:
    def test_ordering_holds(self):
        result = run_experiment("fig9", seed=0, duration_s=4.0)
        rows = rows_dict(result)
        assert rows["web share < hadoop share < cache share ordering"] is True


class TestFig10:
    def test_hadoop_buffer_pressure(self):
        result = run_experiment("fig10", seed=0, duration_s=8.0, n_activity_windows=8)
        rows = rows_dict(result)
        assert (
            rows["hadoop: max fraction of ports simultaneously hot"]
            > rows["web: max fraction of ports simultaneously hot"]
        )
