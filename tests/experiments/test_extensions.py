"""Extension-experiment tests (Sec 7 implications + failures)."""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.synth.rackmodel import _ecmp_weight_segments
from repro.errors import ConfigError


def rows_dict(result):
    return {metric: measured for metric, _paper, measured in result.rows}


class TestExtCc:
    def test_microbursts_beat_the_signal(self):
        result = run_experiment("ext-cc", seed=0, n_windows=6, window_s=1.0)
        rows = rows_dict(result)
        # most web bursts end before even a 100 us RTT elapses
        assert rows["web: bursts over before 1 RTT (100us) elapses"] > 0.8
        # dctcp holds a shorter steady-state queue than reno
        reno_peak, dctcp_peak = map(
            int, str(rows["incast peak buffer: reno -> dctcp"]).split(" -> ")
        )
        assert dctcp_peak < reno_peak


class TestExtLb:
    def test_most_gaps_allow_resplit(self):
        result = run_experiment("ext-lb", seed=0, n_windows=6, window_s=1.0)
        rows = rows_dict(result)
        for app in ("web", "cache", "hadoop"):
            assert rows[f"{app}: gaps exceeding 50us e2e latency"] > 0.4


class TestExtPacing:
    def test_pacing_removes_offload_bursts(self):
        result = run_experiment("ext-pacing", seed=0)
        rows = rows_dict(result)
        unpaced, paced = str(rows["bursts: unpaced -> paced"]).split(" -> ")
        assert int(unpaced) > 20
        assert int(paced) < int(unpaced) // 10


class TestExtFailures:
    def test_failure_worsens_imbalance(self):
        result = run_experiment("ext-failures", seed=0, duration_s=2.0)
        rows = rows_dict(result)
        assert rows["imbalance ordering holds"] is True
        assert rows["one ToR uplink down: median MAD"] > rows["healthy fabric: median MAD @40us"]


class TestExtNetsim:
    def test_cross_validation_shapes(self):
        result = run_experiment("ext-netsim", seed=0, measure_ms=50.0)
        rows = {metric: measured for metric, _p, measured in result.rows}
        for app in ("web", "cache", "hadoop"):
            net_share, synth_share = map(
                float, str(rows[f"{app}: µburst share (netsim / synth)"]).split(" / ")
            )
            assert net_share > 0.5
            assert synth_share > 0.9


class TestExtChaos:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "ext-chaos",
            seed=0,
            fault_rate=0.2,
            n_windows=4,
            window_s=1.0,
            campaign_racks_per_app=1,
            campaign_hours=2,
            campaign_window_s=0.5,
        )

    def test_campaign_survives_injected_failures(self, result):
        rows = rows_dict(result)
        assert rows["campaign windows planned"] == 6
        ok, degraded, failed = (
            int(x) for x in str(rows["windows ok / degraded / failed"]).split(" / ")
        )
        assert ok + degraded + failed == 6
        completion = float(str(rows["completion at 20% window-failure rate"]).rstrip("%"))
        assert completion == pytest.approx(100.0 * (1 - failed / 6))

    def test_wraparound_residual_is_exactly_zero(self, result):
        assert rows_dict(result)["32-bit wraparound residual (bytes)"] == 0

    def test_reported_bound_covers_measured_shift(self, result):
        for metric, paper, measured in result.rows:
            if not metric.startswith("fig3 burst-CDF shift"):
                continue
            bound = float(str(paper).split("bound")[1].strip())
            ks = float(str(measured).split(" ")[0])
            assert ks <= bound

    def test_checkpointed_run_resumes(self, tmp_path):
        kwargs = dict(
            seed=3,
            fault_rate=0.3,
            n_windows=2,
            window_s=0.5,
            campaign_racks_per_app=1,
            campaign_hours=2,
            campaign_window_s=0.5,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        first = run_experiment("ext-chaos", **kwargs)
        resumed = run_experiment("ext-chaos", resume=True, **kwargs)
        assert (tmp_path / "ckpt" / "manifest.jsonl").exists()
        assert rows_dict(resumed)["windows ok / degraded / failed"] == rows_dict(
            first
        )["windows ok / degraded / failed"]


class TestEcmpLinkWeights:
    def test_zero_weight_link_gets_no_flows(self, rng):
        shares = _ecmp_weight_segments(
            5_000, 4, 8, 200.0, 1.0, rng, link_weights=np.array([1.0, 1.0, 1.0, 0.0])
        )
        assert shares[:, 3].max() == 0.0
        assert np.allclose(shares.sum(axis=1), 1.0)

    def test_fractional_weight_reduces_share(self, rng):
        shares = _ecmp_weight_segments(
            200_000, 4, 16, 100.0, 1.0, rng,
            link_weights=np.array([1.0, 1.0, 1.0, 0.25]),
        )
        assert shares[:, 3].mean() < shares[:, 0].mean() / 2

    def test_all_zero_weights_rejected(self, rng):
        with pytest.raises(ConfigError):
            _ecmp_weight_segments(
                100, 4, 4, 100.0, 1.0, rng, link_weights=np.zeros(4)
            )

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(ConfigError):
            _ecmp_weight_segments(
                100, 4, 4, 100.0, 1.0, rng, link_weights=np.ones(3)
            )
