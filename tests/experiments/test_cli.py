"""CLI tests."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "tab1" in out


def test_single_experiment(capsys):
    assert main(["fig1", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "correlation" in out
    assert "completed in" in out


def test_series_flag(capsys):
    main(["fig2", "--seed", "1", "--series"])
    out = capsys.readouterr().out
    assert "series" in out


def test_unknown_experiment_raises():
    with pytest.raises(ConfigError):
        main(["fig42"])


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.seed == 0
    assert args.scale == "small"
    assert not args.series
