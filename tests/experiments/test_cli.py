"""CLI tests."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "tab1" in out


def test_single_experiment(capsys):
    assert main(["fig1", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "correlation" in out
    assert "completed in" in out


def test_series_flag(capsys):
    main(["fig2", "--seed", "1", "--series"])
    out = capsys.readouterr().out
    assert "series" in out


def test_unknown_experiment_raises():
    with pytest.raises(ConfigError):
        main(["fig42"])


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.seed == 0
    assert args.scale == "small"
    assert not args.series
    assert args.chaos is None
    assert args.checkpoint is None
    assert not args.resume


def test_chaos_flags_parsed():
    args = build_parser().parse_args(
        ["ext-chaos", "--chaos", "0.05", "--checkpoint", "ckpt", "--resume"]
    )
    assert args.chaos == 0.05
    assert args.checkpoint == "ckpt"
    assert args.resume


def test_resume_without_checkpoint_rejected(capsys):
    assert main(["ext-chaos", "--resume"]) == 2
    assert "requires --checkpoint" in capsys.readouterr().err
