"""CLI tests."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "tab1" in out


def test_single_experiment(capsys):
    assert main(["fig1", "--seed", "1"]) == 0
    captured = capsys.readouterr()
    assert "fig1" in captured.out
    assert "correlation" in captured.out
    # Diagnostics (timing) go through the logger to stderr, not stdout.
    assert "completed in" in captured.err
    assert "completed in" not in captured.out


def test_quiet_suppresses_diagnostics(capsys):
    assert main(["fig1", "--seed", "1", "-q"]) == 0
    captured = capsys.readouterr()
    assert "fig1" in captured.out
    assert "completed in" not in captured.err


def test_verbose_emits_debug(capsys):
    assert main(["fig1", "--seed", "1", "-v"]) == 0
    captured = capsys.readouterr()
    assert "running fig1" in captured.err


def test_series_flag(capsys):
    main(["fig2", "--seed", "1", "--series"])
    out = capsys.readouterr().out
    assert "series" in out


def test_unknown_experiment_raises():
    with pytest.raises(ConfigError):
        main(["fig42"])


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.seed == 0
    assert args.scale == "small"
    assert not args.series
    assert args.chaos is None
    assert args.checkpoint is None
    assert not args.resume
    assert args.backend is None
    assert args.verbose == 0
    assert not args.quiet


def test_backend_flag_parsed():
    args = build_parser().parse_args(["fig3", "--backend", "netsim"])
    assert args.backend == "netsim"


def test_backend_flag_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig3", "--backend", "quantum"])


def test_chaos_flags_parsed():
    args = build_parser().parse_args(
        ["ext-chaos", "--chaos", "0.05", "--checkpoint", "ckpt", "--resume"]
    )
    assert args.chaos == 0.05
    assert args.checkpoint == "ckpt"
    assert args.resume


def test_resume_without_checkpoint_rejected(capsys):
    assert main(["ext-chaos", "--resume"]) == 2
    assert "requires --checkpoint" in capsys.readouterr().err
