"""Port queueing and counter tests."""

import pytest

from repro.errors import SimulationError
from repro.netsim import BufferPolicy, Link, SharedBuffer
from repro.netsim.packet import FiveTuple, Packet
from repro.netsim.port import (
    SIZE_BIN_EDGES,
    SIZE_BIN_LABELS,
    Direction,
    Port,
    size_bin_index,
)
from repro.units import gbps


def make_port(sim, capacity=1_000_000, rate=gbps(10)):
    shared = SharedBuffer(BufferPolicy(capacity_bytes=capacity, alpha=8.0))
    link = Link(sim, "out", rate_bps=rate, propagation_ns=0)
    delivered = []
    link.connect(delivered.append)
    port = Port(sim, "p0", Direction.DOWNLINK, link, shared)
    return port, delivered, shared


def packet(size=1500, seq=0):
    flow = FiveTuple("a", "b", 1, 2)
    return Packet(flow=flow, size_bytes=size, created_ns=0, seq=seq)


class TestSizeBins:
    def test_bin_edges_cover_frame_sizes(self):
        assert size_bin_index(64) == 0
        assert size_bin_index(65) == 1
        assert size_bin_index(127) == 1
        assert size_bin_index(128) == 2
        assert size_bin_index(1024) == 5
        assert size_bin_index(1500) == 5

    def test_oversize_rejected(self):
        with pytest.raises(SimulationError):
            size_bin_index(2000)

    def test_labels_match_edges(self):
        assert len(SIZE_BIN_LABELS) == len(SIZE_BIN_EDGES)


class TestPortDataPath:
    def test_fifo_delivery(self, sim):
        port, delivered, _ = make_port(sim)
        for seq in range(3):
            port.enqueue(packet(seq=seq))
        sim.run_until(1_000_000)
        assert [p.seq for p in delivered] == [0, 1, 2]

    def test_serialization_paces_output(self, sim):
        port, delivered, _ = make_port(sim)
        port.enqueue(packet())
        port.enqueue(packet())
        # second packet cannot finish before 2 serialization times
        sim.run_until(1200)
        assert len(delivered) == 1
        sim.run_until(2400)
        assert len(delivered) == 2

    def test_buffer_released_after_transmit(self, sim):
        port, _, shared = make_port(sim)
        port.enqueue(packet())
        assert shared.occupancy_bytes == 1500
        sim.run_until(1_000_000)
        assert shared.occupancy_bytes == 0

    def test_drop_on_full_buffer(self, sim):
        port, _, shared = make_port(sim, capacity=3000)
        assert port.enqueue(packet())
        assert port.enqueue(packet())
        assert not port.enqueue(packet())  # 3rd exceeds capacity
        assert port.counters.tx_drops == 1
        assert shared.total_rejected == 1


class TestPortCounters:
    def test_tx_counters_on_completion(self, sim):
        port, _, _ = make_port(sim)
        port.enqueue(packet(size=1500))
        port.enqueue(packet(size=100))
        sim.run_until(1_000_000)
        counters = port.counters
        assert counters.tx_bytes == 1600
        assert counters.tx_packets == 2
        assert counters.tx_size_hist[5] == 1  # 1500 B
        assert counters.tx_size_hist[1] == 1  # 100 B

    def test_tx_bytes_not_counted_until_sent(self, sim):
        port, _, _ = make_port(sim)
        port.enqueue(packet())
        assert port.counters.tx_bytes == 0  # still serializing

    def test_rx_counters(self, sim):
        port, _, _ = make_port(sim)
        port.note_ingress(packet(size=200))
        assert port.counters.rx_bytes == 200
        assert port.counters.rx_packets == 1
        assert port.counters.rx_size_hist[2] == 1

    def test_drops_not_counted_in_tx_bytes(self, sim):
        port, _, _ = make_port(sim, capacity=1500)
        port.enqueue(packet())
        port.enqueue(packet())  # dropped
        sim.run_until(1_000_000)
        assert port.counters.tx_bytes == 1500
        assert port.counters.tx_drops == 1

    def test_queue_depth_property(self, sim):
        port, _, _ = make_port(sim)
        port.enqueue(packet())
        port.enqueue(packet())
        assert port.queue_depth_bytes == 3000
