"""Shared-buffer (dynamic threshold) tests."""

import pytest

from repro.errors import SimulationError
from repro.netsim.buffer import BufferPolicy, SharedBuffer


@pytest.fixture
def buffer():
    shared = SharedBuffer(BufferPolicy(capacity_bytes=10_000, alpha=1.0))
    shared.register_queue("q0")
    shared.register_queue("q1")
    return shared


class TestAdmission:
    def test_admit_updates_occupancy(self, buffer):
        assert buffer.admit("q0", 1000)
        assert buffer.occupancy_bytes == 1000
        assert buffer.queue_bytes("q0") == 1000

    def test_capacity_rejection(self, buffer):
        assert buffer.admit("q0", 4000)
        assert buffer.admit("q1", 4000)
        # only 2000 free; DT still allows smaller packets
        assert not buffer.admit("q0", 3000)
        assert buffer.total_rejected == 1

    def test_dynamic_threshold_blocks_hog_queue(self, buffer):
        # alpha=1: queue may grow while queue_len < free space.
        # Fill q0 until DT stops it; q1 must still be admissible.
        admitted = 0
        while buffer.admit("q0", 1000):
            admitted += 1
        assert 0 < admitted < 10
        # q0 blocked but q1 (empty) may still enqueue
        assert buffer.admit("q1", 1000)

    def test_dt_rule_exact_boundary(self):
        shared = SharedBuffer(BufferPolicy(capacity_bytes=10_000, alpha=1.0))
        shared.register_queue("q")
        assert shared.admit("q", 5000)  # 0 < 10000 free
        # now queue_len (5000) == alpha * free (5000): not strictly less -> reject
        assert not shared.admit("q", 1)

    def test_static_carving_mode(self):
        shared = SharedBuffer(
            BufferPolicy(capacity_bytes=10_000, alpha=1.0, static_per_port_bytes=2000)
        )
        shared.register_queue("q")
        assert shared.admit("q", 2000)
        assert not shared.admit("q", 1)

    def test_non_positive_admit_rejected(self, buffer):
        with pytest.raises(SimulationError):
            buffer.admit("q0", 0)

    def test_unknown_queue_raises(self, buffer):
        with pytest.raises(KeyError):
            buffer.admit("nope", 100)

    def test_duplicate_registration_rejected(self, buffer):
        with pytest.raises(SimulationError):
            buffer.register_queue("q0")


class TestRelease:
    def test_release_returns_space(self, buffer):
        buffer.admit("q0", 3000)
        buffer.release("q0", 3000)
        assert buffer.occupancy_bytes == 0
        assert buffer.queue_bytes("q0") == 0

    def test_over_release_rejected(self, buffer):
        buffer.admit("q0", 100)
        with pytest.raises(SimulationError):
            buffer.release("q0", 200)

    def test_conservation(self, buffer, rng):
        """Admitted bytes == released + held, always non-negative."""
        held = {"q0": 0, "q1": 0}
        for _ in range(500):
            queue = "q0" if rng.random() < 0.5 else "q1"
            if rng.random() < 0.6:
                size = int(rng.integers(64, 1500))
                if buffer.admit(queue, size):
                    held[queue] += size
            elif held[queue] > 0:
                buffer.release(queue, held[queue])
                held[queue] = 0
            assert buffer.occupancy_bytes == held["q0"] + held["q1"]
            assert 0 <= buffer.occupancy_bytes <= 10_000


class TestWatermark:
    def test_peak_tracks_maximum(self, buffer):
        buffer.admit("q0", 4000)
        buffer.admit("q1", 3000)
        buffer.release("q0", 4000)
        assert buffer.peak_occupancy_read_and_reset() == 7000

    def test_reset_to_current_occupancy(self, buffer):
        buffer.admit("q0", 4000)
        buffer.peak_occupancy_read_and_reset()
        # standing queue still reflected after reset (Sec 4.1 semantics)
        assert buffer.peak_occupancy_read_and_reset() == 4000

    def test_peak_not_lost_between_reads(self, buffer):
        buffer.admit("q0", 5000)
        buffer.release("q0", 5000)
        # burst fully drained before the read: watermark still caught it
        assert buffer.peak_occupancy_read_and_reset() == 5000
        assert buffer.peak_occupancy_read_and_reset() == 0

    def test_occupancy_fraction(self, buffer):
        buffer.admit("q0", 2500)
        assert buffer.occupancy_fraction() == pytest.approx(0.25)


class TestPolicyValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            BufferPolicy(capacity_bytes=0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            BufferPolicy(alpha=0.0)

    def test_bad_static_quota(self):
        with pytest.raises(ValueError):
            BufferPolicy(static_per_port_bytes=-1)
