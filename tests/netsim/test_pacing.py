"""NIC pacing tests."""

import pytest

from repro.errors import ConfigError
from repro.netsim import Link, Nic, Simulator
from repro.netsim.packet import FiveTuple, Packet
from repro.units import gbps, ms


def make_nic(pacing=None):
    sim = Simulator()
    link = Link(sim, "nic", rate_bps=gbps(10), propagation_ns=0)
    arrivals = []
    link.connect(lambda p: arrivals.append(sim.now))
    return sim, Nic(sim, link, pacing_rate_bps=pacing), arrivals


def burst(nic, n=4):
    flow = FiveTuple("a", "b", 1, 2)
    for seq in range(n):
        nic.send(Packet(flow=flow, size_bytes=1500, created_ns=0, seq=seq))


class TestPacing:
    def test_unpaced_back_to_back(self):
        sim, nic, arrivals = make_nic()
        burst(nic)
        sim.run_until(ms(1))
        assert arrivals == [1200, 2400, 3600, 4800]

    def test_paced_spacing(self):
        # pacing at 2 Gbps: one 1500 B packet per 6 us
        sim, nic, arrivals = make_nic(pacing=gbps(2))
        burst(nic)
        sim.run_until(ms(1))
        assert arrivals == [1200, 7200, 13200, 19200]

    def test_pacing_preserves_all_packets(self):
        sim, nic, arrivals = make_nic(pacing=gbps(1))
        burst(nic, n=10)
        sim.run_until(ms(1))
        assert len(arrivals) == 10
        assert nic.tx_packets == 10

    def test_pacing_faster_than_line_rate_is_harmless(self):
        sim, nic, arrivals = make_nic(pacing=gbps(100))
        burst(nic)
        sim.run_until(ms(1))
        # serialization dominates: behaves like unpaced
        assert arrivals == [1200, 2400, 3600, 4800]

    def test_idle_gap_resets_pacing_debt(self):
        sim, nic, arrivals = make_nic(pacing=gbps(2))
        flow = FiveTuple("a", "b", 1, 2)
        nic.send(Packet(flow=flow, size_bytes=1500, created_ns=0))
        sim.run_until(ms(1))
        nic.send(Packet(flow=flow, size_bytes=1500, created_ns=0, seq=1))
        sim.run_until(ms(2))
        # the second packet, sent after a long idle period, is not delayed
        assert arrivals[1] == ms(1) + 1200

    def test_invalid_pacing_rate(self):
        sim = Simulator()
        link = Link(sim, "nic", rate_bps=gbps(10))
        with pytest.raises(ConfigError):
            Nic(sim, link, pacing_rate_bps=0)
