"""Packet and link tests."""

import pytest

from repro.errors import ConfigError
from repro.netsim import Link, Simulator
from repro.netsim.packet import FiveTuple, Packet
from repro.units import MAX_FRAME, MTU, gbps


@pytest.fixture
def flow():
    return FiveTuple(src_host="a", dst_host="b", src_port=1111, dst_port=80)


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self, flow):
        rev = flow.reversed()
        assert rev.src_host == "b" and rev.dst_host == "a"
        assert rev.src_port == 80 and rev.dst_port == 1111
        assert rev.reversed() == flow

    def test_hashable_identity(self, flow):
        assert flow == FiveTuple("a", "b", 1111, 80)
        assert hash(flow) == hash(FiveTuple("a", "b", 1111, 80))


class TestPacket:
    def test_size_limits_enforced(self, flow):
        # The packet-level bound is the largest histogram bin (MAX_FRAME),
        # not the MTU: MTU policy is enforced by RackConfig / the
        # transport at construction time.
        with pytest.raises(ValueError):
            Packet(flow=flow, size_bytes=MAX_FRAME + 1, created_ns=0)
        with pytest.raises(ValueError):
            Packet(flow=flow, size_bytes=32, created_ns=0)
        assert Packet(flow=flow, size_bytes=MTU + 1, created_ns=0).size_bytes == MTU + 1

    def test_reversed_memoised(self, flow):
        rev = flow.reversed()
        # Repeated reversals return the cached object (equality-keyed, so
        # an equal flow from elsewhere may share the same cache entry).
        assert flow.reversed() is rev
        assert rev.reversed() == flow
        assert rev.reversed() is rev.reversed()

    def test_unique_ids(self, flow):
        a = Packet(flow=flow, size_bytes=100, created_ns=0)
        b = Packet(flow=flow, size_bytes=100, created_ns=0)
        assert a.packet_id != b.packet_id


class TestLink:
    def test_serialization_plus_propagation(self, flow):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=gbps(10), propagation_ns=500)
        arrivals = []
        link.connect(lambda packet: arrivals.append(sim.now))
        packet = Packet(flow=flow, size_bytes=1500, created_ns=0)
        done = link.transmit(packet)
        assert done == 1200  # 1500 B at 10 Gbps
        sim.run_until(10_000)
        assert arrivals == [1700]  # + 500 ns propagation

    def test_transmit_before_connect_fails(self, flow):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=gbps(10))
        with pytest.raises(ConfigError):
            link.transmit(Packet(flow=flow, size_bytes=100, created_ns=0))

    def test_double_connect_fails(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=gbps(10))
        link.connect(lambda p: None)
        with pytest.raises(ConfigError):
            link.connect(lambda p: None)

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            Link(Simulator(), "l", rate_bps=0)

    def test_invalid_propagation(self):
        with pytest.raises(ConfigError):
            Link(Simulator(), "l", rate_bps=1e9, propagation_ns=-1)
