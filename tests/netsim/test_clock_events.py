"""Clock and event-queue tests."""

import pytest

from repro.errors import SchedulingError
from repro.netsim.clock import SimClock
from repro.netsim.events import EventQueue


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_same_time_allowed(self):
        clock = SimClock(50)
        clock.advance_to(50)
        assert clock.now == 50

    def test_no_time_travel(self):
        clock = SimClock(100)
        with pytest.raises(SchedulingError):
            clock.advance_to(99)

    def test_negative_start_rejected(self):
        with pytest.raises(SchedulingError):
            SimClock(-1)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(30, lambda: fired.append(30))
        queue.push(10, lambda: fired.append(10))
        queue.push(20, lambda: fired.append(20))
        while queue:
            queue.pop().action()
        assert fired == [10, 20, 30]

    def test_fifo_for_simultaneous_events(self):
        queue = EventQueue()
        fired = []
        for label in ("a", "b", "c"):
            queue.push(5, lambda label=label: fired.append(label))
        while queue:
            queue.pop().action()
        assert fired == ["a", "b", "c"]

    def test_cancellation_skips_event(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1, lambda: fired.append("cancelled"))
        queue.push(2, lambda: fired.append("kept"))
        event.cancel()
        while queue:
            queue.pop().action()
        assert fired == ["kept"]

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        first = queue.push(7, lambda: None)
        queue.push(9, lambda: None)
        assert queue.peek_time() == 7
        first.cancel()
        assert queue.peek_time() == 9

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(-5, lambda: None)

    def test_len_is_live_counter_not_heap_scan(self):
        queue = EventQueue()
        events = [queue.push(i, lambda: None) for i in range(10)]
        assert len(queue) == 10 and bool(queue)
        for event in events[:4]:
            event.cancel()
        assert len(queue) == 6
        while queue:
            queue.pop()
        assert len(queue) == 0 and not queue

    def test_cancel_after_pop_is_inert(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        assert queue.pop() is event
        event.cancel()  # must not corrupt the live counter
        assert len(queue) == 1
        assert queue.pop().time_ns == 2

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_heap_stays_bounded_under_mass_cancellation(self):
        # Regression: cancelled entries used to linger until they reached
        # the heap top, so timer-heavy workloads grew the heap without
        # bound.  Compaction keeps physical size within a constant factor
        # of the live count.
        queue = EventQueue()
        keeper = queue.push(10**9, lambda: None)
        for i in range(10_000):
            queue.push(i + 1, lambda: None).cancel()
            assert queue.heap_size <= max(queue.COMPACT_MIN, 2 * len(queue)) + 1
        assert len(queue) == 1
        assert queue.pop() is keeper

    def test_compaction_preserves_pop_order(self):
        queue = EventQueue()
        events = [queue.push(time, lambda: None) for time in (5, 3, 9, 3, 7, 1)]
        events[2].cancel()
        queue.compact()
        order = [(queue.pop().time_ns) for _ in range(5)]
        assert order == [1, 3, 3, 5, 7]
