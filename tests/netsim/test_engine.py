"""Simulator engine tests."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.netsim import Simulator


def test_schedule_and_run():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(sim.now))
    sim.schedule(50, lambda: fired.append(sim.now))
    sim.run_until(1000)
    assert fired == [50, 100]
    assert sim.now == 1000


def test_clock_ends_exactly_at_end_time():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run_until(500)
    assert sim.now == 500


def test_events_beyond_horizon_not_run():
    sim = Simulator()
    fired = []
    sim.schedule(200, lambda: fired.append("late"))
    sim.run_until(100)
    assert fired == []
    sim.run_until(300)
    assert fired == ["late"]


def test_event_scheduled_during_run_executes():
    sim = Simulator()
    fired = []

    def first():
        sim.schedule(10, lambda: fired.append("second"))

    sim.schedule(10, first)
    sim.run_until(100)
    assert fired == ["second"]


def test_run_for_relative():
    sim = Simulator()
    sim.run_until(100)
    fired = []
    sim.schedule(50, lambda: fired.append(sim.now))
    sim.run_for(60)
    assert fired == [150]
    assert sim.now == 160


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.run_until(100)
    with pytest.raises(SchedulingError):
        sim.schedule_at(99, lambda: None)


def test_max_events_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(1, reschedule)

    sim.schedule(1, reschedule)
    with pytest.raises(SimulationError):
        sim.run_until(10_000_000, max_events=100)


def test_max_events_exact_bound_completes_and_advances_clock():
    # Regression: processing exactly max_events used to raise even when
    # the simulation was finished, leaving the clock short of end_ns.
    sim = Simulator()
    fired = []
    for delay in (10, 20, 30):
        sim.schedule(delay, lambda d=delay: fired.append(d))
    processed = sim.run_until(1000, max_events=3)
    assert processed == 3
    assert fired == [10, 20, 30]
    assert sim.now == 1000  # clock reaches the horizon on the clean path


def test_max_events_raise_leaves_consistent_resumable_clock():
    # Regression: the raise path must leave the clock at the last
    # processed event (not stuck at the start, not jumped to end_ns past
    # unprocessed events) so a caller that catches the error can resume.
    sim = Simulator()
    fired = []

    def reschedule():
        fired.append(sim.now)
        sim.schedule(1, reschedule)

    sim.schedule(1, reschedule)
    with pytest.raises(SimulationError):
        sim.run_until(10_000, max_events=5)
    assert fired == [1, 2, 3, 4, 5]
    assert sim.now == 5  # time of the last processed event

    # Resuming picks up exactly where the bounded run stopped.
    with pytest.raises(SimulationError):
        sim.run_until(10_000, max_events=5)
    assert fired == [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    assert sim.now == 10


def test_past_event_via_raw_push_still_rejected():
    # Direct queue.push bypasses schedule_at's validation; the run loop
    # must still refuse to move the clock backwards.
    from repro.errors import SchedulingError

    sim = Simulator()
    sim.run_until(100)
    sim.queue.push(50, lambda: None)
    with pytest.raises(SchedulingError):
        sim.run_until(200)


def test_deterministic_given_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        values = []
        for delay in (5, 15, 25):
            sim.schedule(delay, lambda: values.append(float(sim.rng.random())))
        sim.run_until(100)
        return values

    assert run(3) == run(3)
    assert run(3) != run(4)


def test_spawn_rng_independent_streams():
    sim = Simulator(seed=1)
    a = sim.spawn_rng()
    b = sim.spawn_rng()
    assert a.random() != b.random()


def test_events_processed_counter():
    sim = Simulator()
    for delay in (1, 2, 3):
        sim.schedule(delay, lambda: None)
    sim.run_until(10)
    assert sim.events_processed == 3
