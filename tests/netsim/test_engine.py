"""Simulator engine tests."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.netsim import Simulator


def test_schedule_and_run():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(sim.now))
    sim.schedule(50, lambda: fired.append(sim.now))
    sim.run_until(1000)
    assert fired == [50, 100]
    assert sim.now == 1000


def test_clock_ends_exactly_at_end_time():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run_until(500)
    assert sim.now == 500


def test_events_beyond_horizon_not_run():
    sim = Simulator()
    fired = []
    sim.schedule(200, lambda: fired.append("late"))
    sim.run_until(100)
    assert fired == []
    sim.run_until(300)
    assert fired == ["late"]


def test_event_scheduled_during_run_executes():
    sim = Simulator()
    fired = []

    def first():
        sim.schedule(10, lambda: fired.append("second"))

    sim.schedule(10, first)
    sim.run_until(100)
    assert fired == ["second"]


def test_run_for_relative():
    sim = Simulator()
    sim.run_until(100)
    fired = []
    sim.schedule(50, lambda: fired.append(sim.now))
    sim.run_for(60)
    assert fired == [150]
    assert sim.now == 160


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.run_until(100)
    with pytest.raises(SchedulingError):
        sim.schedule_at(99, lambda: None)


def test_max_events_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(1, reschedule)

    sim.schedule(1, reschedule)
    with pytest.raises(SimulationError):
        sim.run_until(10_000_000, max_events=100)


def test_deterministic_given_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        values = []
        for delay in (5, 15, 25):
            sim.schedule(delay, lambda: values.append(float(sim.rng.random())))
        sim.run_until(100)
        return values

    assert run(3) == run(3)
    assert run(3) != run(4)


def test_spawn_rng_independent_streams():
    sim = Simulator(seed=1)
    a = sim.spawn_rng()
    b = sim.spawn_rng()
    assert a.random() != b.random()


def test_events_processed_counter():
    sim = Simulator()
    for delay in (1, 2, 3):
        sim.schedule(delay, lambda: None)
    sim.run_until(10)
    assert sim.events_processed == 3
