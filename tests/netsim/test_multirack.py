"""Multi-rack pod tests."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.netsim import RackConfig, Simulator, TorSwitchConfig, build_pod
from repro.netsim.packet import FiveTuple, Packet
from repro.units import ms
from repro.workloads import WebConfig, WebWorkload


def two_rack_pod(seed=1, n_remotes=4):
    sim = Simulator(seed=seed)
    configs = [
        RackConfig(name="web", switch=TorSwitchConfig(n_downlinks=4, n_uplinks=2)),
        RackConfig(name="cache", switch=TorSwitchConfig(n_downlinks=4, n_uplinks=2)),
    ]
    pod = build_pod(sim, configs, n_standalone_remotes=n_remotes)
    return sim, pod


class TestBuild:
    def test_two_racks_built(self):
        _sim, pod = two_rack_pod()
        assert len(pod.racks) == 2
        assert pod.fabric.rack_ids == ["web", "cache"]
        assert len(pod.standalone_remotes) == 4

    def test_duplicate_rack_names_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            build_pod(sim, [RackConfig(name="a"), RackConfig(name="a")])

    def test_empty_pod_rejected(self):
        with pytest.raises(ConfigError):
            build_pod(Simulator(), [])


class TestCrossRackDataPath:
    def test_cross_rack_flow_traverses_both_tors(self):
        sim, pod = two_rack_pod()
        src = pod.racks[0].servers[0]
        dst = pod.racks[1].servers[2]
        src.send_flow(dst.name, 60_000)
        sim.run_for(ms(20))
        assert dst.rx_bytes >= 60_000
        web_uplink_tx = sum(p.counters.tx_bytes for p in pod.racks[0].tor.uplink_ports)
        cache_uplink_rx = sum(p.counters.rx_bytes for p in pod.racks[1].tor.uplink_ports)
        assert web_uplink_tx >= 60_000
        assert cache_uplink_rx >= 60_000
        # and the cache ToR delivered it down to the server
        assert pod.racks[1].tor.downlink_ports[2].counters.tx_bytes >= 60_000

    def test_acks_return_across_the_pod(self):
        sim, pod = two_rack_pod()
        src = pod.racks[0].servers[0]
        dst = pod.racks[1].servers[0]
        state = src.send_flow(dst.name, 60_000)
        sim.run_for(ms(20))
        assert state.done  # acks crossed back through both ToRs

    def test_rack_to_standalone_remote(self):
        sim, pod = two_rack_pod()
        remote = pod.standalone_remotes[0]
        pod.racks[1].servers[0].send_flow(remote.name, 30_000)
        sim.run_for(ms(20))
        assert remote.rx_bytes >= 30_000

    def test_remote_to_rack(self):
        sim, pod = two_rack_pod()
        remote = pod.standalone_remotes[1]
        remote.send_flow(pod.racks[0].servers[3].name, 30_000)
        sim.run_for(ms(20))
        assert pod.racks[0].servers[3].rx_bytes >= 30_000

    def test_unroutable_destination_raises(self):
        sim, pod = two_rack_pod()
        packet = Packet(
            flow=FiveTuple("web-s0", "nowhere", 1, 2), size_bytes=100, created_ns=0
        )
        with pytest.raises(SimulationError):
            pod.fabric.receive_from_tor(packet)


class TestCrossView:
    def test_view_exposes_other_racks_as_remotes(self):
        _sim, pod = two_rack_pod()
        view = pod.cross_view(0)
        assert view.servers == pod.racks[0].servers
        names = {server.name for server in view.remote_hosts}
        assert {s.name for s in pod.racks[1].servers} <= names
        assert {s.name for s in pod.standalone_remotes} <= names
        assert not any(s.name.startswith("web-") for s in view.remote_hosts)

    def test_workload_runs_on_cross_view(self):
        """A WebWorkload on the view drives real cross-rack traffic."""
        sim, pod = two_rack_pod()
        view = pod.cross_view(0)
        workload = WebWorkload(
            view, WebConfig(request_rate_per_s=40, fanout=4), rng=3
        )
        workload.install()
        sim.run_for(ms(60))
        assert workload.stats.requests_issued > 0
        # the cache rack's uplinks carried the RPC responses out
        cache_up_tx = sum(
            p.counters.tx_bytes for p in pod.racks[1].tor.uplink_ports
        )
        web_down_tx = sum(
            p.counters.tx_bytes for p in pod.racks[0].tor.downlink_ports
        )
        assert cache_up_tx > 0
        assert web_down_tx > 0
