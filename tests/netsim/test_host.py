"""Server / NIC / transport tests."""

import pytest

from repro.errors import ConfigError
from repro.netsim import Simulator, build_rack
from repro.netsim.host import Nic, Server, WindowedTransport
from repro.netsim.link import Link
from repro.units import MTU, gbps, ms


class TestNic:
    def test_paces_at_line_rate(self):
        sim = Simulator()
        link = Link(sim, "nic", rate_bps=gbps(10), propagation_ns=0)
        sent = []
        link.connect(lambda p: sent.append(sim.now))
        nic = Nic(sim, link)
        server = Server.__new__(Server)  # only need a flow source
        from repro.netsim.packet import FiveTuple, Packet

        flow = FiveTuple("a", "b", 1, 2)
        for i in range(3):
            nic.send(Packet(flow=flow, size_bytes=1500, created_ns=0, seq=i))
        sim.run_until(ms(1))
        # back-to-back at 1.2 us serialization each
        assert sent == [1200, 2400, 3600]
        assert nic.tx_packets == 3
        assert nic.tx_bytes == 4500


class TestTransport:
    def test_flow_completes_and_callback_fires(self, sim, small_rack):
        done = []
        small_rack.servers[0].send_flow(
            small_rack.servers[1].name, 50_000, on_complete=lambda f: done.append(f)
        )
        sim.run_for(ms(20))
        assert len(done) == 1
        state = done[0]
        assert state.done
        assert state.completed_ns is not None
        assert state.acked == state.total_packets

    def test_received_bytes_match_flow_size(self, sim, small_rack):
        size = 100_000
        small_rack.servers[0].send_flow(small_rack.servers[1].name, size)
        sim.run_for(ms(20))
        import math

        expected_packets = math.ceil(size / MTU)
        assert small_rack.servers[1].transport  # receiver side exists
        # receiver counts data plus no stray packets
        data_bytes = expected_packets * MTU
        assert small_rack.servers[1].rx_bytes == data_bytes

    def test_slow_start_growth(self, sim, small_rack):
        state = small_rack.servers[0].send_flow(small_rack.servers[1].name, 500_000)
        initial = WindowedTransport.INITIAL_CWND
        sim.run_for(ms(5))
        assert state.cwnd > initial

    def test_acks_flow_back(self, sim, small_rack):
        """Reverse direction carries minimum-size ACKs through the ToR."""
        small_rack.servers[0].send_flow(small_rack.servers[1].name, 50_000)
        sim.run_for(ms(20))
        # ACKs from server 1 egress through server 0's downlink port
        port0 = small_rack.tor.downlink_ports[0]
        assert port0.counters.tx_size_hist[0] > 0  # 64-byte bin

    def test_timeout_recovery_after_losses(self):
        """Flows finish despite a tiny buffer forcing drops."""
        from repro.netsim import BufferPolicy, RackConfig, TorSwitchConfig

        sim = Simulator(seed=5)
        rack = build_rack(
            sim,
            RackConfig(
                name="t",
                switch=TorSwitchConfig(
                    n_downlinks=4,
                    n_uplinks=2,
                    buffer=BufferPolicy(capacity_bytes=60_000, alpha=0.5),
                ),
                n_remote_hosts=8,
                rto_ns=ms(2),
            ),
        )
        done = []
        for remote in rack.remote_hosts:
            remote.send_flow(rack.servers[0].name, 150_000, on_complete=done.append)
        sim.run_for(ms(200))
        assert rack.tor.total_drops() > 0
        assert len(done) == len(rack.remote_hosts)
        assert any(f.retransmits > 0 for f in done)

    def test_flow_size_validation(self, sim, small_rack):
        with pytest.raises(ConfigError):
            small_rack.servers[0].send_flow(small_rack.servers[1].name, 0)
        with pytest.raises(ConfigError):
            small_rack.servers[0].send_flow(
                small_rack.servers[1].name, 1000, packet_size=20
            )

    def test_active_flow_accounting(self, sim, small_rack):
        transport = small_rack.servers[0].transport
        assert transport.active_flows == 0
        small_rack.servers[0].send_flow(small_rack.servers[1].name, 50_000)
        assert transport.active_flows == 1
        sim.run_for(ms(20))
        assert transport.active_flows == 0
        assert transport.flows_started == transport.flows_completed == 1

    def test_app_data_hook(self, sim, small_rack):
        seen = []
        small_rack.servers[1].on_data_packet = seen.append
        small_rack.servers[0].send_flow(small_rack.servers[1].name, 30_000)
        sim.run_for(ms(20))
        assert len(seen) == 20  # 30000 / 1500
        assert all(not p.is_ack for p in seen)
