"""ToR switch, fabric, and topology tests."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.netsim import (
    RackConfig,
    Simulator,
    TorSwitchConfig,
    TorSwitch,
    build_rack,
)
from repro.netsim.packet import FiveTuple, Packet
from repro.units import ms


class TestTorSwitchConfig:
    def test_default_oversubscription_is_four(self):
        assert TorSwitchConfig().oversubscription == pytest.approx(4.0)

    def test_invalid_port_counts(self):
        with pytest.raises(ConfigError):
            TorSwitchConfig(n_downlinks=0)


class TestForwarding:
    def test_local_traffic_stays_in_rack(self, sim, small_rack):
        rack = small_rack
        src, dst = rack.servers[0], rack.servers[1]
        src.send_flow(dst.name, 30_000)
        sim.run_for(ms(10))
        assert dst.rx_bytes >= 30_000
        # nothing for this flow should leave via uplinks
        uplink_tx = sum(p.counters.tx_bytes for p in rack.tor.uplink_ports)
        assert uplink_tx <= 200  # at most stray ACK-sized leakage (none expected)

    def test_remote_traffic_uses_ecmp_uplink(self, sim, small_rack):
        rack = small_rack
        rack.servers[0].send_flow(rack.remote_hosts[0].name, 30_000)
        sim.run_for(ms(10))
        uplink_tx = [p.counters.tx_bytes for p in rack.tor.uplink_ports]
        assert sum(uplink_tx) >= 30_000
        # flow-level ECMP: a single flow rides one uplink
        assert sum(1 for b in uplink_tx if b > 1000) == 1

    def test_fabric_delivers_to_rack(self, sim, small_rack):
        rack = small_rack
        rack.remote_hosts[0].send_flow(rack.servers[2].name, 30_000)
        sim.run_for(ms(10))
        assert rack.servers[2].rx_bytes >= 30_000
        uplink_rx = sum(p.counters.rx_bytes for p in rack.tor.uplink_ports)
        assert uplink_rx >= 30_000

    def test_remote_to_remote_bypasses_tor(self, sim, small_rack):
        rack = small_rack
        rack.remote_hosts[0].send_flow(rack.remote_hosts[1].name, 30_000)
        sim.run_for(ms(10))
        assert rack.remote_hosts[1].rx_bytes >= 30_000
        assert all(p.counters.rx_bytes == 0 for p in rack.tor.uplink_ports)

    def test_unknown_source_rejected(self, sim, small_rack):
        flow = FiveTuple("ghost", "t-s0", 1, 2)
        packet = Packet(flow=flow, size_bytes=100, created_ns=0)
        with pytest.raises(SimulationError):
            small_rack.tor.receive_from_server("ghost", packet)

    def test_fabric_packet_for_unknown_host_rejected(self, sim, small_rack):
        flow = FiveTuple("t-r0", "nowhere", 1, 2)
        packet = Packet(flow=flow, size_bytes=100, created_ns=0)
        with pytest.raises(SimulationError):
            small_rack.tor.receive_from_fabric(0, packet)


class TestWiring:
    def test_port_counts_limited_by_config(self):
        sim = Simulator()
        switch = TorSwitch(sim, TorSwitchConfig(n_downlinks=1, n_uplinks=1))
        switch.add_downlink("h0", lambda p: None)
        with pytest.raises(ConfigError):
            switch.add_downlink("h1", lambda p: None)

    def test_duplicate_host_rejected(self):
        sim = Simulator()
        switch = TorSwitch(sim, TorSwitchConfig(n_downlinks=2, n_uplinks=1))
        switch.add_downlink("h0", lambda p: None)
        with pytest.raises(ConfigError):
            switch.add_downlink("h0", lambda p: None)

    def test_rack_host_names(self, small_rack):
        assert small_rack.server_names == ["t-s0", "t-s1", "t-s2", "t-s3"]
        assert len(small_rack.remote_names) == 8
        assert small_rack.host("t-s1").name == "t-s1"
        with pytest.raises(KeyError):
            small_rack.host("nope")

    def test_rack_builder_defaults(self):
        sim = Simulator()
        rack = build_rack(sim)
        assert len(rack.servers) == 16
        assert len(rack.tor.uplink_ports) == 4
        assert rack.tor.config.oversubscription == pytest.approx(4.0)


class TestRackMtu:
    """Oversize MTUs must fail at construction, not mid-simulation.

    Regression for the old behaviour where a >1518 B frame only blew up
    inside ``size_bin_index`` (SimulationError) once the first packet hit
    a switch counter, long after the misconfiguration was made.
    """

    def test_jumbo_mtu_rejected_at_config_time(self):
        with pytest.raises(ConfigError, match="1518"):
            RackConfig(mtu_bytes=9000)

    def test_tiny_mtu_rejected_at_config_time(self):
        with pytest.raises(ConfigError):
            RackConfig(mtu_bytes=32)

    def test_max_frame_mtu_builds_and_sends(self):
        sim = Simulator()
        config = RackConfig(
            name="t",
            switch=TorSwitchConfig(n_downlinks=2, n_uplinks=1),
            n_remote_hosts=1,
            mtu_bytes=1518,
        )
        rack = build_rack(sim, config)
        assert rack.servers[0].transport.mtu_bytes == 1518
        assert rack.remote_hosts[0].transport.mtu_bytes == 1518
        rack.servers[0].send_flow(rack.servers[1].name, 30_000, packet_size=1518)
        sim.run_for(ms(10))
        assert rack.servers[1].rx_bytes >= 30_000

    def test_flow_packet_size_capped_by_rack_mtu(self, small_rack):
        with pytest.raises(ConfigError, match="frame limits"):
            small_rack.servers[0].send_flow(
                small_rack.servers[1].name, 30_000, packet_size=1518
            )

    def test_transport_rejects_oversize_mtu_directly(self):
        from repro.netsim.host import Nic, WindowedTransport
        from repro.netsim.link import Link
        from repro.units import gbps

        sim = Simulator()
        nic = Nic(sim, Link(sim, "l", rate_bps=gbps(10)))
        with pytest.raises(ConfigError, match="histogram"):
            WindowedTransport(sim, "h", nic, mtu_bytes=9000)


class TestIncast:
    def test_fan_in_fills_buffer_and_can_drop(self):
        """Many-to-one traffic must stress the shared buffer (Sec 6.3)."""
        sim = Simulator(seed=3)
        config = RackConfig(
            name="t",
            switch=TorSwitchConfig(
                n_downlinks=4,
                n_uplinks=2,
                buffer=__import__("repro.netsim.buffer", fromlist=["BufferPolicy"]).BufferPolicy(
                    capacity_bytes=150_000, alpha=1.0
                ),
            ),
            n_remote_hosts=16,
        )
        rack = build_rack(sim, config)
        target = rack.servers[0]
        for remote in rack.remote_hosts:
            remote.send_flow(target.name, 300_000)
        sim.run_for(ms(30))
        peak = rack.tor.shared_buffer.peak_occupancy_read_and_reset()
        assert peak > 50_000
        victim_port = rack.tor.downlink_ports[0]
        assert victim_port.counters.tx_drops > 0
        # ~90 % of drops in the ToR-to-server direction (Sec 4.2)
        down_drops = sum(p.counters.tx_drops for p in rack.tor.downlink_ports)
        total = rack.tor.total_drops()
        assert down_drops / total > 0.9
