"""Clos fabric topology tests."""

import pytest

from repro.errors import ConfigError
from repro.netsim import ClosConfig, ClosFabric


@pytest.fixture
def fabric():
    return ClosFabric(ClosConfig())


class TestStructure:
    def test_validates(self, fabric):
        fabric.validate()

    def test_node_counts(self, fabric):
        cfg = fabric.config
        tiers = {}
        for _node, data in fabric.graph.nodes(data=True):
            tiers[data["tier"]] = tiers.get(data["tier"], 0) + 1
        assert tiers["tor"] == cfg.n_pods * cfg.n_racks_per_pod
        assert tiers["fabric"] == cfg.n_pods * cfg.n_fabric_per_pod
        assert tiers["spine"] == cfg.n_fabric_per_pod * cfg.n_spines_per_plane

    def test_uplinks_per_tor(self, fabric):
        assert fabric.n_uplinks_per_tor == 4
        for tor in fabric.tors:
            assert fabric.graph.degree(tor) == 4

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            ClosConfig(n_pods=0)


class TestPaths:
    def test_same_pod_paths_via_fabric(self, fabric):
        a = ClosFabric.tor_name(0, 0)
        b = ClosFabric.tor_name(0, 1)
        paths = fabric.equal_cost_paths(a, b)
        # one 2-hop path per fabric switch of the pod
        assert len(paths) == fabric.config.n_fabric_per_pod
        assert all(len(p) == 3 for p in paths)

    def test_cross_pod_paths_via_spines(self, fabric):
        a = ClosFabric.tor_name(0, 0)
        b = ClosFabric.tor_name(1, 0)
        paths = fabric.equal_cost_paths(a, b)
        # planes x spines-per-plane distinct 4-hop paths
        expected = fabric.config.n_fabric_per_pod * fabric.config.n_spines_per_plane
        assert len(paths) == expected
        assert all(len(p) == 5 for p in paths)

    def test_same_tor_rejected(self, fabric):
        tor = fabric.tors[0]
        with pytest.raises(ConfigError):
            fabric.equal_cost_paths(tor, tor)


class TestFailures:
    def test_healthy_factors_all_one(self, fabric):
        assert fabric.uplink_capacity_factors(fabric.tors[0]) == [1.0] * 4

    def test_tor_uplink_failure_zeroes_one_factor(self, fabric):
        tor = ClosFabric.tor_name(0, 0)
        fabric.fail_link(tor, ClosFabric.fabric_name(0, 2))
        factors = fabric.uplink_capacity_factors(tor)
        assert factors == [1.0, 1.0, 0.0, 1.0]
        # the neighbouring rack is unaffected
        other = ClosFabric.tor_name(0, 1)
        assert fabric.uplink_capacity_factors(other) == [1.0] * 4

    def test_spine_link_failure_fractional(self, fabric):
        fabric.fail_link(ClosFabric.fabric_name(0, 1), ClosFabric.spine_name(1, 0))
        factors = fabric.uplink_capacity_factors(ClosFabric.tor_name(0, 0))
        assert factors[1] == pytest.approx(0.75)
        assert factors[0] == factors[2] == factors[3] == 1.0

    def test_failure_reduces_paths(self, fabric):
        a = ClosFabric.tor_name(0, 0)
        b = ClosFabric.tor_name(1, 0)
        before = len(fabric.equal_cost_paths(a, b))
        fabric.fail_link(ClosFabric.fabric_name(0, 0), ClosFabric.spine_name(0, 0))
        after = len(fabric.equal_cost_paths(a, b))
        assert after == before - 1

    def test_restore(self, fabric):
        tor = ClosFabric.tor_name(0, 0)
        fabric.fail_link(tor, ClosFabric.fabric_name(0, 0))
        fabric.restore_all()
        assert fabric.uplink_capacity_factors(tor) == [1.0] * 4

    def test_unknown_link_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.fail_link("tor-p0r0", "spine-l0s0")

    def test_bisection_drops_with_failures(self, fabric):
        before = fabric.bisection_bandwidth_bps()
        fabric.fail_link(ClosFabric.tor_name(0, 0), ClosFabric.fabric_name(0, 0))
        assert fabric.bisection_bandwidth_bps() < before
