"""Counter-surface tests."""

import pytest

from repro.errors import CounterError
from repro.netsim import SwitchCounterSurface
from repro.netsim.port import SIZE_BIN_EDGES
from repro.units import ms


@pytest.fixture
def surface_with_traffic(sim, small_rack):
    small_rack.servers[0].send_flow(small_rack.servers[1].name, 60_000)
    small_rack.servers[2].send_flow(small_rack.remote_hosts[0].name, 60_000)
    sim.run_for(ms(20))
    return SwitchCounterSurface(small_rack.tor), small_rack


class TestDiscovery:
    def test_port_names(self, surface_with_traffic):
        surface, rack = surface_with_traffic
        assert set(surface.port_names) == {"down0", "down1", "down2", "down3", "up0", "up1"}

    def test_ports_by_direction(self, surface_with_traffic):
        from repro.netsim.port import Direction

        surface, _ = surface_with_traffic
        assert surface.ports_by_direction(Direction.UPLINK) == ["up0", "up1"]

    def test_port_rate(self, surface_with_traffic):
        surface, rack = surface_with_traffic
        assert surface.port_rate_bps("down0") == rack.config.switch.downlink_rate_bps

    def test_unknown_port_raises(self, surface_with_traffic):
        surface, _ = surface_with_traffic
        with pytest.raises(CounterError):
            surface.read_tx_bytes("down99")


class TestReads:
    def test_tx_bytes_match_port_counters(self, surface_with_traffic):
        surface, rack = surface_with_traffic
        assert surface.read_tx_bytes("down1") == rack.tor.downlink_ports[1].counters.tx_bytes
        assert surface.read_tx_bytes("down1") >= 60_000

    def test_rx_and_drops(self, surface_with_traffic):
        surface, rack = surface_with_traffic
        assert surface.read_rx_bytes("down0") >= 60_000
        assert surface.read_tx_drops("down0") == 0

    def test_histograms_sum_to_packets(self, surface_with_traffic):
        surface, rack = surface_with_traffic
        hist = surface.read_tx_size_histogram("down1")
        assert len(hist) == len(SIZE_BIN_EDGES)
        assert sum(hist) == rack.tor.downlink_ports[1].counters.tx_packets

    def test_peak_buffer_read_and_reset(self, surface_with_traffic):
        surface, _ = surface_with_traffic
        first = surface.read_peak_buffer_and_reset()
        assert first > 0
        second = surface.read_peak_buffer_and_reset()
        assert second <= first

    def test_buffer_capacity_and_occupancy(self, surface_with_traffic):
        surface, rack = surface_with_traffic
        assert surface.buffer_capacity_bytes == rack.config.switch.buffer.capacity_bytes
        assert surface.read_buffer_occupancy() == 0  # traffic drained
