"""Fabric-cloud internals: paced queues, routing, error paths."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.netsim import FabricCloud, Simulator
from repro.netsim.fabric import _PacedQueue
from repro.netsim.packet import FiveTuple, Packet
from repro.units import gbps, ms


def packet(src="a", dst="b", size=1500, seq=0):
    return Packet(
        flow=FiveTuple(src, dst, 1, 2), size_bytes=size, created_ns=0, seq=seq
    )


class TestPacedQueue:
    def make(self, capacity=10_000, rate=gbps(10)):
        sim = Simulator()
        delivered = []
        queue = _PacedQueue(sim, rate, capacity, deliver=delivered.append)
        return sim, queue, delivered

    def test_paces_at_rate(self):
        sim, queue, delivered = self.make()
        for seq in range(3):
            assert queue.offer(packet(seq=seq))
        sim.run_until(ms(1))
        assert len(delivered) == 3
        assert [p.seq for p in delivered] == [0, 1, 2]

    def test_tail_drop_at_capacity(self):
        # the first packet starts transmitting immediately, so the queue
        # holds packets 2 and 3; the 4th exceeds the 3000 B backlog cap
        sim, queue, delivered = self.make(capacity=3000)
        assert queue.offer(packet())
        assert queue.offer(packet())
        assert queue.offer(packet())
        assert not queue.offer(packet())
        assert queue.drops == 1
        sim.run_until(ms(1))
        assert len(delivered) == 3

    def test_backlog_drains_and_accepts_again(self):
        sim, queue, delivered = self.make(capacity=3000)
        queue.offer(packet())
        queue.offer(packet())
        sim.run_until(ms(1))
        assert queue.offer(packet(seq=9))
        sim.run_until(ms(2))
        assert delivered[-1].seq == 9

    def test_tx_bytes_accounting(self):
        sim, queue, _ = self.make()
        queue.offer(packet(size=1000))
        sim.run_until(ms(1))
        assert queue.tx_bytes == 1000


class TestFabricCloudWiring:
    def test_double_tor_connect_rejected(self):
        sim = Simulator()
        fabric = FabricCloud(sim, n_uplinks=2, uplink_rate_bps=gbps(10))
        fabric.connect_tor(["h0"], lambda i, p: None)
        with pytest.raises(ConfigError):
            fabric.connect_tor(["h1"], lambda i, p: None)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            FabricCloud(Simulator(), n_uplinks=2, uplink_rate_bps=gbps(10), latency_ns=-1)

    def test_unknown_destination_from_tor(self):
        sim = Simulator()
        fabric = FabricCloud(sim, n_uplinks=2, uplink_rate_bps=gbps(10))
        with pytest.raises(SimulationError):
            fabric.receive_from_tor(packet(dst="ghost"))

    def test_unknown_destination_from_remote(self, sim, small_rack):
        with pytest.raises(SimulationError):
            small_rack.fabric.receive_from_remote(packet(src="t-r0", dst="ghost"))

    def test_uplink_queue_drop_counters_exposed(self, sim, small_rack):
        assert small_rack.fabric.uplink_queue_drops == [0, 0]

    def test_remote_host_names_sorted(self, sim, small_rack):
        names = small_rack.fabric.remote_host_names
        assert names == sorted(names)
        assert len(names) == 8

    def test_ingress_spread_uses_independent_hash(self, sim, small_rack):
        """Fabric-side ECMP differs from the ToR's: the same flow may use
        different uplinks in the two directions."""
        rack = small_rack
        for index, remote in enumerate(rack.remote_hosts):
            remote.send_flow(rack.servers[index % 4].name, 50_000)
        sim.run_for(ms(15))
        rx = [p.counters.rx_bytes for p in rack.tor.uplink_ports]
        assert sum(rx) >= 8 * 50_000
        assert all(b > 0 for b in rx)  # both uplinks used for ingress
