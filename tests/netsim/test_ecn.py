"""ECN marking and DCTCP transport tests."""

import pytest

from repro.errors import ConfigError
from repro.netsim import (
    BufferPolicy,
    DctcpTransport,
    EcnConfig,
    EcnMarker,
    RackConfig,
    Simulator,
    TorSwitchConfig,
    build_rack,
)
from repro.netsim.packet import FiveTuple, Packet
from repro.units import ms


def packet(ce=False, seq=0):
    return Packet(
        flow=FiveTuple("a", "b", 1, 2), size_bytes=1500, created_ns=0, seq=seq, ce=ce
    )


class TestMarker:
    def test_marks_above_threshold(self):
        marker = EcnMarker(EcnConfig(mark_threshold_bytes=10_000))
        p1, p2 = packet(), packet()
        marker.observe(5_000, p1)
        marker.observe(15_000, p2)
        assert not p1.ce
        assert p2.ce
        assert marker.packets_marked == 1
        assert marker.mark_fraction == pytest.approx(0.5)

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            EcnConfig(mark_threshold_bytes=0)

    def test_empty_marker_fraction(self):
        assert EcnMarker().mark_fraction == 0.0


def dctcp_rack(seed=1, n_remote=16):
    sim = Simulator(seed=seed)
    rack = build_rack(
        sim,
        RackConfig(
            name="t",
            switch=TorSwitchConfig(
                n_downlinks=4,
                n_uplinks=2,
                buffer=BufferPolicy(capacity_bytes=200_000, alpha=1.0),
                ecn=EcnConfig(mark_threshold_bytes=30_000),
            ),
            n_remote_hosts=n_remote,
            transport="dctcp",
            rto_ns=ms(2),
        ),
    )
    return sim, rack


class TestDctcp:
    def test_transport_class_selected(self):
        _, rack = dctcp_rack()
        assert isinstance(rack.servers[0].transport, DctcpTransport)
        assert isinstance(rack.remote_hosts[0].transport, DctcpTransport)

    def test_receiver_echoes_ce(self):
        sim, rack = dctcp_rack()
        server = rack.servers[0]
        echoed = []
        marked = packet(ce=True)
        marked = Packet(
            flow=FiveTuple("x", server.name, 5, 6),
            size_bytes=1500,
            created_ns=0,
            ce=True,
        )
        server.transport.handle_packet(marked, reply=echoed.append)
        assert len(echoed) == 1
        assert echoed[0].is_ack
        assert echoed[0].ce

    def test_unmarked_data_gives_unmarked_ack(self):
        sim, rack = dctcp_rack()
        server = rack.servers[0]
        echoed = []
        clean = Packet(
            flow=FiveTuple("x", server.name, 5, 6), size_bytes=1500, created_ns=0
        )
        server.transport.handle_packet(clean, reply=echoed.append)
        assert not echoed[0].ce

    def test_alpha_converges_under_marking(self):
        sim, rack = dctcp_rack()
        for remote in rack.remote_hosts:
            remote.send_flow(rack.servers[0].name, 1_500_000)
        sim.run_for(ms(80))
        transport = rack.remote_hosts[0].transport
        alphas = list(transport._alpha.values())
        assert alphas, "no alpha state: marking feedback never reached sender"
        assert 0.0 < alphas[0] <= 1.0

    def test_dctcp_keeps_steady_state_queue_short(self):
        """The ext-cc claim: after warm-up, DCTCP holds the queue near K
        while reno fills the shared buffer to its DT cap."""

        def steady_peak(transport):
            sim = Simulator(seed=3)
            rack = build_rack(
                sim,
                RackConfig(
                    name="t",
                    switch=TorSwitchConfig(
                        n_downlinks=4,
                        n_uplinks=2,
                        buffer=BufferPolicy(capacity_bytes=200_000, alpha=1.0),
                        ecn=EcnConfig(mark_threshold_bytes=30_000),
                    ),
                    n_remote_hosts=16,
                    transport=transport,
                    rto_ns=ms(2),
                ),
            )
            for remote in rack.remote_hosts:
                remote.send_flow(rack.servers[0].name, 2_000_000)
            sim.run_for(ms(20))
            rack.tor.shared_buffer.peak_occupancy_read_and_reset()
            sim.run_for(ms(60))
            return rack.tor.shared_buffer.peak_occupancy_read_and_reset()

        assert steady_peak("dctcp") < steady_peak("reno") / 2

    def test_flow_alpha_default_zero(self):
        sim, rack = dctcp_rack()
        transport = rack.servers[0].transport
        assert transport.flow_alpha(FiveTuple("a", "b", 1, 2)) == 0.0
