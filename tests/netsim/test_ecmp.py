"""ECMP hashing tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netsim import EcmpHasher
from repro.netsim.packet import FiveTuple


def flows(n):
    return [FiveTuple(f"h{i}", "dst", 1000 + i, 80) for i in range(n)]


class TestFlowMode:
    def test_consistent_per_flow(self):
        hasher = EcmpHasher(4)
        flow = flows(1)[0]
        choices = {hasher.choose(flow) for _ in range(20)}
        assert len(choices) == 1

    def test_deterministic_across_instances(self):
        a = EcmpHasher(4)
        b = EcmpHasher(4)
        for flow in flows(50):
            assert a.choose(flow) == b.choose(flow)

    def test_salt_changes_mapping(self):
        a = EcmpHasher(4, salt=0)
        b = EcmpHasher(4, salt=1)
        assignments_differ = any(a.choose(f) != b.choose(f) for f in flows(50))
        assert assignments_differ

    def test_roughly_uniform_over_many_flows(self):
        hasher = EcmpHasher(4)
        counts = np.bincount([hasher.choose(f) for f in flows(4000)], minlength=4)
        assert counts.min() > 800  # each link gets a fair share

    def test_reverse_flow_may_differ(self):
        """Flow hashing is direction-sensitive, like real 5-tuple ECMP."""
        hasher = EcmpHasher(4)
        differs = any(
            hasher.choose(f) != hasher.choose(f.reversed()) for f in flows(50)
        )
        assert differs

    def test_small_flow_count_imbalance(self):
        """The Fig 7 effect: a handful of flows cannot balance 4 links."""
        hasher = EcmpHasher(4)
        counts = np.bincount([hasher.choose(f) for f in flows(4)], minlength=4)
        assert counts.max() >= 2 or 0 in counts


class TestPacketMode:
    def test_round_robin(self):
        hasher = EcmpHasher(4, mode="packet")
        flow = flows(1)[0]
        assert [hasher.choose(flow) for _ in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


class TestValidation:
    def test_zero_uplinks_rejected(self):
        with pytest.raises(ConfigError):
            EcmpHasher(0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            EcmpHasher(4, mode="spray")
