"""Unit-helper tests."""

import pytest

from repro import units


def test_time_conversions_roundtrip():
    assert units.us(25) == 25_000
    assert units.ms(1) == 1_000_000
    assert units.seconds(2) == 2_000_000_000
    assert units.to_us(units.us(123)) == 123
    assert units.to_seconds(units.seconds(5)) == 5.0


def test_time_conversions_round_not_truncate():
    assert units.us(0.0015) == 2  # 1.5 ns rounds up
    assert units.ns(2.4) == 2


def test_rates():
    assert units.gbps(10) == 10e9
    assert units.mbps(1) == 1e6
    assert units.kbps(1) == 1e3


def test_bytes_per_interval():
    # 10 Gbps for 25 us = 31250 bytes
    assert units.bytes_per_interval(units.gbps(10), units.us(25)) == pytest.approx(31250)


def test_utilization_full_rate_is_one():
    cap = units.bytes_per_interval(units.gbps(10), units.us(25))
    assert units.utilization(cap, units.gbps(10), units.us(25)) == pytest.approx(1.0)


def test_utilization_rejects_zero_capacity():
    with pytest.raises(ValueError):
        units.utilization(100, 0.0, units.us(25))


def test_serialization_time():
    # 1500 B at 10 Gbps = 1.2 us
    assert units.serialization_time_ns(1500, units.gbps(10)) == 1200
    # 64 B at 10 Gbps = 51.2 ns -> rounds to 51
    assert units.serialization_time_ns(64, units.gbps(10)) == 51


def test_packet_constants_sane():
    assert units.MIN_PACKET < units.MTU
    assert units.TCP_HEADER_OVERHEAD < units.MIN_PACKET + 10
