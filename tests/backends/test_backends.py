"""Unit tests for the measurement-backend layer (repro.backends)."""

import pickle

import numpy as np
import pytest

from repro.backends import (
    BACKENDS,
    MeasurementBackend,
    NetsimBackend,
    NetsimScale,
    SynthBackend,
    resolve_backend,
)
from repro.backends.base import default_port_names, rack_window_spec, single_port_plan
from repro.errors import ConfigError
from repro.units import ms, seconds


class TestPlanBuilders:
    def test_single_port_plan_shape(self):
        plan = single_port_plan("web", 6, seconds(1), seed=0)
        assert len(plan.windows) == 6
        assert all(w.rack_type == "web" for w in plan.windows)
        assert all(w.duration_ns == seconds(1) for w in plan.windows)
        assert [w.hour for w in plan.windows] == list(range(6))

    def test_port_choice_is_site_keyed(self):
        # A prefix plan chooses the same ports: window identity, not draw
        # order, keys the choice.
        long = single_port_plan("cache", 8, seconds(1), seed=5)
        short = single_port_plan("cache", 3, seconds(1), seed=5)
        assert [w.port_name for w in long.windows[:3]] == [
            w.port_name for w in short.windows
        ]

    def test_port_choice_varies_with_seed(self):
        a = [w.port_name for w in single_port_plan("web", 16, seconds(1), seed=0).windows]
        b = [w.port_name for w in single_port_plan("web", 16, seconds(1), seed=1).windows]
        assert a != b

    def test_explicit_port_respected(self):
        plan = single_port_plan("web", 2, seconds(1), seed=0, port="up1")
        assert all(w.port_name == "up1" for w in plan.windows)

    def test_port_choice_mostly_downlinks(self):
        plan = single_port_plan("hadoop", 200, seconds(1), seed=0)
        down = sum(w.port_name.startswith("down") for w in plan.windows)
        # 16 downlinks of 20 ports: expect roughly 80 % downlink choices.
        assert 0.7 < down / 200 < 0.9

    def test_default_port_names(self):
        names = default_port_names(2, 1)
        assert names == ["down0", "down1", "up0"]

    def test_rack_window_spec_identity(self):
        spec = rack_window_spec("web", seconds(2), experiment="fig7")
        assert spec.rack_id == "web-fig7"
        assert spec.rack_type == "web"
        assert spec.duration_ns == seconds(2)


class TestResolveBackend:
    def test_none_is_synth(self):
        backend = resolve_backend(None, seed=3)
        assert isinstance(backend, SynthBackend)
        assert backend.seed == 3

    def test_names_resolve(self):
        assert isinstance(resolve_backend("synth"), SynthBackend)
        assert isinstance(resolve_backend("netsim"), NetsimBackend)

    def test_instance_passthrough(self):
        backend = NetsimBackend(seed=9)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="netsim"):
            resolve_backend("quantum")

    def test_registry_names_match(self):
        for name, cls in BACKENDS.items():
            assert cls.name == name


class TestSynthBackend:
    def test_satisfies_protocol(self):
        assert isinstance(SynthBackend(), MeasurementBackend)

    def test_sample_window_deterministic(self):
        window = single_port_plan("web", 1, seconds(1), seed=0).windows[0]
        a = SynthBackend(seed=0).sample_window(window)
        b = SynthBackend(seed=0).sample_window(window)
        (ta,), (tb,) = a.values(), b.values()
        assert np.array_equal(ta.values, tb.values)
        assert np.array_equal(ta.timestamps_ns, tb.timestamps_ns)

    def test_histogram_window_traces(self):
        spec = rack_window_spec("cache", seconds(1), experiment="t")
        traces = SynthBackend(seed=0).sample_histogram_window(spec)
        assert set(traces) == {"down0.tx_bytes", "down0.tx_size_hist"}
        assert traces["down0.tx_size_hist"].values.ndim == 2

    def test_rack_window_shapes(self):
        spec = rack_window_spec("hadoop", seconds(1), experiment="t")
        window = SynthBackend(seed=0).sample_rack_window(spec)
        n_ticks = seconds(1) // SynthBackend().tick_ns
        assert window.downlink_util.shape == (n_ticks, 16)
        assert window.uplink_egress_util.shape == (n_ticks, 4)

    def test_rack_window_activity_scales(self):
        spec = rack_window_spec("hadoop", seconds(1), experiment="t")
        backend = SynthBackend(seed=0)
        busy = backend.sample_rack_window(spec, activity=1.0)
        idle = backend.sample_rack_window(spec, activity=0.01)
        assert idle.downlink_util.mean() < busy.downlink_util.mean()

    def test_buffer_window_normalised(self):
        spec = rack_window_spec("hadoop", seconds(2), experiment="t")
        trace = SynthBackend(seed=0).sample_buffer_window(spec)
        assert trace.meta["normalisation"] == 1 << 20
        assert (trace.values >= 0).all()
        assert (trace.values <= (1 << 20)).all()

    def test_subtick_window_rejected(self):
        from repro.core.campaign import CampaignWindow

        tiny = CampaignWindow(
            rack_id="r", rack_type="web", port_name="down0",
            hour=0, start_ns=0, duration_ns=1,
        )
        with pytest.raises(ConfigError):
            SynthBackend(seed=0).sample_histogram_window(tiny)


class TestNetsimScale:
    def test_defaults_valid(self):
        # The default rack matches the paper's measured ToR (16 down,
        # 4 up); the window cap reflects the post-optimisation budget.
        scale = NetsimScale()
        assert scale.n_downlinks == 16
        assert scale.n_uplinks == 4
        assert scale.max_window_ns == ms(40)

    def test_smoke_is_smaller(self):
        smoke = NetsimScale.smoke()
        assert smoke.n_downlinks < NetsimScale().n_downlinks
        assert smoke.max_window_ns < NetsimScale().max_window_ns

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            NetsimScale(n_downlinks=0)
        with pytest.raises(ConfigError):
            NetsimScale(max_window_ns=0)


class TestNetsimBackend:
    def make(self, seed=0):
        return NetsimBackend(seed=seed, scale=NetsimScale.smoke())

    def test_satisfies_protocol(self):
        assert isinstance(self.make(), MeasurementBackend)

    def test_pickle_roundtrip(self):
        backend = self.make(seed=4)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone == backend

    def test_port_folding(self):
        backend = self.make()
        # smoke scale has 4 downlinks / 2 uplinks
        assert backend.map_port("down12") == "down0"
        assert backend.map_port("down2") == "down2"
        assert backend.map_port("up3") == "up1"

    def test_sample_window_renames_to_plan_port(self):
        window = single_port_plan("web", 1, ms(6), seed=0, port="down12").windows[0]
        traces = self.make().sample_window(window)
        assert set(traces) == {"down12.tx_bytes"}
        trace = traces["down12.tx_bytes"]
        assert trace.meta["backend"] == "netsim"
        assert trace.meta["measured_port"] == "down0"

    def test_sample_window_deterministic(self):
        window = single_port_plan("cache", 1, ms(6), seed=2, port="up0").windows[0]
        a = self.make(seed=2).sample_window(window)["up0.tx_bytes"]
        b = self.make(seed=2).sample_window(window)["up0.tx_bytes"]
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.timestamps_ns, b.timestamps_ns)

    def test_window_cap_applies(self):
        window = single_port_plan("web", 1, seconds(2), seed=0, port="down0").windows[0]
        trace = self.make().sample_window(window)["down0.tx_bytes"]
        span = int(trace.timestamps_ns[-1] - trace.timestamps_ns[0])
        assert span <= NetsimScale.smoke().max_window_ns

    def test_unknown_app_rejected(self):
        window = single_port_plan("web", 1, ms(6), seed=0).windows[0]
        bad = type(window)(
            rack_id="x", rack_type="quake", port_name="down0",
            hour=0, start_ns=0, duration_ns=ms(6),
        )
        with pytest.raises(ConfigError):
            self.make().sample_window(bad)
