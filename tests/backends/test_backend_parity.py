"""Backend-parity suite: the campaign pipeline is a faithful transport.

Three guarantees, per ISSUE/DESIGN:

* Running SynthBackend through the campaign pipeline is byte-identical
  to the pre-backend direct synthesiser path (pinned with golden CRCs).
* Serial and sharded-parallel collection agree byte for byte, for
  either backend (worker-count-invariant seeding).
* NetsimBackend runs through the same campaign machinery — including
  fault injection — and produces traces the burst analysis accepts.
"""

import zlib

import numpy as np
import pytest

from repro.analysis.bursts import extract_bursts_from_trace
from repro.backends import NetsimBackend, NetsimScale, SynthBackend
from repro.backends.base import single_port_plan
from repro.core.campaign import MeasurementCampaign, RetryPolicy, WindowStatus
from repro.core.parallel import ParallelCampaign
from repro.experiments.common import app_byte_traces
from repro.faults import FaultInjector, FaultPlan, FaultyWindowSource
from repro.synth.dataset import synthesize_app_windows
from repro.units import ms, seconds

#: crc32 over (values || timestamps) of every trace of
#: ``app_byte_traces(app, seed=0, n_windows=4, window_s=1.0)``.  These pin
#: the synth backend's output through the campaign pipeline; a change here
#: is a reproducibility break, not a test to update casually.
GOLDEN_SYNTH_CRCS = {
    "web": 0x4BABC719,
    "cache": 0x3BC94665,
    "hadoop": 0xEEB87BCD,
}

#: Netsim-backend golden CRCs: ``NetsimBackend(seed=0,
#: scale=NetsimScale.smoke())`` sampling ``single_port_plan(app, 2,
#: ms(6), seed=0, port="down0")``.  Captured before the event-engine
#: performance pass; every optimisation of the hot path must keep these
#: byte-identical (same seeds → same traces is the simulator's core
#: determinism contract).  A change here is a reproducibility break, not
#: a test to update casually.
GOLDEN_NETSIM_WINDOW_CRCS = {
    ("web", 0): 0x39DFBC09,
    ("web", 1): 0x53D95016,
    ("cache", 0): 0xF7F1E90B,
    ("cache", 1): 0x444BB5E3,
    ("hadoop", 0): 0xC0C4E954,
    ("hadoop", 1): 0x3D080C39,
}
GOLDEN_NETSIM_HIST_CRCS = {
    "web": 0x93E4DA7D,
    "cache": 0x0BC46082,
    "hadoop": 0xBDC75F44,
}
GOLDEN_NETSIM_BUFFER_CRCS = {
    "web": 0x214AAF97,
    "cache": 0x5673DFB3,
    "hadoop": 0x92E7AAFD,
}


def traces_crc(traces) -> int:
    crc = 0
    for trace in traces:
        crc = zlib.crc32(trace.values.tobytes(), crc)
        crc = zlib.crc32(trace.timestamps_ns.tobytes(), crc)
    return crc


def trace_dict_crc(traces: dict) -> int:
    """crc32 over (values || timestamps) of every trace, by sorted name."""
    crc = 0
    for name in sorted(traces):
        trace = traces[name]
        crc = zlib.crc32(trace.values.tobytes(), crc)
        crc = zlib.crc32(trace.timestamps_ns.tobytes(), crc)
    return crc


def assert_traces_equal(a, b):
    assert [t.name for t in a] == [t.name for t in b]
    for ta, tb in zip(a, b):
        assert np.array_equal(ta.values, tb.values)
        assert np.array_equal(ta.timestamps_ns, tb.timestamps_ns)


class TestSynthParity:
    @pytest.mark.parametrize("app", sorted(GOLDEN_SYNTH_CRCS))
    def test_campaign_pipeline_matches_direct_path(self, app):
        via_campaign = app_byte_traces(app, seed=0, n_windows=4, window_s=1.0)
        direct = synthesize_app_windows(app, 4, seconds(1.0), seed=0)
        assert_traces_equal(via_campaign, direct)

    @pytest.mark.parametrize("app", sorted(GOLDEN_SYNTH_CRCS))
    def test_golden_crcs(self, app):
        traces = app_byte_traces(app, seed=0, n_windows=4, window_s=1.0)
        assert traces_crc(traces) == GOLDEN_SYNTH_CRCS[app]

    def test_serial_vs_parallel_byte_identical(self):
        serial = app_byte_traces("web", seed=0, n_windows=4, window_s=1.0, workers=1)
        sharded = app_byte_traces("web", seed=0, n_windows=4, window_s=1.0, workers=4)
        assert_traces_equal(serial, sharded)

    def test_explicit_backend_instance_accepted(self):
        by_name = app_byte_traces("cache", seed=0, n_windows=2, window_s=1.0,
                                  backend="synth")
        by_instance = app_byte_traces("cache", seed=0, n_windows=2, window_s=1.0,
                                      backend=SynthBackend(seed=0))
        assert_traces_equal(by_name, by_instance)


class TestNetsimGoldenDeterminism:
    """Pin netsim per-window traces bit-for-bit across code changes."""

    def backend(self):
        return NetsimBackend(seed=0, scale=NetsimScale.smoke())

    def plan(self, app):
        return single_port_plan(app, 2, ms(6), seed=0, port="down0")

    @pytest.mark.parametrize("app", sorted(GOLDEN_NETSIM_HIST_CRCS))
    def test_window_trace_crcs(self, app):
        backend = self.backend()
        plan = self.plan(app)
        for index, window in enumerate(plan.windows):
            crc = trace_dict_crc(backend.sample_window(window))
            assert crc == GOLDEN_NETSIM_WINDOW_CRCS[(app, index)], (
                f"{app} window {index}: netsim traces changed byte-for-byte "
                "(determinism regression or an intentional model change)"
            )

    @pytest.mark.parametrize("app", sorted(GOLDEN_NETSIM_HIST_CRCS))
    def test_histogram_trace_crcs(self, app):
        backend = self.backend()
        window = self.plan(app).windows[0]
        crc = trace_dict_crc(backend.sample_histogram_window(window))
        assert crc == GOLDEN_NETSIM_HIST_CRCS[app]

    @pytest.mark.parametrize("app", sorted(GOLDEN_NETSIM_BUFFER_CRCS))
    def test_buffer_trace_crcs(self, app):
        backend = self.backend()
        window = self.plan(app).windows[0]
        trace = backend.sample_buffer_window(window)
        crc = zlib.crc32(trace.values.tobytes())
        crc = zlib.crc32(trace.timestamps_ns.tobytes(), crc)
        assert crc == GOLDEN_NETSIM_BUFFER_CRCS[app]

    def test_repeat_sampling_is_bit_identical(self):
        # Same backend object, same window, sampled twice: stateless.
        backend = self.backend()
        window = self.plan("cache").windows[0]
        first = backend.sample_window(window)
        second = backend.sample_window(window)
        assert trace_dict_crc(first) == trace_dict_crc(second)


class TestNetsimThroughCampaign:
    def smoke_backend(self, seed=0):
        return NetsimBackend(seed=seed, scale=NetsimScale.smoke())

    def plan(self, app="web", n_windows=2):
        return single_port_plan(app, n_windows, ms(6), seed=0, port="down0")

    def test_campaign_completes_and_traces_analyse(self):
        # hadoop's steady transfer rate guarantees traffic even in a 6 ms
        # smoke window (web's 60 req/s often fits zero requests in 6 ms)
        outcome = MeasurementCampaign(self.plan(app="hadoop"), self.smoke_backend()).run()
        assert outcome.completion_fraction == 1.0
        total_bytes = 0
        for _window, traces in outcome.iter_windows():
            trace = traces["down0.tx_bytes"]
            assert trace.meta["backend"] == "netsim"
            # cumulative counter semantics: non-decreasing
            assert (np.diff(trace.values) >= 0).all()
            total_bytes += int(trace.values[-1] - trace.values[0])
            stats = extract_bursts_from_trace(trace)
            assert stats.n_bursts >= 0  # analysis accepts netsim traces
        assert total_bytes > 0

    def test_serial_vs_parallel_byte_identical(self):
        plan = self.plan(n_windows=2)
        serial = MeasurementCampaign(plan, self.smoke_backend()).run()
        parallel = ParallelCampaign(plan, self.smoke_backend(), workers=2).run()
        serial_traces = [t for _w, ts in serial.iter_windows() for t in ts.values()]
        parallel_traces = [t for _w, ts in parallel.iter_windows() for t in ts.values()]
        assert_traces_equal(serial_traces, parallel_traces)

    def test_fault_injection_composes(self):
        injector = FaultInjector(
            FaultPlan(seed=1, window_failure_rate=0.5, transient_fraction=1.0)
        )
        source = FaultyWindowSource(self.smoke_backend(), injector)
        outcome = MeasurementCampaign(
            self.plan(n_windows=2), source, retry=RetryPolicy(max_attempts=3, backoff_s=0.0)
        ).run()
        # transient failures retry to completion; the wrapper never
        # changes what the backend produces on success
        assert outcome.completion_fraction == 1.0
        counts = outcome.status_counts()
        assert counts[WindowStatus.FAILED.value] == 0
