"""Export / compare pipeline tests."""

import pytest

from repro.data.export import compare_directory, export_distributions
from repro.data.io import read_distribution
from repro.errors import DataFormatError


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    out = tmp_path_factory.mktemp("dists")
    paths = export_distributions(out, seed=0, n_windows=6, window_s=1.0)
    return out, paths


class TestExport:
    def test_writes_nine_files(self, exported):
        _out, paths = exported
        assert len(paths) == 9  # 3 figures x 3 apps
        names = {p.name for p in paths}
        assert "fig3_web.dist" in names
        assert "fig6_hadoop.dist" in names

    def test_files_parse_and_validate(self, exported):
        _out, paths = exported
        for path in paths:
            dist = read_distribution(path)
            assert dist.cdf[-1] == pytest.approx(1.0)
            assert dist.figure in ("fig3", "fig4", "fig6")

    def test_fig3_landmarks_in_export(self, exported):
        out, _paths = exported
        web = read_distribution(out / "fig3_web.dist")
        # p90 burst duration ~50 us (two periods)
        assert web.percentile(0.9) <= 75.0


class TestCompare:
    def test_same_seed_near_perfect(self, exported):
        out, _paths = exported
        reports = compare_directory(out, seed=0, n_windows=6, window_s=1.0)
        assert len(reports) == 9
        for report in reports:
            assert report["ks_distance"] < 0.02

    def test_cross_seed_still_close(self, exported):
        out, _paths = exported
        reports = compare_directory(out, seed=99, n_windows=6, window_s=1.0)
        for report in reports:
            assert report["ks_distance"] < 0.15

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            compare_directory(tmp_path)


class TestCliExportCompare:
    def test_cli_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["export", "--dir", str(tmp_path), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert main(["compare", "--dir", str(tmp_path), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "KS" in out
