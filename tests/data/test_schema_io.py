"""Distribution-file schema and IO tests."""

import numpy as np
import pytest

from repro.data.io import distribution_from_samples, read_distribution, write_distribution
from repro.data.schema import DistributionFile
from repro.errors import DataFormatError


def sample_dist():
    return DistributionFile(
        figure="fig3",
        app="web",
        unit="us",
        x=np.array([25.0, 50.0, 100.0, 200.0]),
        cdf=np.array([0.6, 0.8, 0.95, 1.0]),
    )


class TestSchema:
    def test_percentile_interpolation(self):
        dist = sample_dist()
        assert dist.percentile(0.6) == pytest.approx(25.0)
        assert dist.percentile(0.7) == pytest.approx(37.5)
        assert dist.percentile(1.0) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(DataFormatError):
            DistributionFile("f", "a", "u", np.array([1.0]), np.array([1.0]))
        with pytest.raises(DataFormatError):
            DistributionFile(
                "f", "a", "u", np.array([2.0, 1.0]), np.array([0.5, 1.0])
            )
        with pytest.raises(DataFormatError):
            DistributionFile(
                "f", "a", "u", np.array([1.0, 2.0]), np.array([0.9, 0.5])
            )
        with pytest.raises(DataFormatError):
            DistributionFile(
                "f", "a", "u", np.array([1.0, 2.0]), np.array([0.5, 1.5])
            )

    def test_bad_quantile(self):
        with pytest.raises(DataFormatError):
            sample_dist().percentile(1.5)


class TestIo:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "fig3_web.dist"
        write_distribution(path, sample_dist())
        loaded = read_distribution(path)
        assert loaded.figure == "fig3"
        assert loaded.app == "web"
        assert loaded.unit == "us"
        assert np.allclose(loaded.x, sample_dist().x)
        assert np.allclose(loaded.cdf, sample_dist().cdf)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.dist"
        path.write_text("1 0.5\n2 1.0\n")
        with pytest.raises(DataFormatError):
            read_distribution(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.dist"
        path.write_text("# imc2017-distribution v99\n# figure: f\n# app: a\n# unit: u\n1 1\n2 1\n")
        with pytest.raises(DataFormatError):
            read_distribution(path)

    def test_missing_metadata_rejected(self, tmp_path):
        path = tmp_path / "bad.dist"
        path.write_text("# imc2017-distribution v1\n# figure: f\n1 0.5\n2 1.0\n")
        with pytest.raises(DataFormatError):
            read_distribution(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.dist"
        path.write_text(
            "# imc2017-distribution v1\n# figure: f\n# app: a\n# unit: u\n1 2 3\n"
        )
        with pytest.raises(DataFormatError):
            read_distribution(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.dist"
        path.write_text(
            "# imc2017-distribution v1\n# figure: f\n# app: a\n# unit: u\nx y\n"
        )
        with pytest.raises(DataFormatError):
            read_distribution(path)


class TestFromSamples:
    def test_built_from_raw_samples(self, rng):
        samples = rng.lognormal(3, 1, 5000)
        dist = distribution_from_samples(samples, "fig4", "cache", "us")
        assert dist.cdf[0] == 0.0
        assert dist.cdf[-1] == 1.0
        assert dist.percentile(0.5) == pytest.approx(np.median(samples), rel=0.05)
