"""Published-target sanity tests."""

import pytest

from repro.data.published import APPS, PAPER, Table2Entry


def test_table2_complete():
    assert set(PAPER.table2) == set(APPS)
    for entry in PAPER.table2.values():
        assert 0 < entry.p01 < entry.p11 < 1


def test_table2_ratios_consistent():
    """The paper's Eqs 1-3 must follow from its own Table 2 values."""
    for app, expected in (("web", 119.7), ("cache", 45.1), ("hadoop", 15.6)):
        entry = PAPER.table2[app]
        assert entry.p11 / entry.p01 == pytest.approx(expected, rel=0.01)


def test_table2_row_complements():
    entry = Table2Entry(p01=0.01, p11=0.7, likelihood_ratio=70.0)
    assert entry.p00 == pytest.approx(0.99)
    assert entry.p10 == pytest.approx(0.3)


def test_campaign_arithmetic():
    assert (
        PAPER.campaign_racks_per_app * 3 * PAPER.campaign_hours
        == PAPER.campaign_total_windows
    )


def test_sampling_targets_ordered():
    rates = PAPER.tab1_miss_rates
    assert rates[1_000] > rates[10_000] > rates[25_000]


def test_fig9_shares_ordered():
    shares = PAPER.fig9_uplink_share
    assert shares["web"] < shares["hadoop"] < shares["cache"]


def test_fig3_p90_bounds():
    assert PAPER.fig3_p90_burst_duration_ns["web"] == 50_000
    assert all(v <= 200_000 for v in PAPER.fig3_p90_burst_duration_ns.values())
