"""Calibration scorecard tests."""

import pytest

from repro.synth.validation import CheckResult, calibration_scorecard, render_scorecard


@pytest.fixture(scope="module")
def scorecard():
    return calibration_scorecard(seed=0, n_ticks=800_000)


def test_all_checks_pass(scorecard):
    failing = [check for check in scorecard if not check.passed]
    assert not failing, f"calibration drifted: {failing}"


def test_covers_every_app(scorecard):
    apps = {check.app for check in scorecard}
    assert apps == {"web", "cache", "hadoop", "all"}


def test_row_count(scorecard):
    # 5 checks for web/cache, 4 for hadoop (no single-period target), 1 global
    assert len(scorecard) == 5 + 5 + 4 + 1


def test_render_shows_status(scorecard):
    text = render_scorecard(scorecard)
    assert "PASS" in text
    assert f"{len(scorecard)}/{len(scorecard)} checks passed" in text


def test_render_marks_failures():
    fake = [
        CheckResult(app="web", metric="m", target="t", measured=0.0, passed=False)
    ]
    assert "FAIL" in render_scorecard(fake)
    assert "0/1" in render_scorecard(fake)


def test_cli_validate_exit_code(capsys):
    from repro.cli import main

    assert main(["validate", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "checks passed" in out
