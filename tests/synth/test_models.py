"""Buffer-response and drop-model tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.synth.buffermodel import BufferResponseModel
from repro.synth.calibration import APP_PROFILES, BufferResponse
from repro.synth.dropmodel import CoarseLinkPopulation, DropEpisodeModel


class TestBufferResponse:
    def test_monotone_and_saturating(self):
        model = BufferResponseModel(
            BufferResponse(base=0.1, scale=0.8, saturation_ports=5.0, noise_sigma=0.3)
        )
        counts = np.arange(0, 21)
        mean = model.mean_response(counts)
        assert np.all(np.diff(mean) > 0)
        # leveling off: the last step is much smaller than the first
        assert (mean[-1] - mean[-2]) < (mean[1] - mean[0]) / 5
        assert mean[0] == pytest.approx(0.1)

    def test_samples_clipped(self, rng):
        model = BufferResponseModel.for_app(APP_PROFILES["hadoop"])
        samples = model.sample(np.full(10_000, 20), rng)
        assert samples.min() >= 0.0
        assert samples.max() <= 1.0

    def test_hadoop_highest_standing_occupancy(self):
        zero = {
            app: BufferResponseModel.for_app(profile).mean_response(np.array([0]))[0]
            for app, profile in APP_PROFILES.items()
        }
        assert zero["hadoop"] > zero["cache"]
        assert zero["hadoop"] > zero["web"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            BufferResponse(base=0.1, scale=0.5, saturation_ports=0.0, noise_sigma=0.3)
        with pytest.raises(ConfigError):
            BufferResponseModel(
                BufferResponse(base=0.1, scale=0.5, saturation_ports=1.0, noise_sigma=0.3),
                n_ports=0,
            )


class TestCoarseLinkPopulation:
    def test_weak_correlation(self, rng):
        """The Fig 1 headline: r ~ 0.1 between utilization and drops."""
        util, drops = CoarseLinkPopulation().sample_links(50_000, rng)
        corr = np.corrcoef(util, drops)[0, 1]
        assert 0.0 < corr < 0.25

    def test_ranges(self, rng):
        util, drops = CoarseLinkPopulation().sample_links(10_000, rng)
        assert util.min() > 0.0 and util.max() <= 0.85
        assert drops.min() >= 0.0 and drops.max() <= 0.05

    def test_zero_drop_links_exist(self, rng):
        _, drops = CoarseLinkPopulation().sample_links(10_000, rng)
        assert 0.3 < (drops == 0).mean() < 0.6

    def test_coupling_knob_raises_correlation(self, rng):
        strong = CoarseLinkPopulation(utilization_coupling=2.5, zero_drop_fraction=0.0)
        weak = CoarseLinkPopulation(utilization_coupling=0.0, zero_drop_fraction=0.0)
        util_s, drops_s = strong.sample_links(50_000, np.random.default_rng(1))
        util_w, drops_w = weak.sample_links(50_000, np.random.default_rng(1))
        corr_s = np.corrcoef(util_s, drops_s)[0, 1]
        corr_w = np.corrcoef(util_w, drops_w)[0, 1]
        assert corr_s > corr_w + 0.1

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            CoarseLinkPopulation().sample_links(0, rng)
        with pytest.raises(ConfigError):
            CoarseLinkPopulation(zero_drop_fraction=1.5)


class TestDropEpisodes:
    def test_episodic_structure(self, rng):
        """Most minutes are drop-free; active minutes carry big counts
        (the Fig 2 signature)."""
        series = DropEpisodeModel(episodes_per_hour=4.0).sample_minutes(720, rng)
        assert (series == 0).mean() > 0.8
        active = series[series > 0]
        assert len(active) > 5
        assert np.median(active) > 100

    def test_rate_scales_activity(self, rng):
        low = DropEpisodeModel(episodes_per_hour=1.0).sample_minutes(
            5000, np.random.default_rng(2)
        )
        high = DropEpisodeModel(episodes_per_hour=10.0).sample_minutes(
            5000, np.random.default_rng(2)
        )
        assert (high > 0).mean() > (low > 0).mean() * 3

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            DropEpisodeModel(episodes_per_hour=0.0)
        with pytest.raises(ConfigError):
            DropEpisodeModel(episodes_per_hour=1.0).sample_minutes(0, rng)
