"""On/off generator tests."""

import numpy as np
import pytest

from repro.analysis import extract_bursts, fit_transition_matrix
from repro.errors import ConfigError
from repro.synth.calibration import APP_PROFILES
from repro.synth.onoff import OnOffGenerator, correlated_masks, correlated_utilization


@pytest.fixture
def web_profile():
    return APP_PROFILES["web"].downlink


class TestGenerate:
    def test_exact_length(self, web_profile, rng):
        series = OnOffGenerator(web_profile).generate(10_000, rng)
        assert len(series) == 10_000
        assert series.utilization.shape == series.hot.shape

    def test_hot_mask_consistent_with_utilization(self, web_profile, rng):
        series = OnOffGenerator(web_profile).generate(50_000, rng)
        assert np.all(series.utilization[series.hot] > 0.5)
        assert np.all(series.utilization[~series.hot] < 0.5)

    def test_hot_fraction_matches_profile(self, rng):
        profile = APP_PROFILES["hadoop"].downlink
        series = OnOffGenerator(profile).generate(2_000_000, rng)
        assert series.hot.mean() == pytest.approx(profile.hot_fraction, rel=0.15)

    def test_transition_matrix_matches_analytics(self, rng):
        profile = APP_PROFILES["hadoop"].downlink
        series = OnOffGenerator(profile).generate(2_000_000, rng)
        matrix = fit_transition_matrix(series.hot)
        assert matrix.p11 == pytest.approx(profile.duration.implied_p11, abs=0.02)
        assert matrix.p01 == pytest.approx(profile.gap.implied_p01, rel=0.2)

    def test_burst_durations_match_duration_model(self, rng):
        profile = APP_PROFILES["web"].downlink
        series = OnOffGenerator(profile).generate(2_000_000, rng)
        stats = extract_bursts(series.utilization, 25_000)
        assert stats.single_period_fraction == pytest.approx(
            profile.duration.head[0], abs=0.03
        )

    def test_zero_ticks_rejected(self, web_profile, rng):
        with pytest.raises(ConfigError):
            OnOffGenerator(web_profile).generate(0, rng)

    def test_deterministic_per_seed(self, web_profile):
        a = OnOffGenerator(web_profile).generate(5000, np.random.default_rng(9))
        b = OnOffGenerator(web_profile).generate(5000, np.random.default_rng(9))
        assert np.array_equal(a.utilization, b.utilization)


class TestMaskRuns:
    def test_runs_within_bounds(self, web_profile, rng):
        starts, lengths = OnOffGenerator(web_profile).generate_mask_runs(10_000, rng)
        assert np.all(starts >= 0)
        assert np.all(starts + lengths <= 10_000)
        assert np.all(lengths >= 1)


class TestCorrelatedUtilization:
    def test_shapes(self, rng):
        profile = APP_PROFILES["cache"].downlink
        util, hot = correlated_utilization(4, 20_000, profile, 0.9, 0.9, rng)
        assert util.shape == (20_000, 4)
        assert hot.shape == (20_000, 4)
        assert np.all(util[hot] > 0.5)
        assert np.all(util[~hot] < 0.5)

    def test_members_correlate(self, rng):
        profile = APP_PROFILES["cache"].downlink
        util, _hot = correlated_utilization(4, 400_000, profile, 0.9, 0.9, rng)
        corr = np.corrcoef(util, rowvar=False)
        off_diag = corr[~np.eye(4, dtype=bool)]
        assert off_diag.mean() > 0.4

    def test_zero_sharing_uncorrelated(self, rng):
        profile = APP_PROFILES["cache"].downlink
        util, _hot = correlated_utilization(4, 400_000, profile, 0.0, 0.0, rng)
        corr = np.corrcoef(util, rowvar=False)
        off_diag = corr[~np.eye(4, dtype=bool)]
        assert abs(off_diag.mean()) < 0.05

    def test_single_member_keeps_full_rate(self, rng):
        profile = APP_PROFILES["cache"].downlink
        util, hot = correlated_utilization(1, 500_000, profile, 0.9, 0.9, rng)
        assert hot.mean() == pytest.approx(profile.hot_fraction, rel=0.25)

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            correlated_utilization(0, 100, APP_PROFILES["web"].downlink, 0.5, 0.5, rng)


class TestCorrelatedMasks:
    def test_mask_only_api(self, rng):
        profile = APP_PROFILES["cache"].downlink
        masks = correlated_masks(4, 50_000, profile, 0.9, 0.9, rng)
        assert masks.shape == (50_000, 4)
        assert masks.dtype == bool
        assert masks.any()
