"""Calibration model tests: every profile must match its paper targets."""

import numpy as np
import pytest

from repro.data.published import PAPER
from repro.errors import ConfigError
from repro.synth.calibration import (
    APP_PROFILES,
    ColdUtilModel,
    DurationModel,
    GapModel,
    IntensityModel,
    diurnal_activity,
)


class TestDurationModel:
    def test_mean_matches_samples(self, rng):
        model = DurationModel(head=(0.6, 0.2), tail_decay=0.5)
        samples = model.sample(rng, 200_000)
        assert samples.mean() == pytest.approx(model.mean(), rel=0.02)
        assert samples.min() >= 1

    def test_head_pmf_respected(self, rng):
        model = DurationModel(head=(0.7, 0.2), tail_decay=0.5)
        samples = model.sample(rng, 100_000)
        assert (samples == 1).mean() == pytest.approx(0.7, abs=0.01)
        assert (samples == 2).mean() == pytest.approx(0.2, abs=0.01)

    def test_implied_p11(self):
        model = DurationModel(head=(0.345,), tail_decay=0.655)
        assert model.implied_p11 == pytest.approx(0.655, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DurationModel(head=(), tail_decay=0.5)
        with pytest.raises(ConfigError):
            DurationModel(head=(0.7, 0.5), tail_decay=0.5)  # mass > 1
        with pytest.raises(ConfigError):
            DurationModel(head=(0.5,), tail_decay=1.0)


class TestGapModel:
    def test_mean_matches_samples(self, rng):
        model = GapModel(
            p_small=0.4, small_median=2.0, small_sigma=0.8,
            large_median=50.0, large_sigma=1.5,
        )
        samples = model.sample(rng, 300_000)
        assert samples.mean() == pytest.approx(model.mean(), rel=0.05)
        assert samples.min() >= 1

    def test_heavy_tail(self, rng):
        model = APP_PROFILES["web"].downlink.gap
        samples = model.sample(rng, 200_000)
        # tails orders of magnitude above the median (Fig 4)
        assert np.percentile(samples, 99.5) > 50 * np.median(samples)

    def test_with_activity_scales_mean(self):
        model = APP_PROFILES["cache"].downlink.gap
        busier = model.with_activity(2.0)
        assert busier.mean() < model.mean()
        assert busier.implied_p01 > model.implied_p01

    def test_activity_validation(self):
        with pytest.raises(ConfigError):
            APP_PROFILES["web"].downlink.gap.with_activity(0.0)


class TestIntensityCold:
    def test_intensity_above_threshold(self, rng):
        for profile in APP_PROFILES.values():
            samples = profile.downlink.intensity.sample(rng, 10_000)
            assert samples.min() >= 0.5
            assert samples.max() <= 1.0

    def test_cold_below_threshold(self, rng):
        for profile in APP_PROFILES.values():
            samples = profile.downlink.cold.sample(rng, 10_000)
            assert samples.max() < 0.5
            assert samples.min() >= 0.0

    def test_intensity_validation(self):
        with pytest.raises(ConfigError):
            IntensityModel(components=((1.0, 0.3, 0.8),))  # low below threshold

    def test_cold_validation(self):
        with pytest.raises(ConfigError):
            ColdUtilModel(median=0.0, sigma=1.0)


class TestPaperTargets:
    """The generator's analytic statistics must match Table 2."""

    @pytest.mark.parametrize("app", ["web", "cache", "hadoop"])
    def test_p11_close_to_table2(self, app):
        profile = APP_PROFILES[app]
        paper = PAPER.table2[app]
        assert profile.downlink.duration.implied_p11 == pytest.approx(
            paper.p11, abs=0.06
        )

    def test_hadoop_p11_exact(self):
        assert APP_PROFILES["hadoop"].downlink.duration.implied_p11 == pytest.approx(
            PAPER.table2["hadoop"].p11, abs=1e-9
        )

    @pytest.mark.parametrize("app", ["web", "cache", "hadoop"])
    def test_hot_fractions_ordered(self, app):
        """Hadoop spends the most time hot (Sec 5.4)."""
        hot = {a: APP_PROFILES[a].downlink.hot_fraction for a in APP_PROFILES}
        assert hot["hadoop"] > hot["cache"] > hot["web"]

    def test_likelihood_ratios_ordered(self):
        """r_web > r_cache > r_hadoop (Eqs. 1-3)."""
        ratios = {}
        for app, profile in APP_PROFILES.items():
            p11 = profile.downlink.duration.implied_p11
            p01 = profile.downlink.gap.implied_p01
            ratios[app] = p11 / p01
        assert ratios["web"] > ratios["cache"] > ratios["hadoop"] > 5


class TestDiurnal:
    def test_mean_near_one(self):
        values = [diurnal_activity(h) for h in range(24)]
        assert np.mean(values) == pytest.approx(1.0, abs=1e-9)
        assert max(values) > 1.3 and min(values) < 0.7

    def test_peak_hour(self):
        values = {h: diurnal_activity(h) for h in range(24)}
        assert max(values, key=values.get) == 15

    def test_validation(self):
        with pytest.raises(ConfigError):
            diurnal_activity(3, amplitude=1.5)
