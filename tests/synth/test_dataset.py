"""Synthetic campaign source tests."""

import numpy as np
import pytest

from repro.core.campaign import CampaignWindow
from repro.errors import ConfigError
from repro.synth.dataset import (
    SyntheticCampaignSource,
    default_plan,
    run_campaign,
    synthesize_app_windows,
)
from repro.units import seconds


def window(rack_type="web", port="down0", hour=0, duration=seconds(1)):
    return CampaignWindow(
        rack_id=f"{rack_type}-rack0",
        rack_type=rack_type,
        port_name=port,
        hour=hour,
        start_ns=hour * seconds(3600),
        duration_ns=duration,
    )


class TestSource:
    def test_produces_named_trace(self):
        source = SyntheticCampaignSource(seed=1)
        traces = source.sample_window(window())
        assert set(traces) == {"down0.tx_bytes"}
        trace = traces["down0.tx_bytes"]
        # n_ticks intervals -> n_ticks + 1 cumulative samples
        assert len(trace) == seconds(1) // 25_000 + 1
        assert trace.timestamps_ns[0] == 0

    def test_deterministic_per_window(self):
        source_a = SyntheticCampaignSource(seed=1)
        source_b = SyntheticCampaignSource(seed=1)
        trace_a = source_a.sample_window(window())["down0.tx_bytes"]
        trace_b = source_b.sample_window(window())["down0.tx_bytes"]
        assert np.array_equal(trace_a.values, trace_b.values)

    def test_different_hours_differ(self):
        source = SyntheticCampaignSource(seed=1)
        a = source.sample_window(window(hour=0))["down0.tx_bytes"]
        b = source.sample_window(window(hour=1))["down0.tx_bytes"]
        assert not np.array_equal(a.values, b.values)

    def test_uplink_port_uses_uplink_profile(self):
        source = SyntheticCampaignSource(seed=1)
        down = source.sample_window(window(rack_type="cache", port="down0"))
        up = source.sample_window(window(rack_type="cache", port="up0", hour=2))
        hot_down = (down["down0.tx_bytes"].utilization() > 0.5).mean()
        hot_up = (up["up0.tx_bytes"].utilization() > 0.5).mean()
        # cache uplinks are much hotter than downlinks (Fig 9)
        assert hot_up > hot_down * 2

    def test_unknown_rack_type_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticCampaignSource().sample_window(window(rack_type="db"))


class TestDefaultPlan:
    def test_paper_shape(self):
        plan = default_plan(racks_per_app=10, hours=24)
        assert len(plan.windows) == 720
        assert len(plan.windows_for_type("web")) == 240

    def test_port_mix_mostly_downlinks(self):
        plan = default_plan(racks_per_app=30, hours=1, seed=3)
        downs = sum(1 for w in plan.windows if w.port_name.startswith("down"))
        assert downs / len(plan.windows) > 0.6


class TestHelpers:
    def test_synthesize_app_windows(self):
        traces = synthesize_app_windows("hadoop", 3, seconds(0.5), seed=2)
        assert len(traces) == 3
        for trace in traces:
            assert trace.rate_bps > 0

    def test_fixed_port_override(self):
        traces = synthesize_app_windows("web", 2, seconds(0.5), port="up1")
        assert all(t.name == "up1.tx_bytes" for t in traces)

    def test_zero_windows_rejected(self):
        with pytest.raises(ConfigError):
            synthesize_app_windows("web", 0, seconds(1))

    def test_run_campaign_end_to_end(self):
        plan = default_plan(racks_per_app=1, hours=2, window_duration_ns=seconds(0.5))
        result = run_campaign(plan, seed=1)
        assert len(result.traces) == 6
        for traces in result.traces:
            assert len(traces) == 1
