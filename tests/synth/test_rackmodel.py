"""Rack synthesizer tests."""

import numpy as np
import pytest

from repro.core.samples import ValueKind
from repro.errors import ConfigError
from repro.synth.calibration import APP_PROFILES
from repro.synth.rackmodel import (
    RackSynthesizer,
    _ecmp_weight_segments,
    fill_utilization,
    synthesize_size_histogram,
    utilization_to_byte_trace,
)
from repro.units import gbps, us


class TestByteTraceConversion:
    def test_roundtrip_utilization(self, rng):
        util = rng.random(1000) * 0.9
        trace = utilization_to_byte_trace(util, gbps(10), us(25), name="x")
        recovered = trace.utilization()
        assert len(recovered) == len(util)
        # integer-rounding error is < 1 byte / 31250 per tick
        assert np.abs(recovered - util).max() < 1e-3

    def test_trace_properties(self, rng):
        trace = utilization_to_byte_trace(rng.random(10), gbps(10), us(25), name="p")
        assert trace.kind is ValueKind.CUMULATIVE
        assert trace.rate_bps == gbps(10)
        assert np.all(np.diff(trace.values) >= 0)
        assert len(trace) == 11  # n + 1 samples

    def test_start_offset(self, rng):
        trace = utilization_to_byte_trace(
            rng.random(5), gbps(10), us(25), start_ns=1_000_000
        )
        assert trace.timestamps_ns[0] == 1_000_000


class TestFillUtilization:
    def test_respects_mask(self, rng):
        profile = APP_PROFILES["web"].downlink
        mask = np.zeros(1000, dtype=bool)
        mask[100:110] = True
        mask[500:501] = True
        util = fill_utilization(mask, profile, rng)
        assert np.all(util[mask] > 0.5)
        assert np.all(util[~mask] < 0.5)

    def test_one_intensity_per_burst(self, rng):
        profile = APP_PROFILES["hadoop"].downlink
        mask = np.zeros(100, dtype=bool)
        mask[10:30] = True
        util = fill_utilization(mask, profile, rng)
        # within a burst, variation is only tick noise (std ~0.03)
        assert util[10:30].std() < 0.1


class TestEcmpSegments:
    def test_shares_sum_to_one(self, rng):
        shares = _ecmp_weight_segments(5000, 4, 8, 300.0, 1.0, rng)
        assert shares.shape == (5000, 4)
        assert np.allclose(shares.sum(axis=1), 1.0)

    def test_fewer_flows_more_imbalance(self, rng):
        few = _ecmp_weight_segments(20_000, 4, 2, 500.0, 1.0, np.random.default_rng(1))
        many = _ecmp_weight_segments(20_000, 4, 64, 500.0, 1.0, np.random.default_rng(1))
        assert few.max(axis=1).mean() > many.max(axis=1).mean()

    def test_churn_changes_assignment(self, rng):
        shares = _ecmp_weight_segments(50_000, 4, 3, 100.0, 1.0, rng)
        # with lifetime 100 ticks, shares at t=0 and t=40000 should differ
        assert not np.allclose(shares[0], shares[-1])


class TestSynthesizeWindow:
    @pytest.fixture(scope="class")
    def window(self):
        return RackSynthesizer("cache").synthesize(50_000, np.random.default_rng(3))

    def test_shapes(self, window):
        assert window.downlink_util.shape == (50_000, 16)
        assert window.uplink_egress_util.shape == (50_000, 4)
        assert window.uplink_ingress_util.shape == (50_000, 4)
        assert window.n_ticks == 50_000
        assert window.n_downlinks == 16
        assert window.n_uplinks == 4

    def test_utilization_in_range(self, window):
        for util in (window.downlink_util, window.uplink_egress_util):
            assert util.min() >= 0.0
            assert util.max() <= 1.0

    def test_all_egress_concatenation(self, window):
        all_util = window.all_egress_util()
        assert all_util.shape == (50_000, 20)
        assert np.array_equal(all_util[:, :16], window.downlink_util)

    def test_traces(self, window):
        trace = window.downlink_byte_trace(3)
        assert trace.name == "down3.tx_bytes"
        assert len(trace) == 50_001
        up = window.uplink_byte_trace(0, "ingress")
        assert up.name == "up0.rx_bytes"
        with pytest.raises(ConfigError):
            window.uplink_byte_trace(0, "sideways")

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            RackSynthesizer("database")

    def test_activity_scales_hotness(self):
        syn = RackSynthesizer("hadoop")
        quiet = syn.synthesize(100_000, np.random.default_rng(1), activity=0.05)
        busy = syn.synthesize(100_000, np.random.default_rng(1), activity=2.0)
        assert (quiet.downlink_util > 0.5).mean() < (busy.downlink_util > 0.5).mean() / 3


class TestSizeHistogram:
    def test_consistent_with_bytes(self, rng):
        profile = APP_PROFILES["hadoop"]
        util = rng.random(2000)
        hot = util > 0.5
        trace = synthesize_size_histogram(
            util, hot, profile, gbps(10), us(25), rng, name="h"
        )
        assert trace.values.shape == (2001, 6)
        deltas = trace.deltas()
        assert np.all(deltas >= 0)
        # hadoop: MTU bin dominates
        totals = deltas.sum(axis=0)
        assert totals[5] / totals.sum() > 0.7

    def test_zero_utilization_zero_packets(self, rng):
        profile = APP_PROFILES["web"]
        util = np.zeros(100)
        hot = np.zeros(100, dtype=bool)
        trace = synthesize_size_histogram(util, hot, profile, gbps(10), us(25), rng)
        assert trace.values[-1].sum() == 0
