"""Determinism lint: no wall clocks inside the simulation packages.

The telemetry contract (DESIGN.md §9) is that telemetry may *read* wall
clocks but never feeds simulation state.  The cheapest way to hold that
line structurally is to ban wall-clock calls outright under
``src/repro/netsim/`` and ``src/repro/synth/`` — simulated time there
comes from the event engine's clock, and anything wall-clock-derived
would make traces depend on host speed.  Timing instrumentation for
these layers lives one level up, on the backend boundary
(``repro.backends.base.timed_window``), which this lint deliberately
does not cover.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
LINTED_PACKAGES = ("netsim", "synth")

#: ``time.<attr>()`` calls that read a host clock.
BANNED_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
#: ``datetime.<attr>()`` / ``date.<attr>()`` constructors that read one.
BANNED_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _violations_in_source(source: str, filename: str) -> list[str]:
    found: list[str] = []
    tree = ast.parse(source, filename=filename)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED_TIME_ATTRS:
                        found.append(
                            f"{filename}:{node.lineno}: "
                            f"from time import {alias.name}"
                        )
            continue
        if not isinstance(node, ast.Attribute):
            continue
        value = node.value
        if not isinstance(value, ast.Name):
            continue
        if value.id == "time" and node.attr in BANNED_TIME_ATTRS:
            found.append(f"{filename}:{node.lineno}: time.{node.attr}")
        if value.id in ("datetime", "date") and node.attr in BANNED_DATETIME_ATTRS:
            found.append(f"{filename}:{node.lineno}: {value.id}.{node.attr}")
    return found


def _violations_in_tree() -> list[str]:
    found: list[str] = []
    for package in LINTED_PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            relative = str(path.relative_to(SRC.parent.parent))
            found.extend(_violations_in_source(path.read_text(), relative))
    return found


def test_no_wall_clock_in_simulation_packages():
    violations = _violations_in_tree()
    assert not violations, (
        "wall-clock calls are banned under src/repro/netsim and "
        "src/repro/synth (simulated time comes from the engine clock; "
        "telemetry timing belongs on the backend boundary):\n"
        + "\n".join(violations)
    )


@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nx = time.time()",
        "import time\nx = time.monotonic_ns()",
        "from time import monotonic",
        "from datetime import datetime\nx = datetime.now()",
        "import datetime as dt\n\ndef f(datetime):\n    return datetime.utcnow()",
    ],
)
def test_lint_catches_known_bad_patterns(snippet):
    assert _violations_in_source(snippet, "fake.py")


@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nx = time.sleep",  # not a clock read
        "clock.now",  # the engine's own clock is fine
        "from time import sleep",
    ],
)
def test_lint_allows_benign_patterns(snippet):
    assert not _violations_in_source(snippet, "fake.py")
