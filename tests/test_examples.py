"""Smoke tests: every example script must run to completion.

Each example's ``main`` is imported and executed (fast configurations
are already their defaults except quickstart/full_campaign, which are
exercised at reduced scale through their underlying APIs elsewhere).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None, capsys=None) -> str:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


def test_incast_microburst(capsys):
    out = run_example("incast_microburst.py", capsys=capsys)
    assert "high-resolution view" in out
    assert "SNMP-style view" in out
    assert "drops" in out


def test_adaptive_monitoring(capsys):
    out = run_example("adaptive_monitoring.py", capsys=capsys)
    assert "duty cycle" in out
    assert "streaming on-switch statistics" in out


def test_hadoop_shuffle(capsys):
    out = run_example("hadoop_shuffle.py", capsys=capsys)
    assert "full-MTU" in out
    assert "normalized MAD" in out


def test_dctcp_incast(capsys):
    out = run_example("dctcp_incast.py", capsys=capsys)
    assert "=== reno ===" in out
    assert "=== dctcp ===" in out


def test_pod_web_cache(capsys):
    out = run_example("pod_web_cache.py", capsys=capsys)
    assert "pages served" in out
    assert "fan-in toward servers" in out


def test_chaos_campaign(capsys):
    out = run_example("chaos_campaign.py", capsys=capsys)
    assert "traces byte-identical to uninterrupted run: True" in out
    assert "interrupted after" in out


@pytest.mark.slow
def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys=capsys)
    assert "bursts found" in out


@pytest.mark.slow
def test_cache_scatter_gather(capsys):
    out = run_example("cache_scatter_gather.py", capsys=capsys)
    assert "Fig 8 effect" in out
