"""Resilient campaign runner tests: retry, timeout, partial results,
checkpoint/resume."""

import time

import numpy as np
import pytest

from repro.core.campaign import (
    CampaignPlan,
    CampaignWindow,
    CampaignResult,
    MeasurementCampaign,
    RetryPolicy,
    WindowStatus,
)
from repro.core.samples import CounterTrace, ValueKind
from repro.errors import AnalysisError, CollectionError, ConfigError
from repro.units import us


def make_plan(n_windows=6):
    windows = tuple(
        CampaignWindow(
            rack_id=f"web-rack{i}",
            rack_type="web" if i % 2 == 0 else "cache",
            port_name="down0",
            hour=i,
            start_ns=i * us(25) * 100,
            duration_ns=us(25) * 100,
        )
        for i in range(n_windows)
    )
    return CampaignPlan(windows=windows)


def window_trace(window):
    values = (np.arange(16, dtype=np.int64) + window.hour) * 1000
    trace = CounterTrace.regular(
        us(25),
        np.cumsum(values).astype(np.int64),
        ValueKind.CUMULATIVE,
        name="down0.tx_bytes",
        rate_bps=10e9,
        start_ns=window.start_ns,
    )
    return {trace.name: trace}


class FlakySource:
    """Fails the first ``fail_attempts[hour]`` attempts of each window."""

    def __init__(self, fail_attempts=None):
        self.fail_attempts = fail_attempts or {}
        self.attempts = {}
        self.calls = 0

    def sample_window(self, window):
        self.calls += 1
        attempt = self.attempts.get(window.hour, 0)
        self.attempts[window.hour] = attempt + 1
        if attempt < self.fail_attempts.get(window.hour, 0):
            raise CollectionError(f"flake on hour {window.hour} attempt {attempt}")
        return window_trace(window)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(window_timeout_s=0)

    def test_transient_failure_recovered_and_marked_degraded(self):
        plan = make_plan()
        source = FlakySource(fail_attempts={2: 1})
        result = MeasurementCampaign(
            plan, source, retry=RetryPolicy(max_attempts=3, backoff_s=0)
        ).run()
        assert result.outcomes[2].status is WindowStatus.DEGRADED
        assert result.outcomes[2].attempts == 2
        assert all(
            o.status is WindowStatus.OK for o in result.outcomes if o.index != 2
        )

    def test_persistent_failure_yields_partial_result(self):
        plan = make_plan()
        source = FlakySource(fail_attempts={1: 99})
        result = MeasurementCampaign(
            plan, source, retry=RetryPolicy(max_attempts=3, backoff_s=0)
        ).run()
        assert result.outcomes[1].status is WindowStatus.FAILED
        assert result.traces[1] == {}
        assert "flake on hour 1" in result.outcomes[1].error
        assert len(result.traces) == len(plan.windows)
        assert result.n_failed == 1
        assert result.completion_fraction == pytest.approx(5 / 6)
        # completed() skips the failed window but keeps the rest.
        assert len(list(result.completed())) == 5
        assert len(list(result.completed("web"))) == 3

    def test_backoff_schedule_uses_injected_sleep(self):
        plan = make_plan(n_windows=1)
        naps = []
        MeasurementCampaign(
            make_plan(1),
            FlakySource(fail_attempts={0: 99}),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.1, backoff_factor=2.0),
            sleep=naps.append,
        ).run()
        assert naps == pytest.approx([0.1, 0.2, 0.4])
        assert len(plan.windows) == 1

    def test_no_retry_policy_keeps_fail_fast(self):
        source = FlakySource(fail_attempts={0: 1})
        with pytest.raises(CollectionError):
            MeasurementCampaign(make_plan(1), source).run()
        assert source.calls == 1

    def test_non_repro_errors_propagate_even_with_retry(self):
        class Broken:
            def sample_window(self, window):
                raise RuntimeError("programming error")

        with pytest.raises(RuntimeError):
            MeasurementCampaign(
                make_plan(1), Broken(), retry=RetryPolicy(backoff_s=0)
            ).run()


class TestTimeout:
    def test_hung_window_times_out_and_fails(self):
        class Hung:
            def sample_window(self, window):
                time.sleep(0.5)
                return window_trace(window)

        result = MeasurementCampaign(
            make_plan(1),
            Hung(),
            retry=RetryPolicy(max_attempts=2, backoff_s=0, window_timeout_s=0.02),
        ).run()
        assert result.outcomes[0].status is WindowStatus.FAILED
        assert "timed out" in result.outcomes[0].error

    def test_fast_window_unaffected_by_timeout(self):
        result = MeasurementCampaign(
            make_plan(2),
            FlakySource(),
            retry=RetryPolicy(window_timeout_s=5.0),
        ).run()
        assert all(o.status is WindowStatus.OK for o in result.outcomes)


class TestResultAlignment:
    def test_misaligned_traces_rejected_not_zip_truncated(self):
        plan = make_plan(4)
        short = CampaignResult(plan=plan, traces=[{}, {}])
        with pytest.raises(AnalysisError):
            short.by_type("web")
        with pytest.raises(AnalysisError):
            list(short.iter_windows())

    def test_handmade_result_status_counts(self):
        plan = make_plan(3)
        result = CampaignResult(
            plan=plan, traces=[window_trace(plan.windows[0]), {}, {}]
        )
        counts = result.status_counts()
        assert counts[WindowStatus.OK.value] == 1
        assert counts[WindowStatus.FAILED.value] == 2


class TestCheckpointResume:
    def run_interrupted(self, plan, tmp_path, stop_after):
        class Interrupting:
            def __init__(self):
                self.inner = FlakySource()

            def sample_window(self, window):
                if self.inner.calls >= stop_after:
                    raise RuntimeError("simulated crash")
                return self.inner.sample_window(window)

        campaign = MeasurementCampaign(
            plan,
            Interrupting(),
            retry=RetryPolicy(backoff_s=0),
            checkpoint_dir=tmp_path / "ckpt",
        )
        with pytest.raises(RuntimeError):
            campaign.run()

    def test_resume_skips_completed_windows_and_matches_clean_run(self, tmp_path):
        plan = make_plan(6)
        clean = MeasurementCampaign(plan, FlakySource()).run()
        self.run_interrupted(plan, tmp_path, stop_after=3)
        source = FlakySource()
        resumed = MeasurementCampaign(
            plan,
            source,
            retry=RetryPolicy(backoff_s=0),
            checkpoint_dir=tmp_path / "ckpt",
        ).run(resume=True)
        # Only the remaining windows were collected.
        assert source.calls == 3
        assert [o.status for o in resumed.outcomes] == [WindowStatus.OK] * 6
        # Byte-identical traces whether or not the run was interrupted.
        for clean_traces, resumed_traces in zip(clean.traces, resumed.traces):
            assert set(clean_traces) == set(resumed_traces)
            for name in clean_traces:
                assert np.array_equal(
                    clean_traces[name].timestamps_ns,
                    resumed_traces[name].timestamps_ns,
                )
                assert np.array_equal(
                    clean_traces[name].values, resumed_traces[name].values
                )

    def test_resume_false_recollects_everything(self, tmp_path):
        plan = make_plan(3)
        ckpt = tmp_path / "ckpt"
        MeasurementCampaign(plan, FlakySource(), checkpoint_dir=ckpt).run()
        source = FlakySource()
        MeasurementCampaign(plan, source, checkpoint_dir=ckpt).run(resume=False)
        assert source.calls == 3

    def test_failed_windows_checkpointed_and_not_retried_on_resume(self, tmp_path):
        plan = make_plan(3)
        ckpt = tmp_path / "ckpt"
        MeasurementCampaign(
            plan,
            FlakySource(fail_attempts={1: 99}),
            retry=RetryPolicy(max_attempts=2, backoff_s=0),
            checkpoint_dir=ckpt,
        ).run()
        source = FlakySource()
        resumed = MeasurementCampaign(
            plan, source, retry=RetryPolicy(backoff_s=0), checkpoint_dir=ckpt
        ).run(resume=True)
        assert source.calls == 0
        assert resumed.outcomes[1].status is WindowStatus.FAILED
        assert resumed.traces[1] == {}

    def test_checkpoint_for_different_plan_rejected(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        MeasurementCampaign(make_plan(3), FlakySource(), checkpoint_dir=ckpt).run()
        other = MeasurementCampaign(make_plan(4), FlakySource(), checkpoint_dir=ckpt)
        with pytest.raises(CollectionError):
            other.run(resume=True)

    def test_damaged_checkpoint_trace_recollected(self, tmp_path):
        plan = make_plan(3)
        ckpt = tmp_path / "ckpt"
        MeasurementCampaign(plan, FlakySource(), checkpoint_dir=ckpt).run()
        archive = ckpt / "window_00001.npz"
        archive.write_bytes(archive.read_bytes()[: archive.stat().st_size // 2])
        source = FlakySource()
        resumed = MeasurementCampaign(
            plan, source, retry=RetryPolicy(backoff_s=0), checkpoint_dir=ckpt
        ).run(resume=True)
        assert source.calls == 1  # only the damaged window
        assert resumed.traces[1]  # and its data is back
