"""Streaming on-switch analysis tests."""

import numpy as np
import pytest

from repro.analysis import extract_bursts, fit_transition_matrix
from repro.core.streaming import ReservoirSampler, StreamingBurstStats
from repro.errors import AnalysisError, ConfigError
from repro.synth import APP_PROFILES, OnOffGenerator


class TestStreamingBurstStats:
    def test_matches_batch_analysis(self, rng):
        """Streaming counts must agree exactly with the offline analysis."""
        series = OnOffGenerator(APP_PROFILES["cache"].downlink).generate(200_000, rng)
        stream = StreamingBurstStats(interval_ns=25_000)
        stream.update_many(series.utilization)
        stream.finalize()
        batch = extract_bursts(series.utilization, 25_000)
        matrix = fit_transition_matrix(series.utilization > 0.5)
        assert stream.n_bursts == batch.n_bursts
        assert stream.hot_fraction == pytest.approx(batch.hot_fraction)
        streaming_matrix = stream.transition_matrix()
        assert streaming_matrix.p11 == pytest.approx(matrix.p11)
        assert streaming_matrix.p01 == pytest.approx(matrix.p01)

    def test_quantile_within_one_octave(self, rng):
        series = OnOffGenerator(APP_PROFILES["hadoop"].downlink).generate(500_000, rng)
        stream = StreamingBurstStats(interval_ns=25_000)
        stream.update_many(series.utilization)
        stream.finalize()
        batch = extract_bursts(series.utilization, 25_000)
        exact_p90 = batch.p90_duration_ns
        approx_p90 = stream.duration_quantile_ns(0.9)
        # log2 histogram: at most one octave of error upward
        assert exact_p90 <= approx_p90 <= 2.2 * max(exact_p90, 25_000)

    def test_open_burst_needs_finalize(self):
        stream = StreamingBurstStats(interval_ns=25_000)
        for value in (0.1, 0.9, 0.9):
            stream.update(value)
        assert stream.n_bursts == 0  # still open
        stream.finalize()
        assert stream.n_bursts == 1

    def test_memory_is_constant(self, rng):
        stream = StreamingBurstStats(interval_ns=25_000)
        before = stream.memory_bytes()
        stream.update_many(rng.random(50_000))
        assert stream.memory_bytes() == before
        assert before < 1024  # a few hundred bytes, as promised

    def test_quantile_validation(self):
        stream = StreamingBurstStats(interval_ns=25_000)
        with pytest.raises(AnalysisError):
            stream.duration_quantile_ns(0.0)
        with pytest.raises(AnalysisError):
            stream.duration_quantile_ns(0.5)  # no bursts yet

    def test_duration_bucketing(self):
        stream = StreamingBurstStats(interval_ns=25_000)
        # bursts of length 1, 2, 4: buckets 0, 1, 2
        for length in (1, 2, 4):
            for _ in range(length):
                stream.update(0.9)
            stream.update(0.1)
        assert stream.duration_buckets[0] == 1
        assert stream.duration_buckets[1] == 1
        assert stream.duration_buckets[2] == 1


class TestReservoir:
    def test_fills_then_subsamples(self, rng):
        reservoir = ReservoirSampler(capacity=100, rng=rng)
        reservoir.offer_many(np.arange(5000, dtype=float))
        assert len(reservoir.sample) == 100
        assert reservoir.n_seen == 5000

    def test_approximately_uniform(self, rng):
        reservoir = ReservoirSampler(capacity=2000, rng=rng)
        reservoir.offer_many(np.arange(20_000, dtype=float))
        # mean of a uniform subsample of 0..19999 ~ 10000
        assert np.mean(reservoir.sample) == pytest.approx(10_000, rel=0.1)

    def test_small_stream_kept_fully(self, rng):
        reservoir = ReservoirSampler(capacity=10, rng=rng)
        reservoir.offer_many(np.arange(5, dtype=float))
        assert sorted(reservoir.sample) == [0, 1, 2, 3, 4]

    def test_capacity_validation(self, rng):
        with pytest.raises(ConfigError):
            ReservoirSampler(capacity=0, rng=rng)
