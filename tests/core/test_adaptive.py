"""Adaptive sampler tests."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveConfig, AdaptiveSampler
from repro.core.counters import CounterBinding, CounterKind, CounterSpec
from repro.errors import ConfigError, SamplingError
from repro.netsim import Simulator
from repro.units import gbps, ms, us


class FakeCounter:
    """A byte counter scripted to be idle, then bursty, then idle."""

    def __init__(self, sim, rate_bps=gbps(10)):
        self.sim = sim
        self.rate_bps = rate_bps
        self.bursts: list[tuple[int, int]] = []  # (start_ns, end_ns)

    def add_burst(self, start_ns, end_ns):
        self.bursts.append((start_ns, end_ns))

    def read(self) -> int:
        """Cumulative bytes: line rate inside bursts, 1 % outside."""
        total = 0.0
        now = self.sim.now
        cursor = 0
        for start, end in sorted(self.bursts):
            idle = max(0, min(now, start) - cursor)
            total += 0.01 * self.rate_bps * idle / 8e9
            if now > start:
                hot = min(now, end) - start
                total += self.rate_bps * hot / 8e9
            cursor = max(cursor, min(now, end))
        total += 0.01 * self.rate_bps * max(0, now - cursor) / 8e9
        return int(total)


def make_sampler(sim, counter, **overrides):
    spec = CounterSpec("p.tx_bytes", CounterKind.BYTE, rate_bps=counter.rate_bps)
    binding = CounterBinding(spec=spec, read=counter.read)
    config = AdaptiveConfig(**overrides)
    return AdaptiveSampler(config, [binding], rng=1)


class TestEscalation:
    def test_idle_stays_slow(self):
        sim = Simulator(seed=1)
        counter = FakeCounter(sim)
        sampler = make_sampler(sim, counter)
        _report, stats = sampler.run_in_sim(sim, ms(10))
        assert stats.escalations == 0
        assert stats.fast_polls == 0
        assert stats.slow_polls > 30

    def test_burst_triggers_fast_polling(self):
        sim = Simulator(seed=1)
        counter = FakeCounter(sim)
        counter.add_burst(ms(2), ms(4))
        sampler = make_sampler(sim, counter)
        _report, stats = sampler.run_in_sim(sim, ms(10))
        assert stats.escalations >= 1
        assert stats.fast_polls > 20

    def test_de_escalates_after_hold(self):
        sim = Simulator(seed=1)
        counter = FakeCounter(sim)
        counter.add_burst(ms(1), ms(2))
        sampler = make_sampler(sim, counter, hold_ns=us(200))
        _report, stats = sampler.run_in_sim(sim, ms(20))
        # long idle tail after the burst -> mostly slow polls overall
        assert stats.slow_polls > stats.fast_polls

    def test_duty_cycle_below_always_fast(self):
        sim = Simulator(seed=1)
        counter = FakeCounter(sim)
        counter.add_burst(ms(3), ms(4))
        sampler = make_sampler(sim, counter)
        _report, stats = sampler.run_in_sim(sim, ms(20))
        assert stats.duty_cycle(sampler.config) < 0.5

    def test_hold_expiry_returns_to_slow_cadence(self):
        """Once the burst ends and hold_ns passes without a hot sample,
        the poll cadence must drop back to the slow interval."""
        sim = Simulator(seed=1)
        counter = FakeCounter(sim)
        counter.add_burst(ms(1), ms(2))
        sampler = make_sampler(sim, counter, hold_ns=us(200))
        report, _stats = sampler.run_in_sim(sim, ms(10))
        trace = report.traces["p.tx_bytes"]
        # one slow interval of slack past burst-end + hold for the
        # expiry to be observed at a poll boundary
        settle_ns = ms(2) + us(200) + sampler.config.slow_interval_ns
        tail = trace.timestamps_ns[trace.timestamps_ns > settle_ns]
        gaps = np.diff(tail)
        assert len(gaps) > 10
        # every tail gap is at the slow cadence, none at the fast one
        assert np.min(gaps) > sampler.config.fast_interval_ns * 2
        assert np.median(gaps) == pytest.approx(
            sampler.config.slow_interval_ns, rel=0.25
        )

    def test_burst_interior_captured_at_fast_interval(self):
        sim = Simulator(seed=1)
        counter = FakeCounter(sim)
        counter.add_burst(ms(2), ms(3))
        sampler = make_sampler(sim, counter)
        report, _stats = sampler.run_in_sim(sim, ms(6))
        trace = report.traces["p.tx_bytes"]
        inside = (trace.timestamps_ns > ms(2)) & (trace.timestamps_ns < ms(3))
        gaps = np.diff(trace.timestamps_ns[inside])
        assert len(gaps) > 5
        # interior sampled near the fast interval, not the slow one
        assert np.median(gaps) < us(80)


class TestValidation:
    def test_fast_must_be_faster(self):
        with pytest.raises(ConfigError):
            AdaptiveConfig(fast_interval_ns=us(100), slow_interval_ns=us(50))

    def test_trigger_range(self):
        with pytest.raises(ConfigError):
            AdaptiveConfig(trigger_utilization=1.5)

    def test_hold_covers_fast(self):
        with pytest.raises(ConfigError):
            AdaptiveConfig(hold_ns=us(1))

    def test_primary_needs_rate(self):
        spec = CounterSpec("x", CounterKind.DROP)
        binding = CounterBinding(spec=spec, read=lambda: 0)
        with pytest.raises(SamplingError):
            AdaptiveSampler(AdaptiveConfig(), [binding])

    def test_empty_bindings(self):
        with pytest.raises(SamplingError):
            AdaptiveSampler(AdaptiveConfig(), [])
