"""High-resolution sampler tests (Table 1 behaviour)."""

import numpy as np
import pytest

from repro.core import HighResSampler, SamplerConfig
from repro.core.counters import CounterBinding, CounterKind, CounterSpec
from repro.errors import ConfigError, SamplingError
from repro.netsim import Simulator
from repro.units import ms, seconds, us


def byte_binding(read=lambda: 0, name="p.tx_bytes"):
    spec = CounterSpec(name=name, kind=CounterKind.BYTE, rate_bps=10e9)
    return CounterBinding(spec=spec, read=read)


class TestTimingOnly:
    def test_table1_miss_rates(self):
        """The headline Table 1 reproduction."""
        expectations = {us(1): (0.95, 1.0), us(10): (0.05, 0.18), us(25): (0.003, 0.03)}
        for interval, (low, high) in expectations.items():
            sampler = HighResSampler(
                SamplerConfig(interval_ns=interval), [byte_binding()], rng=7
            )
            stats = sampler.simulate_timing(seconds(1))
            assert low <= stats.miss_rate <= high, f"interval {interval}"

    def test_miss_rate_monotone_in_interval(self):
        rates = []
        for interval in (us(5), us(10), us(20), us(40)):
            sampler = HighResSampler(
                SamplerConfig(interval_ns=interval), [byte_binding()], rng=3
            )
            rates.append(sampler.simulate_timing(seconds(0.5)).miss_rate)
        assert rates == sorted(rates, reverse=True)

    def test_deterministic_for_seed(self):
        def miss(seed):
            sampler = HighResSampler(
                SamplerConfig(interval_ns=us(10)), [byte_binding()], rng=seed
            )
            return sampler.simulate_timing(seconds(0.2)).miss_rate

        assert miss(5) == miss(5)

    def test_duration_too_short_rejected(self):
        sampler = HighResSampler(SamplerConfig(interval_ns=us(25)), [byte_binding()])
        with pytest.raises(SamplingError):
            sampler.simulate_timing(us(10))

    def test_negative_duration_rejected(self):
        sampler = HighResSampler(SamplerConfig(interval_ns=us(25)), [byte_binding()])
        with pytest.raises(ConfigError):
            sampler.simulate_timing(0)

    def test_scheduled_counts_cover_duration(self):
        sampler = HighResSampler(SamplerConfig(interval_ns=us(25)), [byte_binding()], rng=1)
        stats = sampler.simulate_timing(seconds(1))
        assert stats.scheduled == 40_000
        assert stats.taken <= stats.scheduled


class TestLiveMode:
    def test_samples_read_live_counter(self):
        sim = Simulator(seed=1)
        counter = {"value": 0}
        sim.schedule(0, lambda: None)

        def tick():
            counter["value"] += 3125  # bytes per us at 25 Gbps... arbitrary ramp
            sim.schedule(us(1), tick)

        sim.schedule(us(1), tick)
        sampler = HighResSampler(
            SamplerConfig(interval_ns=us(25)),
            [byte_binding(read=lambda: counter["value"])],
            rng=2,
        )
        report = sampler.run_in_sim(sim, ms(5))
        trace = report.traces["p.tx_bytes"]
        assert len(trace) > 150
        # cumulative & monotone
        assert np.all(np.diff(trace.values) >= 0)
        # timestamps strictly increasing, close to 25 us apart typically
        gaps = np.diff(trace.timestamps_ns)
        assert np.median(gaps) == pytest.approx(us(25), rel=0.2)

    def test_miss_preserves_totals(self):
        """Bytes are never lost across missed intervals."""
        sim = Simulator(seed=1)
        counter = {"value": 0}

        def tick():
            counter["value"] += 100
            sim.schedule(us(5), tick)

        sim.schedule(us(5), tick)
        sampler = HighResSampler(
            SamplerConfig(interval_ns=us(25)),
            [byte_binding(read=lambda: counter["value"])],
            rng=4,
        )
        report = sampler.run_in_sim(sim, ms(20))
        trace = report.traces["p.tx_bytes"]
        assert trace.deltas().sum() == trace.values[-1] - trace.values[0]

    def test_report_includes_cpu_utilization(self):
        sim = Simulator(seed=1)
        sampler = HighResSampler(SamplerConfig(interval_ns=us(25)), [byte_binding()], rng=2)
        report = sampler.run_in_sim(sim, ms(1))
        assert 0.0 < report.cpu_utilization <= 1.0

    def test_multi_counter_group_polled_together(self):
        sim = Simulator(seed=1)
        bindings = [
            byte_binding(name="a.tx_bytes"),
            byte_binding(name="b.tx_bytes"),
        ]
        sampler = HighResSampler(SamplerConfig(interval_ns=us(50)), bindings, rng=2)
        report = sampler.run_in_sim(sim, ms(5))
        a = report.traces["a.tx_bytes"]
        b = report.traces["b.tx_bytes"]
        assert np.array_equal(a.timestamps_ns, b.timestamps_ns)


class ScriptedTiming:
    """Timing model replaying a fixed latency sequence (cycled)."""

    def __init__(self, latencies):
        self.latencies = [int(x) for x in latencies]
        self._next = 0

    def _take(self, n):
        out = [
            self.latencies[(self._next + k) % len(self.latencies)] for k in range(n)
        ]
        self._next += n
        return out

    def group_read_latency_ns(self, specs, rng, dedicated_core=True):
        return self._take(1)[0]

    def group_read_latencies_ns(self, specs, n, rng, dedicated_core=True):
        return np.asarray(self._take(n), dtype=np.int64)

    def expected_cpu_utilization(self, specs, interval_ns):
        return 0.5


def scripted_sampler(latencies, interval_ns=us(25)):
    return HighResSampler(
        SamplerConfig(interval_ns=interval_ns, timing=ScriptedTiming(latencies)),
        [byte_binding()],
        rng=0,
    )


class TestEdgeCases:
    def test_overrun_clamp(self):
        from repro.core.sampler import overrun_covered_instants

        assert overrun_covered_instants(us(25), us(25), 100) == 1
        assert overrun_covered_instants(us(26), us(25), 100) == 2
        assert overrun_covered_instants(us(100), us(25), 100) == 4
        # Clamped at the window boundary, never below one instant.
        assert overrun_covered_instants(us(100), us(25), 2) == 2
        assert overrun_covered_instants(us(100), us(25), 0) == 1

    def test_latency_exactly_equal_to_interval_is_not_a_miss(self):
        sampler = scripted_sampler([us(25)])
        stats = sampler.simulate_timing(us(25) * 10)
        assert stats.scheduled == 10
        assert stats.taken == 10
        assert stats.missed == 0

    def test_live_mode_latency_equal_to_interval(self):
        sampler = scripted_sampler([us(25)])
        report = sampler.run_in_sim(Simulator(seed=0), us(25) * 10)
        assert report.timing.scheduled == 10
        assert report.timing.missed == 0

    def test_live_duration_shorter_than_interval_rejected(self):
        sampler = scripted_sampler([us(1)])
        with pytest.raises(SamplingError):
            sampler.run_in_sim(Simulator(seed=0), us(10))

    def test_read_completing_exactly_at_window_end_is_recorded(self):
        # Last read starts at t = 3 * interval and completes at t = end.
        sampler = scripted_sampler([us(25)])
        report = sampler.run_in_sim(Simulator(seed=0), us(25) * 4)
        trace = report.traces["p.tx_bytes"]
        assert len(trace) == 4
        assert trace.timestamps_ns[-1] == us(25) * 4

    def test_final_overrun_clamped_to_window(self):
        """A huge latency on the final instants can't inflate scheduled
        past the number of grid points in the window."""
        sampler = scripted_sampler([us(10_000)])
        stats = sampler.simulate_timing(us(25) * 8)
        assert stats.scheduled == 8
        assert stats.missed == 8
        assert stats.taken == 1


class TestValidation:
    def test_empty_bindings_rejected(self):
        with pytest.raises(SamplingError):
            HighResSampler(SamplerConfig(), [])

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError):
            SamplerConfig(interval_ns=0)
