"""CounterTrace tests."""

import numpy as np
import pytest

from repro.core.samples import CounterTrace, ValueKind
from repro.errors import AnalysisError
from repro.units import gbps, us


def byte_trace(values, interval=us(25), rate=gbps(10)):
    return CounterTrace.regular(
        interval_ns=interval,
        values=np.asarray(values, dtype=np.int64),
        kind=ValueKind.CUMULATIVE,
        name="t",
        rate_bps=rate,
    )


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            CounterTrace(
                timestamps_ns=np.array([0, 1]),
                values=np.array([0]),
                kind=ValueKind.CUMULATIVE,
            )

    def test_non_increasing_timestamps_rejected(self):
        with pytest.raises(AnalysisError):
            CounterTrace(
                timestamps_ns=np.array([0, 5, 5]),
                values=np.array([0, 1, 2]),
                kind=ValueKind.CUMULATIVE,
            )

    def test_regular_grid(self):
        trace = byte_trace([0, 100, 200])
        assert list(trace.timestamps_ns) == [0, 25_000, 50_000]
        assert trace.duration_ns == 50_000
        assert len(trace) == 3
        assert trace.n_intervals == 2


class TestDerived:
    def test_deltas(self):
        trace = byte_trace([0, 100, 250, 250])
        assert list(trace.deltas()) == [100, 150, 0]

    def test_backwards_counter_rejected(self):
        trace = byte_trace([0, 100, 50])
        with pytest.raises(AnalysisError):
            trace.deltas()

    def test_rates_and_utilization(self):
        # 31250 bytes in 25 us at 10 Gbps = 100 % utilization
        trace = byte_trace([0, 31250, 31250])
        util = trace.utilization()
        assert util[0] == pytest.approx(1.0)
        assert util[1] == pytest.approx(0.0)

    def test_utilization_needs_rate(self):
        trace = CounterTrace.regular(us(25), np.array([0, 10]), ValueKind.CUMULATIVE)
        with pytest.raises(AnalysisError):
            trace.utilization()

    def test_utilization_with_missed_sample(self):
        """A missed interval (double-length gap) still yields correct
        throughput: Table 1's 'correct timestamp' property."""
        trace = CounterTrace(
            timestamps_ns=np.array([0, 25_000, 75_000]),  # one miss
            values=np.array([0, 31250, 31250 * 3]),
            kind=ValueKind.CUMULATIVE,
            rate_bps=gbps(10),
        )
        util = trace.utilization()
        assert util[0] == pytest.approx(1.0)
        assert util[1] == pytest.approx(1.0)  # 62500 bytes over 50 us

    def test_gauge_semantics(self):
        gauge = CounterTrace.regular(
            us(50), np.array([5, 7, 3]), ValueKind.GAUGE, name="buf"
        )
        assert list(gauge.gauge_values()) == [5, 7, 3]
        assert gauge.n_intervals == 3
        with pytest.raises(AnalysisError):
            gauge.deltas()

    def test_histogram_deltas_2d(self):
        values = np.array([[0, 0], [2, 1], [5, 1]])
        trace = CounterTrace.regular(us(25), values, ValueKind.CUMULATIVE)
        deltas = trace.deltas()
        assert deltas.shape == (2, 2)
        assert list(deltas[0]) == [2, 1]


class TestSliceDecimate:
    def test_slice_time(self):
        trace = byte_trace(range(10))
        window = trace.slice_time(us(50), us(125))
        assert len(window) == 3
        assert window.timestamps_ns[0] == us(50)

    def test_decimate_preserves_cumulative_totals(self):
        trace = byte_trace([0, 10, 30, 60, 100, 150, 210, 280, 360])
        coarse = trace.decimate(4)
        assert list(coarse.values) == [0, 100, 360]
        assert coarse.deltas().sum() == trace.deltas().sum()

    def test_decimate_validates_factor(self):
        with pytest.raises(AnalysisError):
            byte_trace([0, 1]).decimate(0)
