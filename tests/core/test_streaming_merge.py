"""StreamingBurstStats merge and edge cases (zero-length runs,
single-sample bursts, window-seam semantics)."""

import numpy as np
import pytest

from repro.core.streaming import StreamingBurstStats
from repro.errors import AnalysisError
from repro.units import us


def fed(values, interval_ns=us(25), finalize=True) -> StreamingBurstStats:
    stats = StreamingBurstStats(interval_ns=interval_ns)
    stats.update_many(np.asarray(values, dtype=float))
    if finalize:
        stats.finalize()
    return stats


class TestEdgeCases:
    def test_zero_length_run(self):
        stats = fed([])
        assert stats.n_samples == 0
        assert stats.n_bursts == 0
        assert stats.hot_fraction == 0.0
        with pytest.raises(AnalysisError):
            stats.duration_quantile_ns(0.9)

    def test_all_cold_has_no_bursts(self):
        stats = fed([0.0] * 10)
        assert stats.n_bursts == 0
        assert stats.transitions[0][0] == 9

    def test_single_sample_burst(self):
        stats = fed([0.0, 1.0, 0.0])
        assert stats.n_bursts == 1
        # a length-1 burst lands in the first log2 bucket
        assert stats.duration_buckets[0] == 1
        assert stats.duration_quantile_ns(1.0) == us(25)

    def test_burst_open_at_window_end_closed_by_finalize(self):
        stats = fed([0.0, 1.0, 1.0], finalize=False)
        assert stats.n_bursts == 0
        stats.finalize()
        assert stats.n_bursts == 1
        assert stats.duration_buckets[1] == 1  # length 2 -> bucket [2, 4)

    def test_finalize_idempotent(self):
        stats = fed([1.0])
        stats.finalize()
        assert stats.n_bursts == 1


class TestMerge:
    def test_merge_sums_everything(self):
        a = fed([0.0, 1.0, 1.0, 0.0])
        b = fed([1.0, 0.0, 1.0, 1.0, 1.0])
        merged_samples = a.n_samples + b.n_samples
        merged_bursts = a.n_bursts + b.n_bursts
        a.merge(b)
        assert a.n_samples == merged_samples
        assert a.n_hot == 6  # 2 hot samples in a, 4 in b
        assert a.n_bursts == merged_bursts

    def test_merge_equals_whole_stream_at_cold_seam(self):
        """Splitting a stream at a cold/cold boundary loses exactly the
        one seam transition and nothing else."""
        whole_values = [0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0]
        split = 4  # both sides of the seam are cold
        whole = fed(whole_values)
        left = fed(whole_values[:split])
        right = fed(whole_values[split:])
        left.merge(right)
        assert left.n_samples == whole.n_samples
        assert left.n_hot == whole.n_hot
        assert left.n_bursts == whole.n_bursts
        assert left.duration_buckets == whole.duration_buckets
        seam = np.subtract(whole.transitions, left.transitions)
        assert seam.sum() == 1
        assert seam[0][0] == 1  # the lost transition was cold -> cold
        assert left.duration_quantile_ns(0.9) == whole.duration_quantile_ns(0.9)

    def test_merge_transition_matrix_usable(self):
        a = fed([0.0, 1.0, 0.0] * 20)
        b = fed([0.0, 0.0, 1.0] * 20)
        a.merge(b)
        matrix = a.transition_matrix()
        assert 0.0 <= matrix.p01 <= 1.0
        assert 0.0 <= matrix.p11 <= 1.0

    def test_merge_into_fresh_accumulator(self):
        total = StreamingBurstStats(interval_ns=us(25))
        for chunk in ([1.0, 1.0, 0.0], [0.0, 1.0, 0.0], []):
            total.merge(fed(chunk))
        assert total.n_samples == 6
        assert total.n_bursts == 2

    def test_mismatched_interval_rejected(self):
        a = fed([1.0], interval_ns=us(25))
        b = fed([1.0], interval_ns=us(50))
        with pytest.raises(AnalysisError):
            a.merge(b)

    def test_mismatched_threshold_rejected(self):
        a = StreamingBurstStats(interval_ns=us(25), threshold=0.5)
        b = StreamingBurstStats(interval_ns=us(25), threshold=0.7)
        with pytest.raises(AnalysisError):
            a.merge(b)

    def test_mismatched_bucket_count_rejected(self):
        a = StreamingBurstStats(interval_ns=us(25))
        b = StreamingBurstStats(interval_ns=us(25), duration_buckets=[0] * 8)
        with pytest.raises(AnalysisError):
            a.merge(b)

    def test_unfinalized_sides_rejected(self):
        open_run = fed([1.0, 1.0], finalize=False)
        closed = fed([0.0])
        with pytest.raises(AnalysisError):
            closed.merge(open_run)
        with pytest.raises(AnalysisError):
            open_run.merge(closed)
