"""Counter spec / binding tests."""

import pytest

from repro.core.counters import (
    CostClass,
    CounterKind,
    CounterSpec,
    bind_all_tx_bytes,
    bind_peak_buffer,
    bind_rx_bytes,
    bind_tx_bytes,
    bind_tx_drops,
    bind_tx_size_hist,
    validate_group,
)
from repro.core.samples import ValueKind
from repro.errors import CounterError
from repro.netsim import SwitchCounterSurface
from repro.units import ms


class TestSpecs:
    def test_cost_classes(self):
        assert CounterSpec("a", CounterKind.BYTE).cost_class is CostClass.REGISTER
        assert CounterSpec("b", CounterKind.PEAK_BUFFER).cost_class is CostClass.MEMORY

    def test_value_kinds(self):
        assert CounterSpec("a", CounterKind.BYTE).value_kind is ValueKind.CUMULATIVE
        assert CounterSpec("b", CounterKind.PEAK_BUFFER).value_kind is ValueKind.GAUGE

    def test_validate_group_rejects_duplicates(self):
        from repro.core.counters import CounterBinding

        spec = CounterSpec("x", CounterKind.BYTE)
        a = CounterBinding(spec=spec, read=lambda: 0)
        b = CounterBinding(spec=spec, read=lambda: 1)
        with pytest.raises(CounterError):
            validate_group([a, b])


class TestBindings:
    @pytest.fixture
    def surface(self, sim, small_rack):
        small_rack.servers[0].send_flow(small_rack.servers[1].name, 30_000)
        sim.run_for(ms(10))
        return SwitchCounterSurface(small_rack.tor)

    def test_tx_bytes_binding(self, surface):
        binding = bind_tx_bytes(surface, "down1")
        assert binding.spec.name == "down1.tx_bytes"
        assert binding.spec.rate_bps == surface.port_rate_bps("down1")
        assert binding.read() >= 30_000

    def test_rx_bytes_binding(self, surface):
        assert bind_rx_bytes(surface, "down0").read() >= 30_000

    def test_drops_binding(self, surface):
        assert bind_tx_drops(surface, "down1").read() == 0

    def test_hist_binding_returns_tuple(self, surface):
        hist = bind_tx_size_hist(surface, "down1").read()
        assert isinstance(hist, tuple)
        assert sum(hist) > 0

    def test_peak_buffer_binding(self, surface):
        binding = bind_peak_buffer(surface)
        assert binding.spec.kind is CounterKind.PEAK_BUFFER
        assert binding.read() > 0

    def test_bind_all_covers_every_port(self, surface):
        bindings = bind_all_tx_bytes(surface)
        names = {binding.spec.name for binding in bindings}
        assert names == {f"{p}.tx_bytes" for p in surface.port_names}
        validate_group(bindings)  # no duplicates
