"""Coarse-grained (SNMP-style) resampling tests."""

import numpy as np
import pytest

from repro.core.samples import CounterTrace, ValueKind
from repro.core.snmp import coarse_resample
from repro.errors import AnalysisError
from repro.units import gbps, seconds, us


def fine_trace(bytes_per_tick, tick=us(25), rate=gbps(10)):
    values = np.concatenate(([0], np.cumsum(bytes_per_tick))).astype(np.int64)
    return CounterTrace.regular(tick, values, ValueKind.CUMULATIVE, name="b", rate_bps=rate)


class TestResampling:
    def test_bins_sum_fine_deltas(self):
        per_tick = np.full(8000, 100)  # 200 ms at 25 us
        trace = fine_trace(per_tick)
        coarse = coarse_resample(trace, seconds(0.1))
        capacity = gbps(10) * 0.1 / 8
        total_bytes = coarse.utilization.sum() * capacity
        assert total_bytes == pytest.approx(8000 * 100, rel=1e-9)
        # steady traffic -> first bin near the per-bin average
        expected = 4000 * 100 / capacity
        assert coarse.utilization[0] == pytest.approx(expected, rel=1e-3)

    def test_burst_invisible_at_coarse_granularity(self):
        """The paper's core point: a 100 % µburst vanishes in a long bin."""
        per_tick = np.zeros(40_000)
        per_tick[100:104] = 31_250  # 100 us at line rate
        trace = fine_trace(per_tick)
        fine_util = trace.utilization()
        assert fine_util.max() == pytest.approx(1.0, rel=1e-3)
        coarse = coarse_resample(trace, seconds(1))
        assert coarse.utilization.max() < 0.001

    def test_drop_alignment(self):
        byte_trace = fine_trace(np.full(400, 100))
        drops = np.zeros(401, dtype=np.int64)
        drops[200:] = 5  # burst of 5 drops mid-window
        drop_trace = CounterTrace.regular(
            us(25), drops, ValueKind.CUMULATIVE, name="d"
        )
        coarse = coarse_resample(byte_trace, us(2500), drop_trace=drop_trace)
        assert coarse.drops is not None
        assert coarse.drops.sum() == 5
        # the delta lands at interval 200 (t = 5 ms), i.e. bin 2 of 2.5 ms
        assert coarse.drops[2] == 5

    def test_requires_line_rate(self):
        trace = CounterTrace.regular(
            us(25), np.arange(10, dtype=np.int64), ValueKind.CUMULATIVE
        )
        with pytest.raises(AnalysisError):
            coarse_resample(trace, us(100))

    def test_requires_cumulative(self):
        gauge = CounterTrace.regular(us(25), np.arange(10), ValueKind.GAUGE, rate_bps=1e9)
        with pytest.raises(AnalysisError):
            coarse_resample(gauge, us(100))

    def test_short_trace_rejected(self):
        trace = CounterTrace.regular(us(25), np.array([0]), ValueKind.CUMULATIVE, rate_bps=1e9)
        with pytest.raises(AnalysisError):
            coarse_resample(trace, us(100))
