"""Trace archive persistence tests."""

import numpy as np
import pytest

from repro.core.samples import CounterTrace, ValueKind
from repro.core.traceio import load_traces, save_traces
from repro.errors import DataFormatError
from repro.units import gbps, us


def sample_traces():
    byte_trace = CounterTrace.regular(
        us(25),
        np.cumsum(np.arange(10)).astype(np.int64),
        ValueKind.CUMULATIVE,
        name="down0.tx_bytes",
        rate_bps=gbps(10),
    )
    gauge = CounterTrace.regular(
        us(50),
        np.array([3, 9, 1], dtype=np.int64),
        ValueKind.GAUGE,
        name="shared_buffer.peak",
    )
    hist = CounterTrace.regular(
        us(25),
        np.cumsum(np.ones((4, 6), dtype=np.int64), axis=0),
        ValueKind.CUMULATIVE,
        name="down0.tx_size_hist",
    )
    return {t.name: t for t in (byte_trace, gauge, hist)}


class TestRoundTrip:
    def test_all_fields_preserved(self, tmp_path):
        path = tmp_path / "window.npz"
        original = sample_traces()
        save_traces(path, original)
        loaded = load_traces(path)
        assert set(loaded) == set(original)
        for name, trace in original.items():
            restored = loaded[name]
            assert np.array_equal(restored.timestamps_ns, trace.timestamps_ns)
            assert np.array_equal(restored.values, trace.values)
            assert restored.kind is trace.kind
            assert restored.rate_bps == trace.rate_bps

    def test_histogram_shape_preserved(self, tmp_path):
        path = tmp_path / "window.npz"
        save_traces(path, sample_traces())
        loaded = load_traces(path)
        assert loaded["down0.tx_size_hist"].values.shape == (4, 6)

    def test_derived_statistics_survive(self, tmp_path):
        path = tmp_path / "window.npz"
        original = sample_traces()
        save_traces(path, original)
        loaded = load_traces(path)
        assert np.allclose(
            loaded["down0.tx_bytes"].utilization(),
            original["down0.tx_bytes"].utilization(),
        )


class TestValidation:
    def test_empty_archive_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            save_traces(tmp_path / "x.npz", {})

    def test_key_name_mismatch_rejected(self, tmp_path):
        traces = sample_traces()
        renamed = {"wrong": traces["down0.tx_bytes"]}
        with pytest.raises(DataFormatError):
            save_traces(tmp_path / "x.npz", renamed)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(5))
        with pytest.raises(DataFormatError):
            load_traces(path)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "w.npz"
        save_traces(path, sample_traces())
        assert path.exists()
