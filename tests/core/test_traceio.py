"""Trace archive persistence tests."""

import numpy as np
import pytest

from repro.core.samples import CounterTrace, ValueKind
from repro.core.traceio import load_traces, save_traces
from repro.errors import CorruptTraceError, DataFormatError
from repro.units import gbps, us


def sample_traces():
    byte_trace = CounterTrace.regular(
        us(25),
        np.cumsum(np.arange(10)).astype(np.int64),
        ValueKind.CUMULATIVE,
        name="down0.tx_bytes",
        rate_bps=gbps(10),
    )
    gauge = CounterTrace.regular(
        us(50),
        np.array([3, 9, 1], dtype=np.int64),
        ValueKind.GAUGE,
        name="shared_buffer.peak",
    )
    hist = CounterTrace.regular(
        us(25),
        np.cumsum(np.ones((4, 6), dtype=np.int64), axis=0),
        ValueKind.CUMULATIVE,
        name="down0.tx_size_hist",
    )
    return {t.name: t for t in (byte_trace, gauge, hist)}


class TestRoundTrip:
    def test_all_fields_preserved(self, tmp_path):
        path = tmp_path / "window.npz"
        original = sample_traces()
        save_traces(path, original)
        loaded = load_traces(path)
        assert set(loaded) == set(original)
        for name, trace in original.items():
            restored = loaded[name]
            assert np.array_equal(restored.timestamps_ns, trace.timestamps_ns)
            assert np.array_equal(restored.values, trace.values)
            assert restored.kind is trace.kind
            assert restored.rate_bps == trace.rate_bps

    def test_histogram_shape_preserved(self, tmp_path):
        path = tmp_path / "window.npz"
        save_traces(path, sample_traces())
        loaded = load_traces(path)
        assert loaded["down0.tx_size_hist"].values.shape == (4, 6)

    def test_derived_statistics_survive(self, tmp_path):
        path = tmp_path / "window.npz"
        original = sample_traces()
        save_traces(path, original)
        loaded = load_traces(path)
        assert np.allclose(
            loaded["down0.tx_bytes"].utilization(),
            original["down0.tx_bytes"].utilization(),
        )


class TestValidation:
    def test_empty_archive_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            save_traces(tmp_path / "x.npz", {})

    def test_key_name_mismatch_rejected(self, tmp_path):
        traces = sample_traces()
        renamed = {"wrong": traces["down0.tx_bytes"]}
        with pytest.raises(DataFormatError):
            save_traces(tmp_path / "x.npz", renamed)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(5))
        with pytest.raises(DataFormatError):
            load_traces(path)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "w.npz"
        save_traces(path, sample_traces())
        assert path.exists()

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_traces(tmp_path / "absent.npz")


def _raw_members(path):
    """The archive's raw arrays, for building damaged variants."""
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


class TestIntegrity:
    def test_truncated_archive_detected(self, tmp_path):
        path = tmp_path / "w.npz"
        save_traces(path, sample_traces())
        data = path.read_bytes()
        for cut in (len(data) // 4, len(data) // 2, len(data) - 7):
            path.write_bytes(data[:cut])
            with pytest.raises(CorruptTraceError):
                load_traces(path)

    def test_garbage_file_detected(self, tmp_path):
        path = tmp_path / "w.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(CorruptTraceError):
            load_traces(path)

    def test_crc_mismatch_detected(self, tmp_path):
        path = tmp_path / "w.npz"
        save_traces(path, sample_traces())
        members = _raw_members(path)
        key = "t0.values"
        tampered = members[key].copy()
        tampered.flat[0] += 1
        members[key] = tampered
        np.savez_compressed(path, **members)
        with pytest.raises(CorruptTraceError, match="CRC"):
            load_traces(path)

    def test_length_mismatch_detected(self, tmp_path):
        path = tmp_path / "w.npz"
        save_traces(path, sample_traces())
        members = _raw_members(path)
        members["t0.timestamps"] = members["t0.timestamps"][:-1]
        members["t0.values"] = members["t0.values"][:-1]
        np.savez_compressed(path, **members)
        with pytest.raises(CorruptTraceError):
            load_traces(path)

    def test_missing_trace_detected_by_count(self, tmp_path):
        path = tmp_path / "w.npz"
        save_traces(path, sample_traces())
        members = _raw_members(path)
        dropped = {
            key: value
            for key, value in members.items()
            if not key.startswith("t2.")
        }
        np.savez_compressed(path, **dropped)
        with pytest.raises(CorruptTraceError, match="header says"):
            load_traces(path)

    def test_version1_archive_without_integrity_still_loads(self, tmp_path):
        path = tmp_path / "w.npz"
        save_traces(path, sample_traces())
        members = _raw_members(path)
        legacy = {
            key: value
            for key, value in members.items()
            if not key.endswith(".integrity") and key != "__n_traces__"
        }
        legacy["__repro_trace_archive__"] = np.array([1], dtype=np.int64)
        np.savez_compressed(path, **legacy)
        loaded = load_traces(path)
        assert set(loaded) == set(sample_traces())


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "w.npz"
        save_traces(path, sample_traces())
        save_traces(path, sample_traces())  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["w.npz"]

    def test_failed_write_preserves_existing_archive(self, tmp_path):
        path = tmp_path / "w.npz"
        save_traces(path, sample_traces())
        before = path.read_bytes()
        with pytest.raises(DataFormatError):
            save_traces(path, {"wrong": sample_traces()["down0.tx_bytes"]})
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["w.npz"]
