"""Collector service tests."""

import numpy as np
import pytest

from repro.core import CollectorService
from repro.core.counters import CounterKind, CounterSpec
from repro.core.samples import ValueKind
from repro.errors import ConfigError, CounterError


@pytest.fixture
def collector():
    service = CollectorService(batch_size=4)
    service.register(CounterSpec("bytes", CounterKind.BYTE, rate_bps=10e9))
    service.register(CounterSpec("buf", CounterKind.PEAK_BUFFER))
    return service


class TestRecording:
    def test_finalize_builds_traces(self, collector):
        for i in range(5):
            collector.record("bytes", i * 1000, i * 100)
        traces = collector.finalize()
        trace = traces["bytes"]
        assert len(trace) == 5
        assert trace.kind is ValueKind.CUMULATIVE
        assert trace.rate_bps == 10e9
        assert list(trace.values) == [0, 100, 200, 300, 400]

    def test_gauge_trace_kind(self, collector):
        collector.record("buf", 0, 123)
        collector.record("buf", 1000, 456)
        traces = collector.finalize()
        assert traces["buf"].kind is ValueKind.GAUGE

    def test_histogram_values_tuple(self):
        service = CollectorService()
        service.register(CounterSpec("hist", CounterKind.PACKET_SIZE_HIST))
        service.record("hist", 0, (1, 2, 3))
        service.record("hist", 1000, (2, 3, 4))
        trace = service.finalize()["hist"]
        assert trace.values.shape == (2, 3)

    def test_unregistered_counter_rejected(self, collector):
        with pytest.raises(CounterError):
            collector.record("nope", 0, 1)

    def test_duplicate_registration_rejected(self, collector):
        with pytest.raises(CounterError):
            collector.register(CounterSpec("bytes", CounterKind.BYTE))

    def test_sample_count(self, collector):
        collector.record("bytes", 0, 0)
        assert collector.sample_count("bytes") == 1
        assert collector.sample_count("buf") == 0


class TestBatching:
    def test_batches_ship_at_threshold(self, collector):
        for i in range(7):
            collector.record("bytes", i, i)
        assert collector.batches_shipped == 1  # one full batch of 4
        collector.finalize()
        assert collector.batches_shipped == 2  # remainder flushed

    def test_bytes_shipped_accounting(self, collector):
        for i in range(4):
            collector.record("bytes", i, i)
        assert collector.bytes_shipped == 4 * 16

    def test_bad_batch_size(self):
        with pytest.raises(ConfigError):
            CollectorService(batch_size=0)
