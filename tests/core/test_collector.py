"""Collector service tests."""

import pytest

from repro.core import CollectorService
from repro.core.counters import CounterKind, CounterSpec
from repro.core.samples import ValueKind
from repro.errors import CollectionError, ConfigError, CounterError


@pytest.fixture
def collector():
    service = CollectorService(batch_size=4)
    service.register(CounterSpec("bytes", CounterKind.BYTE, rate_bps=10e9))
    service.register(CounterSpec("buf", CounterKind.PEAK_BUFFER))
    return service


class TestRecording:
    def test_finalize_builds_traces(self, collector):
        for i in range(5):
            collector.record("bytes", i * 1000, i * 100)
        traces = collector.finalize()
        trace = traces["bytes"]
        assert len(trace) == 5
        assert trace.kind is ValueKind.CUMULATIVE
        assert trace.rate_bps == 10e9
        assert list(trace.values) == [0, 100, 200, 300, 400]

    def test_gauge_trace_kind(self, collector):
        collector.record("buf", 0, 123)
        collector.record("buf", 1000, 456)
        traces = collector.finalize()
        assert traces["buf"].kind is ValueKind.GAUGE

    def test_histogram_values_tuple(self):
        service = CollectorService()
        service.register(CounterSpec("hist", CounterKind.PACKET_SIZE_HIST))
        service.record("hist", 0, (1, 2, 3))
        service.record("hist", 1000, (2, 3, 4))
        trace = service.finalize()["hist"]
        assert trace.values.shape == (2, 3)

    def test_unregistered_counter_rejected(self, collector):
        with pytest.raises(CounterError):
            collector.record("nope", 0, 1)

    def test_duplicate_registration_rejected(self, collector):
        with pytest.raises(CounterError):
            collector.register(CounterSpec("bytes", CounterKind.BYTE))

    def test_sample_count(self, collector):
        collector.record("bytes", 0, 0)
        assert collector.sample_count("bytes") == 1
        assert collector.sample_count("buf") == 0


class TestBatching:
    def test_batches_ship_at_threshold(self, collector):
        for i in range(7):
            collector.record("bytes", i, i)
        assert collector.batches_shipped == 1  # one full batch of 4
        collector.finalize()
        assert collector.batches_shipped == 2  # remainder flushed

    def test_bytes_shipped_accounting(self, collector):
        for i in range(4):
            collector.record("bytes", i, i)
        assert collector.bytes_shipped == 4 * 16

    def test_bad_batch_size(self):
        with pytest.raises(ConfigError):
            CollectorService(batch_size=0)


def bounded(capacity, policy, batch_size=100, **kwargs):
    service = CollectorService(
        batch_size=batch_size,
        queue_capacity=capacity,
        drop_policy=policy,
        **kwargs,
    )
    service.register(CounterSpec("bytes", CounterKind.BYTE, rate_bps=10e9))
    return service


class TestBoundedQueue:
    def test_drop_newest_discards_incoming(self):
        service = bounded(2, "drop_newest")
        for i in range(5):
            service.record("bytes", i * 1000, i * 100)
        trace = service.finalize()["bytes"]
        assert list(trace.timestamps_ns) == [0, 1000]
        assert service.samples_dropped == 3
        assert service.dropped_count("bytes") == 3
        assert trace.meta["samples_dropped"] == 3

    def test_drop_oldest_evicts_pending(self):
        service = bounded(2, "drop_oldest")
        for i in range(5):
            service.record("bytes", i * 1000, i * 100)
        trace = service.finalize()["bytes"]
        # The two newest samples survive; gaps keep true timestamps.
        assert list(trace.timestamps_ns) == [3000, 4000]
        assert service.samples_dropped == 3

    def test_error_policy_raises(self):
        service = bounded(2, "error")
        service.record("bytes", 0, 0)
        service.record("bytes", 1000, 100)
        with pytest.raises(CollectionError):
            service.record("bytes", 2000, 200)

    def test_shipping_drains_the_queue(self):
        """Capacity binds *pending* samples, so a keeping-up collector
        never drops even far more samples than the capacity."""
        service = bounded(4, "drop_newest", batch_size=2)
        for i in range(50):
            service.record("bytes", i * 1000, i * 100)
        assert service.samples_dropped == 0
        assert len(service.finalize()["bytes"]) == 50

    def test_unbounded_default_never_drops(self):
        service = bounded(None, "drop_newest")
        for i in range(1000):
            service.record("bytes", i * 1000, i)
        assert service.samples_dropped == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            CollectorService(queue_capacity=0)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            CollectorService(drop_policy="shrug")

    def test_clean_trace_has_no_drop_marker(self, collector):
        collector.record("bytes", 0, 0)
        trace = collector.finalize()["bytes"]
        assert "samples_dropped" not in trace.meta


class TestShipFailures:
    def test_failed_ships_keep_samples_pending(self):
        service = bounded(
            10, "drop_newest", batch_size=2, ship_should_fail=lambda name, i: True
        )
        for i in range(6):
            service.record("bytes", i * 1000, i * 100)
        # Every record past the batch threshold retries the failing ship.
        assert service.ship_failures == 5
        assert service.batches_shipped == 0
        # finalize drains regardless: shutdown always lands pending data.
        trace = service.finalize()["bytes"]
        assert len(trace) == 6
        assert service.batches_shipped == 1

    def test_sustained_ship_failure_overflows_bounded_queue(self):
        service = bounded(
            3, "drop_newest", batch_size=2, ship_should_fail=lambda name, i: True
        )
        for i in range(10):
            service.record("bytes", i * 1000, i * 100)
        assert service.samples_dropped == 7
        assert len(service.finalize()["bytes"]) == 3
