"""ASIC timing model tests, including Table 1 calibration."""

import numpy as np
import pytest

from repro.core.asic import AsicTimingModel, ReadCost
from repro.core.counters import CounterKind, CounterSpec
from repro.errors import ConfigError
from repro.units import us


@pytest.fixture
def model():
    return AsicTimingModel()


def byte_spec(name="b"):
    return CounterSpec(name, CounterKind.BYTE)


def buffer_spec():
    return CounterSpec("buf", CounterKind.PEAK_BUFFER)


class TestLatencies:
    def test_register_faster_than_memory(self, model, rng):
        register = model.group_read_latencies_ns([byte_spec()], 2000, rng)
        memory = model.group_read_latencies_ns([buffer_spec()], 2000, rng)
        assert np.median(register) < np.median(memory)

    def test_latency_positive(self, model, rng):
        latencies = model.group_read_latencies_ns([byte_spec()], 1000, rng)
        assert latencies.min() >= 1

    def test_byte_counter_latency_body_matches_table1(self, model, rng):
        """P(L > 10us) ~ 5-15 %, P(L > 25us) ~ 0.3-2 % (Table 1 drivers)."""
        latencies = model.group_read_latencies_ns([byte_spec()], 200_000, rng)
        p_over_10 = (latencies > us(10)).mean()
        p_over_25 = (latencies > us(25)).mean()
        assert 0.03 < p_over_10 < 0.15
        assert 0.002 < p_over_25 < 0.02
        assert (latencies > us(1)).mean() > 0.999  # 1 us never achievable

    def test_scalar_and_vector_draws_agree_statistically(self, model):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        scalars = [
            model.single_read_latency_ns(byte_spec(), rng_a) for _ in range(4000)
        ]
        vector = model.group_read_latencies_ns([byte_spec()], 4000, rng_b)
        assert np.median(scalars) == pytest.approx(np.median(vector), rel=0.1)


class TestBatching:
    def test_group_read_sublinear(self, model, rng):
        one = model.group_read_latencies_ns([byte_spec("a")], 5000, rng).mean()
        four_specs = [byte_spec(f"p{i}") for i in range(4)]
        four = model.group_read_latencies_ns(four_specs, 5000, rng).mean()
        assert one < four < 4 * one

    def test_empty_group_rejected(self, model, rng):
        with pytest.raises(ConfigError):
            model.group_read_latency_ns([], rng)


class TestSharedCore:
    def test_shared_core_more_interrupts(self, model, rng):
        dedicated = model.group_read_latencies_ns(
            [byte_spec()], 50_000, np.random.default_rng(1), dedicated_core=True
        )
        shared = model.group_read_latencies_ns(
            [byte_spec()], 50_000, np.random.default_rng(1), dedicated_core=False
        )
        # interrupts add 15-60 us: shared core has a much fatter tail
        assert (shared > us(15)).mean() > (dedicated > us(15)).mean() * 2


class TestCpuUtilization:
    def test_utilization_decreases_with_interval(self, model):
        fast = model.expected_cpu_utilization([byte_spec()], us(10))
        slow = model.expected_cpu_utilization([byte_spec()], us(100))
        assert slow < fast <= 1.0

    def test_sec41_twenty_percent_claim(self, model):
        """At 25 us a single byte counter costs a meaningful core share;
        at ~4x the interval it drops to <= 20 % (Sec 4.1 tradeoff)."""
        at_100us = model.expected_cpu_utilization([byte_spec()], us(100))
        assert at_100us <= 0.20

    def test_zero_interval_rejected(self, model):
        with pytest.raises(ConfigError):
            model.expected_cpu_utilization([byte_spec()], 0)


class TestValidation:
    def test_bad_interrupt_probability(self):
        with pytest.raises(ConfigError):
            AsicTimingModel(interrupt_probability=1.5)

    def test_bad_batch_factor(self):
        with pytest.raises(ConfigError):
            AsicTimingModel(batch_factor=2.0)

    def test_inverted_interrupt_range(self):
        with pytest.raises(ConfigError):
            AsicTimingModel(interrupt_extra_min_ns=100, interrupt_extra_max_ns=50)

    def test_read_cost_mu(self):
        cost = ReadCost(median_ns=1000.0, sigma=0.5)
        assert cost.mu == pytest.approx(np.log(1000.0))
