"""Measurement campaign tests (Sec 4.2 discipline)."""

import numpy as np
import pytest

from repro.core.campaign import CampaignPlan, CampaignWindow, MeasurementCampaign
from repro.core.samples import CounterTrace, ValueKind
from repro.errors import ConfigError
from repro.units import seconds


def racks():
    return [(f"web{i}", "web") for i in range(3)] + [(f"hadoop{i}", "hadoop") for i in range(2)]


def choose_port(rack_id, rng):
    return f"down{int(rng.integers(4))}"


@pytest.fixture
def plan(rng):
    return CampaignPlan.generate(racks(), choose_port, rng, hours=24)


class TestPlanGeneration:
    def test_one_window_per_rack_hour(self, plan):
        assert len(plan.windows) == 5 * 24

    def test_windows_fit_their_hour(self, plan):
        hour_ns = seconds(3600)
        for window in plan.windows:
            assert window.hour * hour_ns <= window.start_ns
            assert window.end_ns <= (window.hour + 1) * hour_ns

    def test_one_port_per_rack(self, plan):
        ports = {}
        for window in plan.windows:
            ports.setdefault(window.rack_id, set()).add(window.port_name)
        assert all(len(ps) == 1 for ps in ports.values())

    def test_random_offsets_vary(self, plan):
        offsets = {w.start_ns % seconds(3600) for w in plan.windows}
        assert len(offsets) > 10

    def test_windows_for_type(self, plan):
        assert len(plan.windows_for_type("web")) == 3 * 24
        assert len(plan.windows_for_type("hadoop")) == 2 * 24

    def test_total_measured_seconds(self, plan):
        assert plan.total_measured_seconds == pytest.approx(120 * 120)

    def test_paper_scale_plan(self, rng):
        """The paper: 30 racks x 24 hours = 720 two-minute windows."""
        paper_racks = [(f"r{i}", "web") for i in range(30)]
        plan = CampaignPlan.generate(paper_racks, choose_port, rng)
        assert len(plan.windows) == 720
        assert plan.total_measured_seconds == pytest.approx(720 * 120)

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            CampaignPlan.generate(racks(), choose_port, rng, hours=0)
        with pytest.raises(ConfigError):
            CampaignPlan.generate(
                racks(), choose_port, rng, window_duration_ns=seconds(7200)
            )


class FakeSource:
    def __init__(self):
        self.calls = []

    def sample_window(self, window: CampaignWindow):
        self.calls.append(window)
        trace = CounterTrace.regular(
            25_000,
            np.arange(10, dtype=np.int64),
            ValueKind.CUMULATIVE,
            name=window.port_name,
            rate_bps=10e9,
            start_ns=window.start_ns,
        )
        return {window.port_name: trace}


class TestExecution:
    def test_run_visits_every_window(self, plan):
        source = FakeSource()
        result = MeasurementCampaign(plan, source).run()
        assert len(source.calls) == len(plan.windows)
        assert len(result.traces) == len(plan.windows)

    def test_by_type_filters(self, plan):
        result = MeasurementCampaign(plan, FakeSource()).run()
        assert len(result.by_type("web")) == 3 * 24
        assert len(list(result.iter_windows())) == len(plan.windows)
