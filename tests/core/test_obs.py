"""Logging setup tests (repro.obs)."""

import io
import logging

from repro.obs import LOGGER_NAME, get_logger, setup_logging


def test_get_logger_names():
    assert get_logger().name == LOGGER_NAME
    assert get_logger("cli").name == f"{LOGGER_NAME}.cli"


def test_verbosity_levels():
    assert setup_logging(-1).level == logging.WARNING
    assert setup_logging(0).level == logging.INFO
    assert setup_logging(2).level == logging.DEBUG


def test_handlers_replaced_not_stacked():
    logger = setup_logging(0)
    setup_logging(0)
    assert len(logger.handlers) == 1
    assert not logger.propagate


def test_child_messages_reach_stream():
    stream = io.StringIO()
    setup_logging(0, stream=stream)
    get_logger("campaign").info("window %s done", "r1")
    assert "INFO repro.campaign: window r1 done" in stream.getvalue()


def test_quiet_drops_info():
    stream = io.StringIO()
    setup_logging(-1, stream=stream)
    get_logger("cli").info("chatty")
    get_logger("cli").warning("important")
    output = stream.getvalue()
    assert "chatty" not in output
    assert "important" in output
