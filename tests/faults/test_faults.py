"""Fault plan and injector tests: determinism is the whole point."""

import numpy as np
import pytest

from repro.core.samples import CounterTrace, ValueKind
from repro.core.traceio import load_traces, save_traces
from repro.errors import CollectionError, CorruptTraceError, FaultInjectionError
from repro.faults import (
    COUNTER_BITS_META,
    FaultInjector,
    FaultPlan,
    FaultyWindowSource,
    window_site,
)
from repro.units import gbps, us


def byte_trace(n=64, step=5000, name="down0.tx_bytes"):
    values = np.arange(n, dtype=np.int64) * step
    return CounterTrace.regular(
        us(25), values, ValueKind.CUMULATIVE, name=name, rate_bps=gbps(10)
    )


class TestFaultPlan:
    def test_default_plan_is_noop(self):
        assert FaultPlan().is_noop

    def test_any_rate_clears_noop(self):
        assert not FaultPlan(sample_loss_rate=0.01).is_noop
        assert not FaultPlan(wrap_bits=32).is_noop
        assert not FaultPlan(queue_capacity=10).is_noop

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_failure_rate": -0.1},
            {"window_failure_rate": 1.5},
            {"transient_fraction": 2.0},
            {"read_failure_rate": -1.0},
            {"sample_loss_rate": 1.01},
            {"latency_spike_rate": -0.5},
            {"truncate_rate": 7.0},
            {"wrap_bits": 0},
            {"wrap_bits": 65},
            {"latency_spike_ns": -1},
            {"queue_capacity": 0},
            {"drop_policy": "panic"},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FaultPlan(**kwargs)


class TestDeterminism:
    def test_site_keyed_rng_is_stable(self):
        injector = FaultInjector(FaultPlan(seed=9))
        a = injector.rng_for("web-rack0|3|down1").random(8)
        b = injector.rng_for("web-rack0|3|down1").random(8)
        assert np.array_equal(a, b)

    def test_sites_are_independent(self):
        injector = FaultInjector(FaultPlan(seed=9))
        a = injector.rng_for("site-a").random(8)
        b = injector.rng_for("site-b").random(8)
        assert not np.array_equal(a, b)

    def test_decisions_independent_of_call_order(self):
        plan = FaultPlan(seed=4, window_failure_rate=0.5, transient_fraction=0.5)
        sites = [f"rack{i}|0|down0" for i in range(40)]
        forward = [FaultInjector(plan).should_fail_window(s, 0) for s in sites]
        backward = [
            FaultInjector(plan).should_fail_window(s, 0) for s in reversed(sites)
        ]
        assert forward == list(reversed(backward))

    def test_read_failure_mask_reproducible(self):
        plan = FaultPlan(seed=1, read_failure_rate=0.3)
        mask_a = FaultInjector(plan).read_failure_mask("s", 500)
        mask_b = FaultInjector(plan).read_failure_mask("s", 500)
        assert np.array_equal(mask_a, mask_b)
        assert 0 < mask_a.sum() < 500


class TestWindowFaults:
    def failing_site(self, injector, transient):
        """Find a site classified as faulty with the wanted persistence."""
        for i in range(500):
            site = f"probe{i}"
            if injector.should_fail_window(site, 0):
                # Persistent sites also fail attempt 1; transients clear.
                if injector.should_fail_window(site, 1) is (not transient):
                    return site
        raise AssertionError("no site with the requested fault class found")

    def test_transient_clears_on_retry(self):
        injector = FaultInjector(
            FaultPlan(seed=2, window_failure_rate=0.5, transient_fraction=1.0)
        )
        site = self.failing_site(injector, transient=True)
        assert injector.should_fail_window(site, 0)
        assert not injector.should_fail_window(site, 1)
        assert not injector.should_fail_window(site, 5)

    def test_persistent_fails_every_attempt(self):
        injector = FaultInjector(
            FaultPlan(seed=2, window_failure_rate=0.5, transient_fraction=0.0)
        )
        site = self.failing_site(injector, transient=False)
        for attempt in range(4):
            assert injector.should_fail_window(site, attempt)

    def test_zero_rate_never_fails(self):
        injector = FaultInjector(FaultPlan(seed=0))
        assert not any(
            injector.should_fail_window(f"s{i}", 0) for i in range(100)
        )
        assert injector.stats.window_faults == 0

    def test_negative_attempt_rejected(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(FaultInjectionError):
            injector.should_fail_window("s", -1)

    def test_stats_count_first_attempt_only(self):
        injector = FaultInjector(
            FaultPlan(seed=2, window_failure_rate=1.0, transient_fraction=0.0)
        )
        for attempt in range(3):
            injector.should_fail_window("one-site", attempt)
        assert injector.stats.window_faults == 1
        assert injector.stats.persistent_faults == 1


class TestTraceFaults:
    def test_wrap_records_width_and_deltas_correct_exactly(self):
        # Steps below 2^20 but a total far above it: many wrap events,
        # every one correctable because no single delta spans a period.
        trace = byte_trace(n=200, step=300_000)
        injector = FaultInjector(FaultPlan(wrap_bits=20))
        wrapped = injector.wrap_trace(trace)
        assert wrapped.meta[COUNTER_BITS_META] == 20
        assert np.all(np.asarray(wrapped.values) < (1 << 20))
        # Exact correction: wrapped deltas equal the true deltas everywhere.
        assert np.array_equal(wrapped.deltas(), trace.deltas())

    def test_wrap_32bit_residual_zero(self):
        rng = np.random.default_rng(0)
        values = np.cumsum(rng.integers(0, 10_000_000, size=2000)).astype(np.int64)
        trace = CounterTrace.regular(
            us(25), values, ValueKind.CUMULATIVE, name="t", rate_bps=gbps(100)
        )
        wrapped = FaultInjector(FaultPlan(wrap_bits=32)).wrap_trace(trace)
        assert np.array_equal(wrapped.deltas(), trace.deltas())

    def test_gauge_traces_never_wrapped(self):
        gauge = CounterTrace.regular(
            us(25), np.arange(10, dtype=np.int64), ValueKind.GAUGE, name="g"
        )
        out = FaultInjector(FaultPlan(wrap_bits=8)).wrap_trace(gauge)
        assert out is gauge

    def test_drop_samples_keeps_endpoints_and_counts(self):
        trace = byte_trace(n=400)
        injector = FaultInjector(FaultPlan(seed=3, sample_loss_rate=0.3))
        degraded = injector.drop_samples(trace, "w|p")
        assert degraded.timestamps_ns[0] == trace.timestamps_ns[0]
        assert degraded.timestamps_ns[-1] == trace.timestamps_ns[-1]
        dropped = len(trace) - len(degraded)
        assert dropped > 0
        assert degraded.meta["samples_dropped"] == dropped
        assert injector.stats.samples_dropped == dropped
        # Survivors keep true timestamps and exact cumulative values.
        assert set(degraded.timestamps_ns).issubset(set(trace.timestamps_ns))
        assert int(degraded.deltas().sum()) == int(trace.deltas().sum())

    def test_degrade_is_deterministic_per_site(self):
        trace = byte_trace(n=300)
        plan = FaultPlan(seed=5, sample_loss_rate=0.2, wrap_bits=32)
        a = FaultInjector(plan).degrade_trace(trace, "site-x")
        b = FaultInjector(plan).degrade_trace(trace, "site-x")
        assert np.array_equal(a.timestamps_ns, b.timestamps_ns)
        assert np.array_equal(a.values, b.values)


class TestArchiveTruncation:
    def test_truncation_caught_by_integrity_checks(self, tmp_path):
        path = tmp_path / "w.npz"
        trace = byte_trace()
        save_traces(path, {trace.name: trace})
        injector = FaultInjector(FaultPlan(seed=1, truncate_rate=1.0))
        assert injector.maybe_truncate_archive(path, "w")
        assert injector.stats.archives_truncated == 1
        with pytest.raises(CorruptTraceError):
            load_traces(path)

    def test_zero_rate_leaves_file_alone(self, tmp_path):
        path = tmp_path / "w.npz"
        trace = byte_trace()
        save_traces(path, {trace.name: trace})
        before = path.read_bytes()
        assert not FaultInjector(FaultPlan()).maybe_truncate_archive(path, "w")
        assert path.read_bytes() == before


class FixedSource:
    """Window source returning a deterministic trace per window."""

    def __init__(self):
        self.calls = 0

    def sample_window(self, window):
        self.calls += 1
        trace = byte_trace(name=f"{window.port_name}.tx_bytes")
        return {trace.name: trace}


def make_window(rack="web-rack0", hour=0, port="down0"):
    from repro.core.campaign import CampaignWindow

    return CampaignWindow(
        rack_id=rack,
        rack_type="web",
        port_name=port,
        hour=hour,
        start_ns=0,
        duration_ns=us(25) * 64,
    )


class TestFaultyWindowSource:
    def find_failing_window(self, injector):
        for hour in range(200):
            window = make_window(hour=hour)
            if injector.should_fail_window(window_site(window), 0):
                return window
        raise AssertionError("no failing window found")

    def test_injected_failure_raises_collection_error(self):
        injector = FaultInjector(
            FaultPlan(seed=7, window_failure_rate=0.5, transient_fraction=1.0)
        )
        window = self.find_failing_window(injector)
        source = FaultyWindowSource(FixedSource(), injector)
        with pytest.raises(CollectionError):
            source.sample_window(window)
        # Transient: the retry (attempt 1) succeeds.
        traces = source.sample_window(window)
        assert traces
        assert source.attempts_for(window) == 2

    def test_degradation_keyed_by_window_not_attempt(self):
        """A retried window must yield byte-identical traces."""
        plan = FaultPlan(seed=7, sample_loss_rate=0.25)
        window = make_window()
        first = FaultyWindowSource(FixedSource(), FaultInjector(plan)).sample_window(
            window
        )
        again = FaultyWindowSource(FixedSource(), FaultInjector(plan))
        again._attempts[window_site(window)] = 3  # pretend earlier attempts happened
        second = again.sample_window(window)
        for name in first:
            assert np.array_equal(
                first[name].timestamps_ns, second[name].timestamps_ns
            )
            assert np.array_equal(first[name].values, second[name].values)

    def test_noop_plan_passes_traces_through(self):
        source = FaultyWindowSource(FixedSource(), FaultInjector(FaultPlan()))
        traces = source.sample_window(make_window())
        assert list(traces) == ["down0.tx_bytes"]
        assert "samples_dropped" not in traces["down0.tx_bytes"].meta
