"""Shared fixtures."""

import numpy as np
import pytest

from repro.netsim import RackConfig, Simulator, TorSwitchConfig, build_rack
from repro.units import gbps


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def sim():
    return Simulator(seed=7)


@pytest.fixture
def small_rack_config():
    """A 4-server rack with 2 uplinks: fast enough for unit tests."""
    return RackConfig(
        name="t",
        switch=TorSwitchConfig(
            n_downlinks=4,
            downlink_rate_bps=gbps(10),
            n_uplinks=2,
            uplink_rate_bps=gbps(10),
        ),
        n_remote_hosts=8,
    )


@pytest.fixture
def small_rack(sim, small_rack_config):
    return build_rack(sim, small_rack_config)
